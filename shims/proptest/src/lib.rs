//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io mirror, so the workspace vendors the
//! macro/strategy subset its property tests use: the `proptest!` macro,
//! `prop_assert*`/`prop_assume!`/`prop_oneof!`, integer/float range and
//! regex-literal strategies, `Just`, `any::<bool>()`, `prop_map`, tuples,
//! and `collection::vec`. Sampling is deterministic (seeded from the test
//! name) and there is **no shrinking** — a failing case panics with the
//! case number and message instead of a minimized input.

pub mod test_runner {
    /// Per-invocation configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — resample, don't count the case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic splitmix64 stream used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the stream from a test name, so each test is deterministic
        /// but distinct.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `0..span` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Object-safe: `prop_map` is `Self: Sized` so boxed strategies
    /// (`prop_oneof!`) still work.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draw one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            (**self).sample_value(rng)
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// A strategy producing one constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    /// String strategy from a regex-subset literal: literals, `[...]`
    /// classes with ranges, and `{m,n}`/`{n}` repetition — enough for the
    /// identifier/word patterns used in the workspace tests.
    impl Strategy for &str {
        type Value = String;
        fn sample_value(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (alphabet, next) = if chars[i] == '[' {
                let close = chars[i..].iter().position(|&c| c == ']').map(|p| i + p);
                let close = close.unwrap_or_else(|| panic!("unclosed class in {pattern:?}"));
                (parse_class(&chars[i + 1..close]), close + 1)
            } else {
                (vec![chars[i]], i + 1)
            };
            let (lo, hi, next) = if next < chars.len() && chars[next] == '{' {
                let close = chars[next..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| next + p);
                let close = close.unwrap_or_else(|| panic!("unclosed repeat in {pattern:?}"));
                let spec: String = chars[next + 1..close].iter().collect();
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                    None => {
                        let n: u64 = spec.trim().parse().unwrap();
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            } else {
                (1, 1, next)
            };
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
            i = next;
        }
        out
    }

    fn parse_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                for c in body[i]..=body[i + 2] {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        set
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` macro).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample_value(rng)
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over a type's whole domain.
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// The test-definition macro: same surface as upstream `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts < cfg.cases.saturating_mul(64).max(1024),
                    "proptest: too many rejected cases (prop_assume! too strict?)"
                );
                $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{attempts} failed: {msg}");
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body (returns a failure, enabling the case
/// number to be reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assert_eq failed: {:?} != {:?}", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assert_eq failed: {:?} != {:?}: {}",
                    lhs,
                    rhs,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Discard the current case without counting it as run.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_patterns() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let ident = Strategy::sample_value(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&ident.len()), "{ident:?}");
            assert!(ident.chars().next().unwrap().is_ascii_lowercase());
            assert!(ident
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let word = Strategy::sample_value(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&word.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_combinators(
            a in -10i64..10,
            b in prop_oneof![Just(None), (1u64..5).prop_map(Some)],
            items in crate::collection::vec(0u8..3, 0..6),
            flag in any::<bool>(),
        ) {
            prop_assert!((-10..10).contains(&a));
            if let Some(v) = b {
                prop_assert!((1..5).contains(&v), "b = {:?}", v);
            }
            prop_assert!(items.len() < 6);
            prop_assert!(items.iter().all(|&x| x < 3));
            // Exercise prop_assume's discard path on some of the cases.
            prop_assume!(flag || a < 5);
            prop_assert_eq!(a, a);
        }
    }
}
