//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io mirror, so the workspace vendors the
//! API subset its benches use: `Criterion`, `benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a plain wall-clock mean over a fixed duration —
//! no statistics, HTML reports, or outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `b.iter(|| black_box(...))` patterns keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group against an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let c = &*self.criterion;
        let mut bencher = Bencher::new(c.sample_size, c.warm_up_time, c.measurement_time);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let c = &*self.criterion;
        let mut bencher = Bencher::new(c.sample_size, c.warm_up_time, c.measurement_time);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (reporting already happened per-bench).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// How `iter_batched` amortizes setup cost (ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measures closures; handed to each benchmark body.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Bencher {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            result: None,
        }
    }

    /// Measure a closure's mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Size each sample so all samples fit the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total_time += start.elapsed();
            total_iters += iters_per_sample;
        }
        self.result = Some((total_iters, total_time));
    }

    /// Measure `routine` over fresh inputs produced by `setup` (setup time
    /// excluded).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let samples = (self.sample_size as u64 * 100).max(1);
        let mut total_time = Duration::ZERO;
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_time += start.elapsed();
        }
        self.result = Some((samples, total_time));
    }

    fn report(&self, name: &str) {
        match self.result {
            Some((iters, time)) if iters > 0 => {
                let ns = time.as_nanos() as f64 / iters as f64;
                println!("{name:<60} {ns:>14.1} ns/iter ({iters} iters)");
            }
            _ => println!("{name:<60} (no measurement)"),
        }
    }
}

/// Define a benchmark group: both the `name =/config =/targets =` form and
/// the positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group (ignores criterion CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
