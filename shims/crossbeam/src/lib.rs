//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io mirror, so the workspace vendors the
//! two pieces it uses: `channel::{unbounded, Sender, Receiver}` (backed by
//! `std::sync::mpsc`, which has the same error vocabulary) and
//! `queue::SegQueue` (a mutex-protected deque with the same `&self` API —
//! correct, just not lock-free).

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// An unbounded FIFO queue with interior mutability, mirroring
    /// `crossbeam::queue::SegQueue`'s API over a mutexed deque.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub const fn new() -> SegQueue<T> {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push an element onto the back of the queue.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        /// Pop the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> SegQueue<T> {
            SegQueue::new()
        }
    }

    impl<T> std::fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SegQueue")
                .field("len", &self.len())
                .finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }
    }
}
