//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: `StdRng::seed_from_u64`, the
//! [`Rng`] methods `gen`, `gen_range`, `gen_bool`, and the
//! `distributions::Distribution` trait. The generator is xoshiro256**
//! seeded through splitmix64 — high-quality and deterministic, though its
//! stream differs from upstream rand's ChaCha-based `StdRng` (all workspace
//! tests compare modes against each other, never against golden streams).

/// A value that can be drawn uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening multiply maps a u64 uniformly onto 0..span with
                // negligible bias for the spans used here.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

/// A type producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draw a value from the standard distribution.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The random-generator trait: everything is derived from `next_u64`.
pub trait Rng {
    /// The next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draw uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_in(self, range.start, range.end)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// A distribution that can be sampled with any [`Rng`].
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }
}
