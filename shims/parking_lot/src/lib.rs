//! Offline stand-in for the `parking_lot` crate, implemented over `std::sync`.
//!
//! The build container has no access to a crates.io mirror, so the workspace
//! vendors the small API subset it actually uses: [`Mutex`], [`RwLock`],
//! [`Condvar`], and the const-initializable [`RawMutex`]. Semantics follow
//! parking_lot, not std: **no poisoning** — a panic while holding a lock
//! leaves the data accessible to other threads.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, PoisonError, RwLock as StdRwLock};
use std::time::{Duration, Instant};

pub mod lock_api {
    /// The subset of `lock_api::RawMutex` the workspace relies on: a
    /// const-initializable mutex with free `lock`/`unlock` (no guard).
    pub trait RawMutex {
        /// A fresh, unlocked mutex.
        const INIT: Self;
        /// Block until the lock is acquired.
        fn lock(&self);
        /// Acquire the lock if it is free; never blocks.
        fn try_lock(&self) -> bool;
        /// Release the lock.
        ///
        /// # Safety
        ///
        /// Must only be called by the context that holds the lock.
        unsafe fn unlock(&self);
    }
}

/// Const-initializable blocking mutex without a guard (parking_lot's
/// `RawMutex`). Built on a `std` mutex + condvar so waiters sleep.
pub struct RawMutex {
    locked: StdMutex<bool>,
    cv: StdCondvar,
}

impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex {
        locked: StdMutex::new(false),
        cv: StdCondvar::new(),
    };

    fn lock(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(PoisonError::into_inner);
        while *locked {
            locked = self.cv.wait(locked).unwrap_or_else(PoisonError::into_inner);
        }
        *locked = true;
    }

    fn try_lock(&self) -> bool {
        let mut locked = self.locked.lock().unwrap_or_else(PoisonError::into_inner);
        if *locked {
            false
        } else {
            *locked = true;
            true
        }
    }

    unsafe fn unlock(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(PoisonError::into_inner);
        *locked = false;
        drop(locked);
        self.cv.notify_one();
    }
}

/// A mutual-exclusion lock with parking_lot's panic-transparent semantics.
pub struct Mutex<T: ?Sized> {
    raw: RawMutex,
    data: UnsafeCell<T>,
}

// Safety: standard mutex reasoning — exclusive access is enforced by `raw`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            raw: <RawMutex as lock_api::RawMutex>::INIT,
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held, returning a RAII guard.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        lock_api::RawMutex::lock(&self.raw);
        MutexGuard { mutex: self }
    }

    /// Acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if lock_api::RawMutex::try_lock(&self.raw) {
            Some(MutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Access the data through an exclusive reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard holds the raw lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard holds the raw lock exclusively.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Safety: this guard acquired the lock and is releasing it exactly once.
        unsafe { lock_api::RawMutex::unlock(&self.mutex.raw) };
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`Mutex`].
///
/// Wakeup tracking is epoch-based: `notify_all` bumps an epoch under an
/// internal lock, and waiters record the epoch *before* releasing the user
/// mutex, so a notify performed while holding the user mutex can never be
/// missed.
pub struct Condvar {
    epoch: StdMutex<u64>,
    cv: StdCondvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            epoch: StdMutex::new(0),
            cv: StdCondvar::new(),
        }
    }

    /// Wake all current waiters.
    pub fn notify_all(&self) {
        let mut epoch = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        *epoch += 1;
        drop(epoch);
        self.cv.notify_all();
    }

    /// Wake one waiter. Conservatively wakes all: epoch-based tracking
    /// cannot target a single waiter, and callers only rely on "at least
    /// one wakes".
    pub fn notify_one(&self) {
        self.notify_all();
    }

    /// Block until notified.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_until(guard, None);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.wait_until(guard, Some(Instant::now() + timeout))
    }

    fn wait_until<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Option<Instant>,
    ) -> WaitTimeoutResult {
        // Record the epoch before releasing the user mutex: any notify that
        // happens afterwards is observed by the `*epoch == target` check.
        let target = *self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        // Safety: `guard` proves this context holds the lock; it is
        // re-acquired below before the guard is used again.
        unsafe { lock_api::RawMutex::unlock(&guard.mutex.raw) };
        let mut timed_out = false;
        let mut epoch = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        while *epoch == target {
            match deadline {
                None => {
                    epoch = self.cv.wait(epoch).unwrap_or_else(PoisonError::into_inner);
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        timed_out = true;
                        break;
                    }
                    let (g, _) = self
                        .cv
                        .wait_timeout(epoch, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    epoch = g;
                }
            }
        }
        drop(epoch);
        lock_api::RawMutex::lock(&guard.mutex.raw);
        WaitTimeoutResult(timed_out)
    }
}

/// A reader-writer lock with parking_lot's panic-transparent semantics.
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Access the data through an exclusive reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawMutex as _;
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn raw_mutex_excludes() {
        let raw = RawMutex::INIT;
        raw.lock();
        assert!(!raw.try_lock());
        unsafe { raw.unlock() };
        assert!(raw.try_lock());
        unsafe { raw.unlock() };
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut guard = m.lock();
            while !*guard {
                cv.wait_for(&mut guard, Duration::from_millis(50));
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
