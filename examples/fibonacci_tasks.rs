//! The paper's Fig. 4: recursive Fibonacci with OpenMP tasks — run through
//! the interpreted frontend (exactly the paper's code) and through the
//! compiled task API.
//!
//! Run with: `cargo run --release --example fibonacci_tasks [n]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minipy::Value;
use omp4rs::exec::{parallel, TaskCtx};
use omp4rs_pyfront::{ExecMode, Runner};

/// The paper's Fig. 4 program, verbatim structure.
const FIG4: &str = r#"
from omp4py import *

@omp
def fibonacci(n):
    if n <= 1:
        return n
    fib1 = 0
    fib2 = 0
    with omp("task if(n > 12)"):
        fib1 = fibonacci(n - 1)
    with omp("task if(n > 12)"):
        fib2 = fibonacci(n - 2)
    omp("taskwait")
    return fib1 + fib2

@omp
def run(n, nthreads):
    out = []
    with omp("parallel num_threads(nthreads)"):
        with omp("single"):
            out.append(fibonacci(n))
    return out[0]
"#;

fn fib_tasks_native(n: u64, threads: usize) -> u64 {
    fn go(tc: &TaskCtx<'_>, n: u64, out: Arc<AtomicU64>) {
        if n <= 1 {
            out.fetch_add(n, Ordering::Relaxed);
            return;
        }
        let (o1, o2) = (Arc::clone(&out), Arc::clone(&out));
        tc.task_if(n > 12, move |tc| go(tc, n - 1, o1));
        tc.task_if(n > 12, move |tc| go(tc, n - 2, o2));
        tc.taskwait();
    }
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    parallel(&format!("num_threads({threads})"), |ctx| {
        ctx.single(|| {
            let out = Arc::clone(&out2);
            ctx.task(move |tc| go(tc, n, out));
        });
    });
    out.load(Ordering::Relaxed)
}

fn main() {
    let n: i64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(18);
    let threads = 4;

    println!("fibonacci({n}) with OpenMP tasks, {threads} threads\n");

    let start = std::time::Instant::now();
    let native = fib_tasks_native(n as u64, threads);
    println!(
        "compiled task API : {native:>10}   ({:.2?})",
        start.elapsed()
    );

    let runner = Runner::new(ExecMode::Hybrid);
    runner.run(FIG4).expect("Fig. 4 program loads");
    let start = std::time::Instant::now();
    let interp = runner
        .call_global("run", vec![Value::Int(n), Value::Int(threads as i64)])
        .expect("Fig. 4 program runs")
        .as_int()
        .expect("fibonacci returns int");
    println!(
        "paper Fig. 4 code : {interp:>10}   ({:.2?})",
        start.elapsed()
    );

    assert_eq!(native as i64, interp, "both paths must agree");
}
