//! Tour of the bounded trace pipeline: per-thread rings, the dedicated
//! flusher, overflow policies, and rotating trace files.
//!
//! Run with: `cargo run --release --example tracing_pipeline`
//!
//! Three short acts, each printing what the pipeline did:
//!
//! 1. **Steady state** — a default session (8192-event rings, `drop-oldest`)
//!    under an event-dense loop: the flusher keeps up, nothing drops.
//! 2. **Overflow** — the same load on deliberately tiny rings under each
//!    policy, with the flusher paused so the rings *must* fill: the lossy
//!    policies count their drops (and the summary banner flags them), while
//!    `block` trades latency for losslessness.
//! 3. **Rotation** — a streaming session writing 4 KiB part files, each one
//!    an independently valid Chrome trace, pruned to the newest few.
//!
//! Everything here is also reachable without code changes via the
//! environment: `OMP_TOOL=summary OMP4RS_TRACE_RING=64
//! OMP4RS_TRACE_POLICY=block OMP4RS_TRACE_ROTATE=64 <binary>`. See
//! docs/OBSERVABILITY.md for the architecture and docs/ENVIRONMENT.md for
//! the knobs.

use omp4rs::exec::{parallel, ForSpec};
use omp4rs::ompt::{self, ToolConfig, TracePolicy};

/// An event-dense workload: `dynamic,1` scheduling records a claim and a
/// completion per iteration, on every team thread.
fn chatty_region(iters: i64) {
    parallel("num_threads(4)", |ctx| {
        ctx.for_range(
            ForSpec::parse("schedule(dynamic, 1)").expect("valid spec"),
            (0, iters, 1),
            |i| {
                std::hint::black_box(i);
            },
        );
    });
}

fn main() {
    // Act 1: default pipeline, flusher live. Nothing should drop.
    {
        let _s = ompt::session(ToolConfig::default());
        chatty_region(2000);
        let stats = ompt::ring_stats();
        println!(
            "steady state: {} events flushed, {} dropped, {} rings x {} cap (bound {} KiB)",
            stats.flushed,
            stats.dropped,
            stats.rings,
            stats.capacity,
            stats.bounded_bytes() / 1024
        );
    }

    // Act 2: 64-event rings, flusher paused — every policy must now decide
    // what a full ring means.
    for policy in [
        TracePolicy::DropOldest,
        TracePolicy::DropNewest,
        TracePolicy::Block,
    ] {
        let _s = ompt::session(ToolConfig {
            ring_capacity: 64,
            policy,
            ..Default::default()
        });
        ompt::set_flusher_paused(true);
        chatty_region(2000);
        ompt::set_flusher_paused(false);
        let stats = ompt::ring_stats();
        println!(
            "overflow under {:<11} {:>6} dropped of {} handled",
            format!("{}:", policy.name()),
            stats.dropped,
            stats.flushed + stats.dropped + ompt::events().len() as u64
        );
        if stats.dropped > 0 {
            // The loss is never silent: the per-region summary carries a
            // banner and every trace footer carries the counter.
            assert!(ompt::summary().contains("trace ring overflow"));
        }
    }

    // Act 3: streaming rotation — parts are bounded on disk like rings are
    // bounded in memory.
    {
        let base = std::env::temp_dir()
            .join(format!("tracing_pipeline_{}.json", std::process::id()))
            .display()
            .to_string();
        let _s = ompt::session(ToolConfig {
            trace_path: Some(base.clone()),
            summary: false,
            rotate_kib: Some(4),
            rotate_keep: 3,
            ..Default::default()
        });
        chatty_region(4000);
        let last = ompt::finalize()
            .expect("parts writable")
            .expect("trace path configured");
        let stem = base.strip_suffix(".json").unwrap_or(&base);
        let mut kept = 0;
        for idx in 0..4096 {
            let path = format!("{stem}.{idx}.json");
            if let Ok(text) = std::fs::read_to_string(&path) {
                kept += 1;
                ompt::validate_chrome_trace(&text).expect("every part stands alone");
                let _ = std::fs::remove_file(&path);
            }
        }
        println!("rotation: {kept} part(s) on disk after pruning; final part was {last}");
    }

    println!("\nSee docs/OBSERVABILITY.md for the ring/flusher architecture.");
}
