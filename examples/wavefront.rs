//! Task dependences (`depend(in/out)`) on a doacross-style wavefront — run
//! through the interpreted frontend (OMP4Py-style code with a `depend`
//! clause) and through the compiled `DepSpec` task API.
//!
//! The recurrence `t[i][j] = w[i][j] + 0.5*t[i-1][j] + 0.5*t[i][j-1]` makes
//! each block depend on its west and north neighbours: no barrier between
//! anti-diagonals, the dependence graph alone orders the blocks.
//!
//! Run with: `cargo run --release --example wavefront [n]`

use minipy::Value;
use omp4rs::exec::{parallel, DepSpec};
use omp4rs_apps::util::SharedSlice;
use omp4rs_pyfront::{ExecMode, Runner};

/// OMP4Py-style wavefront: one task per block, ordered by `depend` items on
/// `(bi, bj)` block coordinates. The `in` items on the virtual `-1` border
/// are never written, so border blocks are immediately ready.
const SOURCE: &str = r#"
from omp4py import *

@omp
def wf_block(t, w, n, bs, bi, bj):
    for i in range(bi * bs, bi * bs + bs):
        for j in range(bj * bs, bj * bs + bs):
            up = 0.0
            if i > 0:
                up = t[(i - 1) * n + j]
            left = 0.0
            if j > 0:
                left = t[i * n + j - 1]
            t[i * n + j] = w[i * n + j] + 0.5 * up + 0.5 * left
    return 0

@omp
def wavefront(t, w, n, bs, nb, nthreads):
    with omp("parallel num_threads(nthreads)"):
        with omp("single"):
            for bi in range(nb):
                for bj in range(nb):
                    with omp("task depend(in: (bi - 1, bj), (bi, bj - 1)) depend(out: (bi, bj)) firstprivate(bi, bj)"):
                        wf_block(t, w, n, bs, bi, bj)
    return 0
"#;

/// Dependence key for block `(bi, bj)`, shifted so the virtual `-1` border
/// used by `depend(in: ...)` maps to keys nothing ever writes.
fn key(bi: i64, bj: i64) -> u64 {
    (((bi + 1) as u64) << 32) | (bj + 1) as u64
}

fn input(n: usize) -> Vec<f64> {
    (0..n * n).map(|i| ((i % 13) as f64) * 0.25 + 1.0).collect()
}

fn sequential(n: usize) -> Vec<f64> {
    let w = input(n);
    let mut t = w.clone();
    for i in 0..n {
        for j in 0..n {
            let up = if i > 0 { t[(i - 1) * n + j] } else { 0.0 };
            let left = if j > 0 { t[i * n + j - 1] } else { 0.0 };
            t[i * n + j] = w[i * n + j] + 0.5 * up + 0.5 * left;
        }
    }
    t
}

fn wavefront_native(n: usize, bs: usize, threads: usize) -> Vec<f64> {
    let nb = n / bs;
    let w = input(n);
    let mut t = w.clone();
    {
        let shared = SharedSlice::new(&mut t);
        let shared = &shared;
        let w = &w;
        parallel(&format!("num_threads({threads})"), |ctx| {
            ctx.single(|| {
                for bi in 0..nb as i64 {
                    for bj in 0..nb as i64 {
                        // West and north are `in` deps; this block is the
                        // `out`. The depgraph releases the task once both
                        // neighbours (if any) have retired.
                        let spec = DepSpec::new()
                            .input(key(bi, bj - 1))
                            .input(key(bi - 1, bj))
                            .output(key(bi, bj));
                        ctx.task_depend(spec, move |_| {
                            for i in bi as usize * bs..(bi as usize + 1) * bs {
                                for j in bj as usize * bs..(bj as usize + 1) * bs {
                                    // SAFETY: the dependence graph gives this
                                    // task exclusive write access to its block
                                    // and its neighbours are already final.
                                    unsafe {
                                        let up = if i > 0 {
                                            shared.get((i - 1) * n + j)
                                        } else {
                                            0.0
                                        };
                                        let left = if j > 0 {
                                            shared.get(i * n + j - 1)
                                        } else {
                                            0.0
                                        };
                                        shared.set(i * n + j, w[i * n + j] + 0.5 * up + 0.5 * left);
                                    }
                                }
                            }
                        });
                    }
                }
            });
        });
    }
    t
}

fn wavefront_interpreted(n: usize, bs: usize, threads: usize) -> Vec<f64> {
    let runner = Runner::new(ExecMode::Hybrid);
    runner.run(SOURCE).expect("wavefront program loads");
    let w0 = input(n);
    let t = Value::list(w0.iter().map(|&v| Value::Float(v)).collect());
    let w = Value::list(w0.into_iter().map(Value::Float).collect());
    runner
        .call_global(
            "wavefront",
            vec![
                t.clone(),
                w,
                Value::Int(n as i64),
                Value::Int(bs as i64),
                Value::Int((n / bs) as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("wavefront program runs");
    match &t {
        Value::List(cells) => cells.read().iter().map(|v| v.as_float().unwrap()).collect(),
        _ => unreachable!(),
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let bs = 16;
    assert!(n.is_multiple_of(bs), "n must be a multiple of {bs}");
    let threads = 4;
    let nb = n / bs;

    println!("{n}x{n} wavefront in {nb}x{nb} depend-ordered blocks, {threads} threads\n");
    let reference = sequential(n);
    let checksum = |t: &[f64]| t.iter().sum::<f64>();

    let before = omp4rs::depgraph::counters();
    let start = std::time::Instant::now();
    let native = wavefront_native(n, bs, threads);
    let after = omp4rs::depgraph::counters();
    println!(
        "compiled DepSpec API : checksum {:>14.4}   ({:.2?})",
        checksum(&native),
        start.elapsed()
    );
    println!(
        "  dependence graph   : {} deferred / {} released / {} edges",
        after.deferred - before.deferred,
        after.released - before.released,
        after.edges - before.edges,
    );

    let start = std::time::Instant::now();
    let interp = wavefront_interpreted(n, bs, threads);
    println!(
        "OMP4Py-style depend  : checksum {:>14.4}   ({:.2?})",
        checksum(&interp),
        start.elapsed()
    );

    assert_eq!(native, reference, "native path must match sequential");
    assert_eq!(interp, reference, "interpreted path must match sequential");
    println!("\nboth paths match the sequential recurrence");
}
