//! Quickstart: the two faces of omp4rs.
//!
//! 1. The **compiled-mode API** — Rust closures with OpenMP-style clause
//!    strings (the paper's Compiled/CompiledDT modes).
//! 2. The **interpreted frontend** — the paper's headline usage: a Python
//!    program with `@omp` and `with omp("…")` directives, transformed and
//!    executed against the same runtime.
//!
//! Run with: `cargo run --example quickstart`

use minipy::Interp;
use omp4rs::exec::{parallel, ForSpec};
use omp4rs_pyfront::{install, ExecMode};

fn compiled_mode() {
    println!("== compiled mode (Rust closures) ==");
    let n = 1_000_000i64;
    let w = 1.0 / n as f64;
    let result = std::sync::Mutex::new(0.0f64);
    parallel("num_threads(4)", |ctx| {
        let local = ctx.for_reduce(
            ForSpec::parse("schedule(static)").expect("valid spec"),
            0..n,
            0.0f64,
            |i, acc| {
                let x = (i as f64 + 0.5) * w;
                *acc += 4.0 / (1.0 + x * x);
            },
            |a, b| a + b,
        );
        ctx.master(|| *result.lock().unwrap() = local * w);
    });
    println!(
        "pi ~ {:.12}  (4 threads, static schedule)",
        result.into_inner().unwrap()
    );
}

fn interpreted_mode() -> Result<(), minipy::PyErr> {
    println!("== interpreted mode (the paper's Fig. 1) ==");
    let interp = Interp::new();
    install(&interp, ExecMode::Hybrid);
    interp.run(
        r#"
from omp4py import *

@omp
def pi(n):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(4)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w

print("pi ~", pi(100000))
print("threads available:", omp_get_max_threads())
"#,
    )?;
    Ok(())
}

fn main() {
    compiled_mode();
    if let Err(e) = interpreted_mode() {
        eprintln!("interpreted example failed: {e}");
        std::process::exit(1);
    }
}
