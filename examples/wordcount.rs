//! Wordcount — the paper's full-Python-support showcase (§IV-B): string
//! and dict-heavy code that PyOMP's Numba cannot compile, with the
//! scheduling-policy sweep of Fig. 7.
//!
//! Run with: `cargo run --release --example wordcount [lines] [threads]`

use omp4rs::ScheduleKind;
use omp4rs_apps::{wordcount, Mode};

fn main() {
    let mut args = std::env::args().skip(1);
    let lines: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("wordcount: {lines} synthetic Zipf lines, {threads} threads\n");

    // Mode comparison (PyOMP cannot run this benchmark).
    println!("-- modes (dynamic schedule, chunk 300) --");
    for mode in Mode::all() {
        let p = wordcount::Params {
            lines: if mode.is_interpreted() {
                lines / 10
            } else {
                lines
            },
            ..wordcount::Params::default()
        };
        match wordcount::run(mode, threads, &p) {
            Ok(out) => println!(
                "{:<12} {:>10.3} ms  (distinct words + total occurrences = {})",
                mode.name(),
                out.seconds * 1e3,
                out.check
            ),
            Err(e) => println!("{:<12} unsupported: {e}", mode.name()),
        }
    }

    // Fig. 7's schedule sweep (native mode for speed).
    println!("\n-- schedules (CompiledDT, chunk 300: the paper's Fig. 7 axis) --");
    for schedule in [
        ScheduleKind::Static,
        ScheduleKind::Dynamic,
        ScheduleKind::Guided,
    ] {
        let p = wordcount::Params {
            lines,
            schedule,
            chunk: Some(300),
            ..wordcount::Params::default()
        };
        let out = wordcount::run(Mode::CompiledDT, threads, &p).expect("supported");
        println!("{:<12} {:>10.3} ms", schedule.name(), out.seconds * 1e3);
    }
}
