//! All four OMP4Py execution modes on the paper's π benchmark, with the
//! PyOMP baseline — a miniature of Fig. 5's mode comparison.
//!
//! Run with: `cargo run --release --example pi_directives [n] [threads]`

use omp4rs_apps::{pi, Mode};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: i64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    // Interpreted modes get a smaller n so the demo stays snappy; the
    // per-interval cost is what's being compared.
    let interp_n = (n / 100).max(1_000);

    println!("pi benchmark: n={n} (interpreted n={interp_n}), {threads} threads\n");
    println!(
        "{:<12} {:>12} {:>16} {:>14}",
        "mode", "intervals", "time", "ns/interval"
    );
    for mode in Mode::all() {
        let params = pi::Params {
            n: if mode.is_interpreted() { interp_n } else { n },
        };
        match pi::run(mode, threads, &params) {
            Ok(out) => {
                let per_iter = out.seconds / params.n as f64 * 1e9;
                println!(
                    "{:<12} {:>12} {:>13.3} ms {:>11.1} ns   (pi ~ {:.9})",
                    mode.name(),
                    params.n,
                    out.seconds * 1e3,
                    per_iter,
                    out.check
                );
            }
            Err(e) => println!("{:<12} unsupported: {e}", mode.name()),
        }
    }
    println!("\nThe per-interval costs are the paper's mode ordering:");
    println!("Pure ≈ Hybrid  ≫  Compiled  ≫  CompiledDT ≈ PyOMP");
}
