//! End-to-end profiling walkthrough: run the paper's π benchmark in Pure
//! (interpreted + mutex runtime) and Compiled (native closures) modes with
//! the OMPT-inspired profiler armed, print each run's per-region summary,
//! and write Chrome-trace JSON files you can open in `chrome://tracing` or
//! Perfetto.
//!
//! Run with: `cargo run --release --example profiling [n] [threads]`
//!
//! The same data is available without code changes via the environment —
//! `OMP_TOOL=summary,trace:pi.json cargo run --example pi_directives` — and
//! from inside interpreted programs via `omp4py`'s `ompt_summary()` /
//! `ompt_counters()`. See docs/ENVIRONMENT.md for the `OMP_TOOL` grammar.
//!
//! What to look for in the output (the paper's §III-B contrast, measured):
//!
//! * Pure mode's `minipy.obj_lock.*` and GIL counters are **nonzero** — the
//!   interpreter pays per-object locking on every shared container touch.
//! * Compiled mode's interpreter counters are **zero** — native closures
//!   never enter the interpreter, so all that remains is runtime
//!   synchronization (barriers, chunk claims).

use omp4rs::ompt;
use omp4rs_apps::{pi, Mode};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: i64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    for mode in [Mode::Pure, Mode::Compiled] {
        let label = mode.name().to_lowercase();
        // Programmatic equivalent of OMP_TOOL=summary,trace:trace_pi_<mode>.json
        // (summary printing is done by hand below, so `summary: false`).
        ompt::enable(ompt::ToolConfig {
            trace_path: Some(format!("trace_pi_{label}.json")),
            summary: false,
            ..Default::default()
        });
        ompt::reset();
        minipy::stats::reset();
        minipy::stats::set_enabled(true);

        // Interpreted modes get a smaller n so the demo stays snappy.
        let params = pi::Params {
            n: if mode.is_interpreted() {
                (n / 100).max(1_000)
            } else {
                n
            },
        };
        let out = pi::run(mode, threads, &params).expect("pi supports this mode");

        // Publish the interpreter-side counters next to the runtime metrics.
        let stats = minipy::stats::snapshot();
        ompt::set_counter("minipy.gil.acquisitions", stats.gil_acquisitions);
        ompt::set_counter("minipy.gil.hold_ns", stats.gil_hold_ns);
        ompt::set_counter("minipy.obj_lock.acquisitions", stats.obj_lock_acquisitions);
        ompt::set_counter("minipy.obj_lock.contended", stats.obj_lock_contended);
        // Bytecode-tier counters: in the default `OMP4RS_MINIPY_VM=auto`,
        // Pure mode's parallel body runs compiled (frames/ops nonzero) while
        // the decorated outer function tree-walks (one `nested-def` fallback).
        ompt::set_counter("minipy.vm.compiles", stats.vm_compiles);
        ompt::set_counter("minipy.vm.fallbacks", stats.vm_fallbacks);
        ompt::set_counter("minipy.vm.frames", stats.vm_frames);
        ompt::set_counter("minipy.vm.ops", stats.vm_ops);

        println!(
            "--- {} mode: n={}, {} threads, {:.2} ms (pi ~ {:.9}) ---",
            mode.name(),
            params.n,
            threads,
            out.seconds * 1e3,
            out.check
        );
        println!("{}", ompt::summary());

        match ompt::finalize() {
            Ok(Some(path)) => {
                let text = std::fs::read_to_string(&path).expect("trace file readable");
                let ts = ompt::validate_chrome_trace(&text).expect("trace is valid");
                println!(
                    "wrote {path}: {} trace events, {} counters\n",
                    ts.events, ts.counters
                );
            }
            Ok(None) => unreachable!("a trace path was configured"),
            Err(e) => eprintln!("could not write trace: {e}\n"),
        }
        ompt::disable();
    }
    minipy::stats::set_enabled(false);

    println!("Open the trace files in chrome://tracing or https://ui.perfetto.dev —");
    println!("one row per team thread: parallel spans, barrier waits, claimed chunks.");
}
