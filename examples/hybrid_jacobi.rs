//! Hybrid MPI/OpenMP Jacobi (paper §IV-C, Fig. 8): MPI ranks (minimpi)
//! distribute matrix rows; OpenMP threads update each rank's block;
//! `allgather`/`allreduce` synchronize — a feature PyOMP cannot offer
//! because Numba cannot call into mpi4py.
//!
//! Run with: `cargo run --release --example hybrid_jacobi [n] [threads-per-node]`

use minimpi::NetModel;
use omp4rs_apps::{hybrid, Mode};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(192);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let p = hybrid::Params {
        n,
        ..hybrid::Params::default()
    };

    println!("hybrid MPI/OpenMP jacobi: {n}x{n} system, {threads} threads/node");
    println!("(interconnect model: ~2 us latency, 100 Gb/s links)\n");
    println!("{:<8} {:>12} {:>16}", "nodes", "time", "solution checksum");
    for nodes in [1usize, 2, 4, 8] {
        if !n.is_multiple_of(nodes) {
            continue;
        }
        match hybrid::run(Mode::CompiledDT, nodes, threads, &p, NetModel::cluster(1)) {
            Ok(out) => println!(
                "{:<8} {:>9.3} ms {:>16.6}",
                nodes,
                out.seconds * 1e3,
                out.check
            ),
            Err(e) => println!("{nodes:<8} failed: {e}"),
        }
    }
    println!(
        "\nPyOMP comparison: {}",
        hybrid::run(Mode::PyOmp, 2, threads, &p, NetModel::local()).unwrap_err()
    );
}
