//! End-to-end checks that the embedded benchmark sources really exercise the
//! directive set the paper's Table I claims, via the dump option.

use minipy::Interp;
use omp4rs_pyfront::{install, transform_function, ExecMode};

/// Transform a source's decorated functions and return the dumped text.
fn dump_transformed(src: &str) -> String {
    let module = minipy::parse(src).expect("source parses");
    let mut out = String::new();
    for stmt in &module.body {
        if let minipy::ast::StmtKind::FuncDef(def) = &stmt.kind {
            if !def.decorators.is_empty() {
                let new_def = transform_function(def).expect("transform succeeds");
                let m = minipy::Module {
                    body: vec![minipy::ast::Stmt::synth(minipy::ast::StmtKind::FuncDef(
                        std::sync::Arc::new(new_def),
                    ))],
                };
                out.push_str(&minipy::print_module(&m));
            }
        }
    }
    out
}

#[test]
fn pi_source_generates_fig2_fig3_shapes() {
    let dumped = dump_transformed(omp4rs_apps::pi::SOURCE);
    // Fig. 2: inner parallel function + nonlocal + reduction merge under the
    // runtime mutex.
    assert!(dumped.contains("def __omp_parallel_"), "{dumped}");
    assert!(dumped.contains("nonlocal pi_value"), "{dumped}");
    assert!(dumped.contains("__omp.mutex_lock()"), "{dumped}");
    assert!(dumped.contains("__omp.mutex_unlock()"), "{dumped}");
    // Fig. 3: for_bounds / for_init / for_next driving the original range.
    assert!(dumped.contains("__omp.for_bounds"), "{dumped}");
    assert!(dumped.contains("__omp.for_init"), "{dumped}");
    assert!(dumped.contains("while __omp.for_next"), "{dumped}");
    // Chunk bounds are unpacked once into frame locals (no per-iteration
    // lock traffic on the shared bounds object).
    assert!(dumped.contains("__omp.for_chunk"), "{dumped}");
    assert!(dumped.contains("for i in range(__omp_lo_"), "{dumped}");
    // The private reduction copy is renamed with the __omp_ prefix.
    assert!(dumped.contains("__omp_pi_value_"), "{dumped}");
    assert!(dumped.contains("parallel_run"), "{dumped}");
}

#[test]
fn qsort_source_uses_tasks_with_if() {
    let dumped = dump_transformed(omp4rs_apps::qsort::SOURCE);
    assert!(dumped.contains("__omp.task_submit"), "{dumped}");
    assert!(dumped.contains("__omp.task_wait()"), "{dumped}");
    assert!(dumped.contains("single_claim"), "{dumped}");
    // The if clause reaches the submit call as the deferred flag.
    assert!(dumped.contains("bool("), "{dumped}");
}

#[test]
fn jacobi_source_uses_single_and_explicit_barrier() {
    let dumped = dump_transformed(omp4rs_apps::jacobi::SOURCE);
    assert!(dumped.contains("single_claim"), "{dumped}");
    assert!(dumped.contains("__omp.barrier()"), "{dumped}");
    assert!(dumped.contains("reduce_init"), "{dumped}");
}

#[test]
fn bfs_source_spawns_task_per_move() {
    let dumped = dump_transformed(omp4rs_apps::bfs::SOURCE);
    assert!(dumped.contains("task_submit"), "{dumped}");
    assert!(dumped.contains("critical_enter"), "{dumped}");
    // firstprivate(nr, nc) becomes default parameters (creation-time capture).
    assert!(
        dumped.contains("nr=nr") || dumped.contains("nc=nc"),
        "{dumped}"
    );
}

#[test]
fn transformed_functions_have_no_remaining_directives() {
    for src in [
        omp4rs_apps::pi::SOURCE,
        omp4rs_apps::jacobi::SOURCE,
        omp4rs_apps::lu::SOURCE,
        omp4rs_apps::md::SOURCE,
        omp4rs_apps::qsort::SOURCE,
        omp4rs_apps::bfs::SOURCE,
        omp4rs_apps::fft::SOURCE,
    ] {
        let dumped = dump_transformed(src);
        assert!(
            !dumped.contains("with omp("),
            "directive survived transform:\n{dumped}"
        );
        assert!(
            !dumped.contains("@omp"),
            "decorator survived transform:\n{dumped}"
        );
    }
}

#[test]
fn api_surface_matches_paper_section_f() {
    // §III-F: import omp4py exposes the decorator and runtime API.
    let interp = Interp::new();
    install(&interp, ExecMode::Hybrid);
    interp
        .run(
            r#"
import omp4py
from omp4py import *

checks = []
checks.append(omp_get_max_threads() >= 1)
checks.append(omp_get_num_procs() >= 1)
checks.append(omp_get_wtime() >= 0.0)
omp_set_num_threads(3)
checks.append(omp_get_max_threads() == 3)
omp_set_schedule("guided", 4)
checks.append(omp_get_schedule()[0] == "guided")
ok = all(checks)
"#,
        )
        .unwrap();
    assert!(interp.get_global("ok").unwrap().truthy());
}

#[test]
fn omp4py_pure_module_forces_pure_mode() {
    let interp = Interp::new();
    install(&interp, ExecMode::Hybrid);
    interp
        .run("from omp4py.pure import *\nn = omp_get_num_procs()\n")
        .unwrap();
    assert!(interp.get_global("n").unwrap().as_int().unwrap() >= 1);
}
