//! Cross-crate integration: interpreter + frontend + runtime + substrates
//! working together.

use minipy::{Gil, GilMode, Interp, Value};
use omp4rs_pyfront::{ExecMode, Runner};

#[test]
fn full_stack_pi_program() {
    // Parse → transform → bridge → runtime → threads, end to end.
    for mode in [ExecMode::Pure, ExecMode::Hybrid] {
        let runner = Runner::new(mode);
        runner
            .run(
                r#"
from omp4py import *

@omp
def pi(n):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(4)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
"#,
            )
            .unwrap();
        let v = runner.call_global("pi", vec![Value::Int(20_000)]).unwrap();
        assert!((v.as_float().unwrap() - std::f64::consts::PI).abs() < 1e-6);
    }
}

#[test]
fn gil_enabled_interpreter_still_correct_under_omp() {
    // The motivating configuration: a GIL-ful interpreter still computes
    // correct results through the OpenMP runtime (just without speedup).
    let gil = Gil::with_interval(GilMode::Enabled, 64);
    let interp = Interp::with_gil(gil);
    let runner = Runner::with_interp(interp, ExecMode::Hybrid);
    runner
        .run(
            r#"
from omp4py import *

@omp
def total(n):
    acc = 0
    with omp("parallel for reduction(+:acc) num_threads(3)"):
        for i in range(n):
            acc += i
    return acc
"#,
        )
        .unwrap();
    let v = runner.call_global("total", vec![Value::Int(500)]).unwrap();
    assert_eq!(v.as_int().unwrap(), 124_750);
    assert!(
        runner.interp().gil().switch_count() > 0,
        "the GIL must have been exercised"
    );
}

#[test]
fn interpreted_code_drives_graph_substrate() {
    use omp4rs_apps::clustering::GraphValue;
    use std::sync::Arc;

    let g = Arc::new(minigraph::random_graph(80, 6, 3));
    let reference = minigraph::average_clustering(&g);
    let runner = Runner::new(ExecMode::Hybrid);
    runner
        .run(
            r#"
from omp4py import *

@omp
def avg(g, n):
    total = 0.0
    with omp("parallel for reduction(+:total) num_threads(3) schedule(dynamic, 8)"):
        for u in range(n):
            total += g.clustering(u)
    return total / n
"#,
        )
        .unwrap();
    let gv = Value::Opaque(Arc::new(GraphValue(Arc::clone(&g))));
    let v = runner.call_global("avg", vec![gv, Value::Int(80)]).unwrap();
    assert!((v.as_float().unwrap() - reference).abs() < 1e-12);
}

#[test]
fn mpi_plus_openmp_in_one_process() {
    // minimpi ranks each opening omp4rs parallel regions.
    let results = minimpi::World::run(3, |comm| {
        // Comm is rank-local (not Sync): capture what the region needs.
        let rank = comm.rank() as i64;
        let local_sum = std::sync::Mutex::new(0.0f64);
        omp4rs::parallel("num_threads(2)", |ctx| {
            let s = ctx.for_reduce(
                omp4rs::ForSpec::new(),
                0..100,
                0.0f64,
                |i, acc| *acc += (i + rank * 100) as f64,
                |a, b| a + b,
            );
            ctx.master(|| *local_sum.lock().unwrap() = s);
        });
        let local = *local_sum.lock().unwrap();
        comm.allreduce_sum(local)
    });
    // Sum over 0..300 = 44850, identical on every rank.
    assert!(results.iter().all(|&v| v == 44_850.0), "{results:?}");
}

#[test]
fn simulator_reproduces_measured_single_thread_time_shape() {
    use simcore::{simulate, ClaimCost, CostModel, Machine, Phase, SimSchedule, Workload};

    // Measure a real single-thread loop, then check the simulator's
    // 1-thread prediction from the measured per-iteration cost is close.
    let n = 200_000u64;
    let start = std::time::Instant::now();
    let mut acc = 0.0f64;
    for i in 0..n {
        let x = (i as f64 + 0.5) * 1e-6;
        acc += 4.0 / (1.0 + x * x);
    }
    let measured = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    let per_iter = measured / n as f64;
    let workload = Workload::new().phase(Phase::ParallelFor {
        iters: n,
        cost_per_iter: per_iter,
        shared_ops_per_iter: 0.0,
        schedule: SimSchedule::StaticBlock,
        claim: ClaimCost::local(),
        nowait: false,
        imbalance: 0.0,
    });
    let mut machine = Machine::new(32);
    let predicted = simulate(&mut machine, &CostModel::default(), &workload, 1);
    let ratio = predicted / measured;
    assert!(
        (0.9..1.1).contains(&ratio),
        "1-thread prediction off: {ratio}"
    );
}
