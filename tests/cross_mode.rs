//! Cross-mode equivalence: every benchmark must produce the same result in
//! every execution mode (the modes differ only in *how fast* they run).

use omp4rs_apps::*;

fn assert_agree(name: &str, outs: &[(Mode, f64)], tol: f64) {
    let reference = outs[0].1;
    for (mode, value) in outs {
        let scale = reference.abs().max(1.0);
        assert!(
            (value - reference).abs() <= tol * scale,
            "{name}: {mode} produced {value}, expected ~{reference}"
        );
    }
}

#[test]
fn pi_all_modes_agree() {
    let p = pi::Params { n: 4_000 };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, pi::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("pi", &outs, 1e-9);
}

#[test]
fn fft_all_modes_agree() {
    let p = fft::Params { log2_n: 6, seed: 1 };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, fft::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("fft", &outs, 1e-9);
}

#[test]
fn jacobi_all_modes_agree() {
    let p = jacobi::Params { n: 16, max_iters: 300, tol: 1e-8, seed: 2 };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, jacobi::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("jacobi", &outs, 1e-6);
}

#[test]
fn lu_all_modes_agree() {
    let p = lu::Params { n: 12, seed: 3 };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, lu::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("lu", &outs, 1e-9);
}

#[test]
fn md_all_modes_agree() {
    let p = md::Params { n: 12, steps: 1, seed: 4 };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, md::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("md", &outs, 1e-8);
}

#[test]
fn qsort_modes_agree_and_pyomp_cannot() {
    let p = qsort::Params { n: 400, cutoff: 64, seed: 5 };
    let outs: Vec<(Mode, f64)> = Mode::omp4py_modes()
        .into_iter()
        .map(|m| (m, qsort::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("qsort", &outs, 0.0);
    assert!(qsort::run(Mode::PyOmp, 2, &p).is_err());
}

#[test]
fn bfs_modes_agree_and_pyomp_cannot() {
    let p = bfs::Params { side: 13, wall_probability: 0.3, seed: 6 };
    let outs: Vec<(Mode, f64)> = Mode::omp4py_modes()
        .into_iter()
        .map(|m| (m, bfs::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("bfs", &outs, 0.0);
    assert_eq!(outs[0].1 as usize, bfs::seq(&p));
    assert!(bfs::run(Mode::PyOmp, 2, &p).is_err());
}

#[test]
fn clustering_modes_agree_and_pyomp_cannot() {
    let p = clustering::Params {
        nodes: 80,
        edges_per_node: 6,
        seed: 7,
        ..clustering::Params::default()
    };
    let outs: Vec<(Mode, f64)> = Mode::omp4py_modes()
        .into_iter()
        .map(|m| (m, clustering::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("clustering", &outs, 1e-9);
    assert!(clustering::run(Mode::PyOmp, 2, &p).is_err());
}

#[test]
fn wordcount_modes_agree_and_pyomp_cannot() {
    let p = wordcount::Params {
        lines: 60,
        words_per_line: 8,
        vocab: 120,
        seed: 8,
        ..wordcount::Params::default()
    };
    let outs: Vec<(Mode, f64)> = Mode::omp4py_modes()
        .into_iter()
        .map(|m| (m, wordcount::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("wordcount", &outs, 0.0);
    assert!(wordcount::run(Mode::PyOmp, 2, &p).is_err());
}

#[test]
fn thread_counts_do_not_change_results() {
    // Determinism across team sizes, the most common parallelism bug.
    let p = pi::Params { n: 3_000 };
    let reference = pi::run(Mode::CompiledDT, 1, &p).unwrap().check;
    for threads in [2, 3, 8] {
        let v = pi::run(Mode::CompiledDT, threads, &p).unwrap().check;
        assert!((v - reference).abs() < 1e-12, "threads={threads}");
    }
    let qp = qsort::Params { n: 2_000, cutoff: 100, seed: 9 };
    let reference = qsort::run(Mode::CompiledDT, 1, &qp).unwrap().check;
    for threads in [2, 4] {
        assert_eq!(qsort::run(Mode::CompiledDT, threads, &qp).unwrap().check, reference);
    }
}

#[test]
fn table1_features_are_exposed() {
    // The Table I generator relies on these constants.
    for features in [
        fft::FEATURES,
        jacobi::FEATURES,
        lu::FEATURES,
        md::FEATURES,
        pi::FEATURES,
        qsort::FEATURES,
        bfs::FEATURES,
    ] {
        assert!(features.contains("parallel"), "{features}");
    }
    assert!(jacobi::FEATURES.contains("explicit barrier"));
    assert!(qsort::FEATURES.contains("task with if clause"));
}
