//! Cross-mode equivalence: every benchmark must produce the same result in
//! every execution mode (the modes differ only in *how fast* they run).

use omp4rs_apps::*;

fn assert_agree(name: &str, outs: &[(Mode, f64)], tol: f64) {
    let reference = outs[0].1;
    for (mode, value) in outs {
        let scale = reference.abs().max(1.0);
        assert!(
            (value - reference).abs() <= tol * scale,
            "{name}: {mode} produced {value}, expected ~{reference}"
        );
    }
}

#[test]
fn pi_all_modes_agree() {
    let p = pi::Params { n: 4_000 };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, pi::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("pi", &outs, 1e-9);
}

#[test]
fn fft_all_modes_agree() {
    let p = fft::Params { log2_n: 6, seed: 1 };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, fft::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("fft", &outs, 1e-9);
}

#[test]
fn jacobi_all_modes_agree() {
    let p = jacobi::Params {
        n: 16,
        max_iters: 300,
        tol: 1e-8,
        seed: 2,
    };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, jacobi::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("jacobi", &outs, 1e-6);
}

#[test]
fn lu_all_modes_agree() {
    let p = lu::Params { n: 12, seed: 3 };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, lu::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("lu", &outs, 1e-9);
}

#[test]
fn md_all_modes_agree() {
    let p = md::Params {
        n: 12,
        steps: 1,
        seed: 4,
    };
    let outs: Vec<(Mode, f64)> = Mode::all()
        .into_iter()
        .map(|m| (m, md::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("md", &outs, 1e-8);
}

#[test]
fn qsort_modes_agree_and_pyomp_cannot() {
    let p = qsort::Params {
        n: 400,
        cutoff: 64,
        seed: 5,
    };
    let outs: Vec<(Mode, f64)> = Mode::omp4py_modes()
        .into_iter()
        .map(|m| (m, qsort::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("qsort", &outs, 0.0);
    assert!(qsort::run(Mode::PyOmp, 2, &p).is_err());
}

#[test]
fn bfs_modes_agree_and_pyomp_cannot() {
    let p = bfs::Params {
        side: 13,
        wall_probability: 0.3,
        seed: 6,
    };
    let outs: Vec<(Mode, f64)> = Mode::omp4py_modes()
        .into_iter()
        .map(|m| (m, bfs::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("bfs", &outs, 0.0);
    assert_eq!(outs[0].1 as usize, bfs::seq(&p));
    assert!(bfs::run(Mode::PyOmp, 2, &p).is_err());
}

#[test]
fn clustering_modes_agree_and_pyomp_cannot() {
    let p = clustering::Params {
        nodes: 80,
        edges_per_node: 6,
        seed: 7,
        ..clustering::Params::default()
    };
    let outs: Vec<(Mode, f64)> = Mode::omp4py_modes()
        .into_iter()
        .map(|m| (m, clustering::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("clustering", &outs, 1e-9);
    assert!(clustering::run(Mode::PyOmp, 2, &p).is_err());
}

#[test]
fn wordcount_modes_agree_and_pyomp_cannot() {
    let p = wordcount::Params {
        lines: 60,
        words_per_line: 8,
        vocab: 120,
        seed: 8,
        ..wordcount::Params::default()
    };
    let outs: Vec<(Mode, f64)> = Mode::omp4py_modes()
        .into_iter()
        .map(|m| (m, wordcount::run(m, 2, &p).unwrap().check))
        .collect();
    assert_agree("wordcount", &outs, 0.0);
    assert!(wordcount::run(Mode::PyOmp, 2, &p).is_err());
}

#[test]
fn thread_counts_do_not_change_results() {
    // Determinism across team sizes, the most common parallelism bug.
    let p = pi::Params { n: 3_000 };
    let reference = pi::run(Mode::CompiledDT, 1, &p).unwrap().check;
    for threads in [2, 3, 8] {
        let v = pi::run(Mode::CompiledDT, threads, &p).unwrap().check;
        assert!((v - reference).abs() < 1e-12, "threads={threads}");
    }
    let qp = qsort::Params {
        n: 2_000,
        cutoff: 100,
        seed: 9,
    };
    let reference = qsort::run(Mode::CompiledDT, 1, &qp).unwrap().check;
    for threads in [2, 4] {
        assert_eq!(
            qsort::run(Mode::CompiledDT, threads, &qp).unwrap().check,
            reference
        );
    }
}

#[test]
fn table1_features_are_exposed() {
    // The Table I generator relies on these constants.
    for features in [
        fft::FEATURES,
        jacobi::FEATURES,
        lu::FEATURES,
        md::FEATURES,
        pi::FEATURES,
        qsort::FEATURES,
        bfs::FEATURES,
    ] {
        assert!(features.contains("parallel"), "{features}");
    }
    assert!(jacobi::FEATURES.contains("explicit barrier"));
    assert!(qsort::FEATURES.contains("task with if clause"));
}

// ---------------------------------------------------------------------------
// Fault tolerance across modes: a panicking teammate or a cancelled loop
// must leave the region promptly in every execution mode and both backends.
// ---------------------------------------------------------------------------

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use minipy::Value;
use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::{Backend, Icvs, ScheduleKind};

const BACKENDS: [Backend; 2] = [Backend::Mutex, Backend::Atomic];

/// Generous bound: only a real deadlock would reach this.
const HANG_LIMIT: Duration = Duration::from_secs(30);

/// Run `f` with the cancel-var ICV enabled, serialized against the other
/// ICV-flipping tests in this binary.
fn with_cancellation(f: impl FnOnce()) {
    static ICV_LOCK: Mutex<()> = Mutex::new(());
    let _lock = ICV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let before = Icvs::current();
    Icvs::update(|icvs| icvs.cancellation = true);
    let result = catch_unwind(AssertUnwindSafe(f));
    Icvs::reset(before);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

#[test]
fn panic_in_one_team_thread_reraises_after_join() {
    for backend in BACKENDS {
        let cfg = ParallelConfig::new().num_threads(4).backend(backend);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg, |ctx| {
                if ctx.thread_num() == 2 {
                    panic!("thread 2 exploded");
                }
                // The teammates run straight to the implicit end barrier;
                // the poisoned team must wake them rather than strand them.
            });
        }));
        let payload = result.expect_err("the panic must re-raise after the join");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "thread 2 exploded", "{backend:?}");
        assert!(
            start.elapsed() < HANG_LIMIT,
            "{backend:?}: teammates deadlocked"
        );
    }
}

#[test]
fn panic_in_a_task_reraises_after_join() {
    for backend in BACKENDS {
        let cfg = ParallelConfig::new().num_threads(2).backend(backend);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg, |ctx| {
                ctx.single(|| {
                    ctx.task(|_| panic!("task exploded"));
                });
            });
        }));
        let payload = result.expect_err("the task panic must re-raise after the join");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task exploded", "{backend:?}");
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
    }
}

/// The interpreted half of the four-mode cancellation check: the same
/// `cancel(for)` semantics through the omp() directive strings.
const CANCEL_SOURCE: &str = r#"
from omp4py import *

@omp
def count_until_cancel(n):
    executed = 0
    with omp("parallel num_threads(2)"):
        with omp("for schedule(dynamic, 1) reduction(+:executed)"):
            for i in range(n):
                executed += 1
                if executed >= 10:
                    omp("cancel(for)")
                omp("cancellation point(for)")
    return executed
"#;

#[test]
fn cancel_for_stops_chunk_claims_in_all_four_modes() {
    with_cancellation(|| {
        // Compiled / CompiledDT: native closures, one per backend.
        for backend in BACKENDS {
            let executed = AtomicUsize::new(0);
            let cfg = ParallelConfig::new().num_threads(2).backend(backend);
            parallel_region(&cfg, |ctx| {
                ctx.for_each(
                    ForSpec::new().schedule(ScheduleKind::Dynamic, Some(1)),
                    0..100_000,
                    |_| {
                        if executed.fetch_add(1, Ordering::SeqCst) + 1 >= 10 {
                            assert!(ctx.cancel("for"));
                        }
                    },
                );
            });
            let n = executed.load(Ordering::SeqCst);
            assert!(
                n >= 10,
                "{backend:?}: cancel fired before 10 iterations ({n})"
            );
            assert!(
                n < 1_000,
                "{backend:?}: cancel did not stop the claims ({n})"
            );
        }
        // Pure / Hybrid: each thread stops claiming chunks once one of them
        // has counted 10 iterations into its private reduction copy.
        for mode in [Mode::Pure, Mode::Hybrid] {
            let total = 10_000i64;
            let runner = modes::interpreted_runner(mode, CANCEL_SOURCE);
            let executed = runner
                .call_global("count_until_cancel", vec![Value::Int(total)])
                .expect("cancel source runs")
                .as_int()
                .expect("count_until_cancel returns int");
            assert!(executed >= 10, "{mode}: cancel fired early ({executed})");
            assert!(
                executed < total,
                "{mode}: cancel(for) did not stop the loop ({executed})"
            );
        }
    });
}
