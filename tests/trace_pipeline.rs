//! Deterministic tests for the bounded trace pipeline (`omp4rs::ompt`):
//! exact overflow-policy behavior on tiny rings, loss accounting in
//! `ring_stats`/trace footers, flusher lifecycle around `finalize`, rotation
//! and pruning of part files, and the `block`-policy/region-deadline
//! interaction (backpressure may stall a region, never hang it).
//!
//! Determinism comes from [`ompt::set_flusher_paused`]: with the dedicated
//! flusher held off, a capacity-`N` ring receiving `M > N` events must
//! resolve exactly `M - N` overflows through the configured policy.

use omp4rs::exec::{parallel_region_result, ParallelConfig};
use omp4rs::ompt::{self, EventKind, ToolConfig, TracePolicy};
use omp4rs::{Icvs, OmpError};

/// Record `n` distinguishable events on this thread (the payload indexes
/// them so tests can see *which* events a policy kept).
fn record_indexed(n: u64) {
    for i in 0..n {
        ompt::record(1, EventKind::BarrierExit { wait_ns: i });
    }
}

/// The `wait_ns` payloads that survived, in drain order.
fn surviving_indexes() -> Vec<u64> {
    ompt::events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::BarrierExit { wait_ns } => Some(wait_ns),
            _ => None,
        })
        .collect()
}

#[test]
fn drop_newest_keeps_the_oldest_events_and_counts_exactly() {
    let _s = ompt::session(ToolConfig {
        ring_capacity: 4,
        policy: TracePolicy::DropNewest,
        ..ToolConfig::default()
    });
    ompt::set_flusher_paused(true);
    record_indexed(10);
    assert_eq!(ompt::dropped_events(), 6, "exactly M - N events dropped");
    assert_eq!(
        surviving_indexes(),
        vec![0, 1, 2, 3],
        "arrivals kept in order"
    );
    let stats = ompt::ring_stats();
    assert_eq!(stats.dropped, 6);
    assert_eq!(stats.capacity, 4);
    assert!(stats.bounded_bytes() > 0);
}

#[test]
fn drop_oldest_keeps_the_newest_events_and_counts_exactly() {
    let _s = ompt::session(ToolConfig {
        ring_capacity: 4,
        policy: TracePolicy::DropOldest,
        ..ToolConfig::default()
    });
    ompt::set_flusher_paused(true);
    record_indexed(10);
    assert_eq!(ompt::dropped_events(), 6, "exactly M - N events dropped");
    assert_eq!(
        surviving_indexes(),
        vec![6, 7, 8, 9],
        "newest events survive"
    );
}

#[test]
fn block_is_lossless_even_with_the_flusher_paused() {
    let _s = ompt::session(ToolConfig {
        ring_capacity: 4,
        policy: TracePolicy::Block,
        ..ToolConfig::default()
    });
    ompt::set_flusher_paused(true);
    // Every 4th push overflows; with no flusher responding, the pusher's
    // sliced wait expires and it drains its own ring — lossless either way.
    record_indexed(50);
    assert_eq!(ompt::dropped_events(), 0, "block never drops");
    assert_eq!(surviving_indexes().len(), 50, "every event survives");
}

#[test]
fn block_with_expired_deadline_surfaces_region_timeout_not_a_hang() {
    let _s = ompt::session(ToolConfig {
        ring_capacity: 1,
        policy: TracePolicy::Block,
        ..ToolConfig::default()
    });
    ompt::set_flusher_paused(true);
    let before = Icvs::current();
    Icvs::update(|icvs| icvs.region_deadline = Some(std::time::Duration::from_millis(25)));

    let started = std::time::Instant::now();
    let cfg = ParallelConfig::new().num_threads(2);
    let result = parallel_region_result(&cfg, |_ctx| {
        // Outlive the deadline, then force overflows on the 1-slot ring: the
        // blocked push must trip the deadline ("trace") instead of waiting.
        std::thread::sleep(std::time::Duration::from_millis(40));
        for _ in 0..8 {
            ompt::record_here(EventKind::TaskComplete);
        }
    });
    Icvs::reset(before);

    assert!(
        matches!(result, Err(OmpError::RegionTimeout { .. })),
        "expected RegionTimeout, got {result:?}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "a block-policy push under an expired deadline must return promptly"
    );
    assert!(
        ompt::dropped_events() > 0,
        "the deadline-tripping push counts its event as dropped"
    );
}

#[test]
fn flusher_runs_during_a_session_and_stops_before_summary_artifacts() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "trace_pipeline_flusher_{}.json",
        std::process::id()
    ));
    let path = path.display().to_string();
    let _s = ompt::session(ToolConfig {
        trace_path: Some(path.clone()),
        summary: false,
        ..ToolConfig::default()
    });
    assert!(ompt::flusher_running(), "enable spawns the flusher");

    record_indexed(100);
    // The flusher drains rings on its own: flushed grows without this test
    // ever calling `events()`.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while ompt::ring_stats().flushed < 100 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(
        ompt::ring_stats().flushed >= 100,
        "flusher drained the ring"
    );

    let written = ompt::finalize()
        .expect("trace writable")
        .expect("path configured");
    assert!(
        !ompt::flusher_running(),
        "finalize stops the flusher before rendering artifacts"
    );
    let text = std::fs::read_to_string(&written).expect("trace file readable");
    ompt::validate_chrome_trace(&text).expect("trace is valid");
    let _ = std::fs::remove_file(&written);
}

#[test]
fn lossy_run_stamps_drop_counter_into_the_trace_footer() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("trace_pipeline_footer_{}.json", std::process::id()));
    let path = path.display().to_string();
    let _s = ompt::session(ToolConfig {
        trace_path: Some(path.clone()),
        summary: false,
        ring_capacity: 4,
        policy: TracePolicy::DropNewest,
        ..ToolConfig::default()
    });
    ompt::set_flusher_paused(true);
    record_indexed(10);
    let written = ompt::finalize()
        .expect("trace writable")
        .expect("path configured");
    let text = std::fs::read_to_string(&written).expect("trace file readable");
    assert!(
        text.contains("\"omp4rs.trace.dropped\""),
        "truncation is never silent: the footer carries the drop counter"
    );
    assert!(
        ompt::summary().contains("trace ring overflow"),
        "the summary banner flags the loss too"
    );
    let _ = std::fs::remove_file(&written);
}

#[test]
fn rotation_emits_multiple_valid_parts_and_prunes_to_keep() {
    let dir = std::env::temp_dir();
    let base = dir.join(format!("trace_pipeline_rotate_{}.json", std::process::id()));
    let base = base.display().to_string();
    let keep = 2usize;
    let _s = ompt::session(ToolConfig {
        trace_path: Some(base.clone()),
        summary: false,
        rotate_kib: Some(1), // rotate every KiB: a few hundred events = many parts
        rotate_keep: keep,
        ..ToolConfig::default()
    });
    // ChunkClaim renders unconditionally (an instant per event), so the
    // writer's byte count grows deterministically toward the rotate size.
    // Rotation is checked per drained batch; flushing between bursts makes
    // the batch boundaries (and so the part count) deterministic.
    for burst in 0..20u64 {
        for i in 0..100 {
            let lo = burst * 100 + i;
            ompt::record(1, EventKind::ChunkClaim { lo, hi: lo + 1 });
        }
        ompt::flush_thread();
    }
    ompt::finalize().expect("trace parts writable");

    let stem = base.strip_suffix(".json").unwrap();
    let mut found = Vec::new();
    for idx in 0..4096 {
        let path = format!("{stem}.{idx}.json");
        if let Ok(text) = std::fs::read_to_string(&path) {
            found.push(idx);
            ompt::validate_chrome_trace(&text)
                .unwrap_or_else(|e| panic!("part {idx} is not a valid Chrome trace: {e}"));
            let _ = std::fs::remove_file(&path);
        }
    }
    assert!(
        found.len() >= 2,
        "2000 events across 1 KiB parts must rotate"
    );
    assert!(
        found.len() <= keep,
        "pruning keeps at most rotate_keep parts, found {found:?}"
    );
    assert!(
        found[0] > 0,
        "early parts were pruned, so indices start late"
    );
}
