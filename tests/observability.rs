//! Integration tests for the OMPT-inspired profiler (`omp4rs::ompt`):
//! event-stream well-formedness, metric consistency, Chrome-trace round
//! trips, the disabled-profiler guarantee across execution modes, and the
//! Pure-vs-Compiled interpreter-counter contrast.
//!
//! Every test takes an `ompt::session` (or `disabled_session`), which
//! serializes profiler use across concurrently running tests.

use std::sync::atomic::{AtomicU64, Ordering};

use omp4rs::ompt::{self, Event, EventKind};
use omp4rs_apps::{pi, Mode};

/// Run a small instrumented region and return (its region id, all events).
fn traced_region() -> (u64, Vec<Event>) {
    let region_id = AtomicU64::new(0);
    omp4rs::parallel("num_threads(3)", |ctx| {
        let frame = omp4rs::context::current_frame().expect("inside a region");
        region_id.store(frame.team.region(), Ordering::Relaxed);
        ctx.for_each(omp4rs::ForSpec::new(), 0..96, |_i| {});
        ctx.barrier();
        if ctx.thread_num() == 0 {
            ctx.task(|_t| {});
            ctx.task(|_t| {});
        }
        ctx.taskwait();
    });
    let region = region_id.load(Ordering::Relaxed);
    assert_ne!(region, 0, "teams draw nonzero region ids");
    let events: Vec<Event> = ompt::events()
        .into_iter()
        .filter(|e| e.region == region)
        .collect();
    (region, events)
}

#[test]
fn event_stream_is_well_formed_per_thread() {
    let _s = ompt::session(ompt::ToolConfig::default());
    let (_, events) = traced_region();

    let threads: std::collections::BTreeSet<u32> = events.iter().map(|e| e.thread).collect();
    assert_eq!(threads.len(), 3, "one event stream per team thread");

    for &t in &threads {
        let stream: Vec<&Event> = events.iter().filter(|e| e.thread == t).collect();
        // The region brackets the stream: ParallelBegin first, ParallelEnd
        // last, exactly once each.
        assert!(matches!(
            stream.first().unwrap().kind,
            EventKind::ParallelBegin { team_size: 3 }
        ));
        assert!(matches!(
            stream.last().unwrap().kind,
            EventKind::ParallelEnd
        ));
        let begins = stream
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ParallelBegin { .. }))
            .count();
        let ends = stream
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ParallelEnd))
            .count();
        assert_eq!((begins, ends), (1, 1));

        // Barriers nest properly: enter/exit strictly alternate.
        let mut in_barrier = false;
        for e in &stream {
            match e.kind {
                EventKind::BarrierEnter { .. } => {
                    assert!(!in_barrier, "barrier enter while already in a barrier");
                    in_barrier = true;
                }
                EventKind::BarrierExit { .. } => {
                    assert!(in_barrier, "barrier exit without a matching enter");
                    in_barrier = false;
                }
                _ => {}
            }
        }
        assert!(!in_barrier, "unclosed barrier at region end");

        // Timestamps are non-decreasing within a thread's stream.
        assert!(stream.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));

        // Every claimed chunk completes.
        let claims = stream
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ChunkClaim { .. }))
            .count();
        let dones = stream
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ChunkDone { .. }))
            .count();
        assert_eq!(claims, dones);
    }

    // Task lifecycle balances region-wide (tasks may migrate threads).
    let created = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskCreate { .. }))
        .count();
    let completed = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskComplete))
        .count();
    assert!(created >= 2, "both explicit tasks were created");
    assert_eq!(created, completed);
}

#[test]
fn barrier_wait_metrics_are_consistent() {
    let _s = ompt::session(ompt::ToolConfig::default());
    let (region, events) = traced_region();

    let metrics = ompt::aggregate(&events);
    assert_eq!(metrics.len(), 1);
    let m = &metrics[0];
    assert_eq!(m.region, region);
    assert_eq!(m.threads, 3);
    assert!(m.span_ns > 0);

    // The aggregate equals the sum over the raw exit events, and the
    // recorded maximum is one of the addends.
    let exits: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::BarrierExit { wait_ns } => Some(wait_ns),
            _ => None,
        })
        .collect();
    assert_eq!(m.barriers, exits.len() as u64);
    assert_eq!(m.barrier_wait_ns, exits.iter().sum::<u64>());
    assert_eq!(
        m.barrier_wait_max_ns,
        exits.iter().copied().max().unwrap_or(0)
    );
    assert!(m.barrier_wait_max_ns <= m.barrier_wait_ns);
    // Explicit barrier + implicit loop/region barriers, on every thread.
    assert!(m.barriers >= 3 * 3);
}

#[test]
fn chrome_trace_round_trips_with_live_events() {
    let session = ompt::session(ompt::ToolConfig::default());
    let (_, events) = traced_region();
    assert!(!events.is_empty());

    ompt::set_counter("test.marker", 7);
    let trace = session.chrome_trace();
    let stats = ompt::validate_chrome_trace(&trace).expect("emitted trace is valid");
    assert!(stats.events > 0);
    assert!(stats.counters >= 1);
}

#[test]
fn disabled_profiler_records_nothing_in_any_mode() {
    let _s = ompt::disabled_session();
    for mode in Mode::all() {
        // Every supported mode runs a real parallel π; unsupported mode
        // combinations just return Err and prove nothing either way.
        let _ = pi::run(mode, 2, &pi::Params { n: 2_000 });
    }
    assert!(
        ompt::events().is_empty(),
        "disabled profiler must record zero events"
    );
}

#[test]
fn interpreter_counters_contrast_pure_vs_compiled() {
    let _s = ompt::session(ompt::ToolConfig::default());

    // Pure mode: interpreted user code touches shared minipy containers, so
    // the per-object lock counters must light up.
    minipy::stats::reset();
    minipy::stats::set_enabled(true);
    pi::run(Mode::Pure, 2, &pi::Params { n: 2_000 }).expect("pure pi runs");
    let pure = minipy::stats::snapshot();
    assert!(
        pure.obj_lock_acquisitions > 0,
        "interpreted mode must take per-object locks"
    );

    // Compiled mode: native closures never enter the interpreter.
    minipy::stats::reset();
    pi::run(Mode::Compiled, 2, &pi::Params { n: 2_000 }).expect("compiled pi runs");
    let compiled = minipy::stats::snapshot();
    minipy::stats::set_enabled(false);
    assert_eq!(compiled.obj_lock_acquisitions, 0);
    assert_eq!(compiled.gil_hold_ns, 0);
}
