//! End-to-end differential harness for the bytecode VM: pyfront-transformed
//! programs (`@omp` decorator, directive strings, runtime intrinsics) run
//! under every `OMP4RS_MINIPY_VM` setting x interpreted execution mode, and
//! the observable behavior — return values, stdout, raised errors,
//! cancellation semantics — must be identical to the tree-walker's.
//!
//! The minipy-level harness (`crates/minipy/tests/vm_differential.rs`)
//! covers the language; this one covers the `__omp` intrinsic opcodes
//! (`CallIntrinsic` chunk claims, barriers, reduction merges) and the
//! `Icvs::minipy_vm` -> `bytecode::set_mode` /
//! `Icvs::minipy_quicken` -> `bytecode::set_quicken_mode` mirrors in
//! `install`. The VM cells also sweep the quickening tier (generic,
//! quickened, quickened+unboxed).

use std::sync::Mutex;

use minipy::{Interp, Value};
use omp4rs::{Icvs, MinipyQuicken, MinipyVm};
use omp4rs_apps::modes::close;
use omp4rs_pyfront::{ExecMode, Runner};

const EXEC_MODES: [ExecMode; 2] = [ExecMode::Pure, ExecMode::Hybrid];

/// Every (VM, quicken) cell the sweeps cover. The first cell is the
/// tree-walking reference; the rest route through the bytecode tier with
/// progressively more of the quickening machinery enabled.
const CELLS: [(MinipyVm, MinipyQuicken); 5] = [
    (MinipyVm::Off, MinipyQuicken::Off),
    (MinipyVm::Auto, MinipyQuicken::Off),
    (MinipyVm::On, MinipyQuicken::Off),
    (MinipyVm::On, MinipyQuicken::Auto),
    (MinipyVm::On, MinipyQuicken::On),
];

/// Serialize ICV flips (`minipy_vm`, `cancellation`) across this binary's
/// concurrently running tests.
fn icv_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run one program under one (exec mode, vm setting, quicken setting):
/// call `entry(args)` and return (outcome, stdout). The caller holds the
/// ICV lock.
fn run_case(
    exec: ExecMode,
    vm: MinipyVm,
    quicken: MinipyQuicken,
    src: &str,
    entry: &str,
    args: Vec<Value>,
) -> (Result<Value, String>, String) {
    Icvs::update(|i| {
        i.minipy_vm = vm;
        i.minipy_quicken = quicken;
    });
    // `install` (via Runner) mirrors the ICV into `minipy::bytecode`.
    let runner = Runner::with_interp(Interp::new().capture_output(), exec);
    runner.run(src).expect("program loads");
    let result = runner
        .call_global(entry, args)
        .map_err(|e| format!("{e}@{:?}", e.line));
    let out = runner.interp().output().unwrap_or_default();
    (result, out)
}

/// Assert a deterministic program behaves identically across all VM
/// settings, in both interpreted modes.
fn differential(src: &str, entry: &str, args: &[Value]) {
    let _guard = icv_lock();
    let before = Icvs::current();
    for exec in EXEC_MODES {
        // `Value` has no `PartialEq`; a debug rendering is canonical for
        // the ints/floats/lists this corpus returns.
        let canon = |(r, out): (Result<Value, String>, String)| (r.map(|v| format!("{v:?}")), out);
        let (ref_vm, ref_q) = CELLS[0];
        let reference = canon(run_case(exec, ref_vm, ref_q, src, entry, args.to_vec()));
        for (vm, quicken) in &CELLS[1..] {
            let got = canon(run_case(exec, *vm, *quicken, src, entry, args.to_vec()));
            assert_eq!(
                got, reference,
                "{exec:?}/{vm:?}/quicken={quicken:?} diverges from the tree-walker for {entry}"
            );
        }
    }
    Icvs::reset(before);
}

// ---------------------------------------------------------------------------
// Deterministic corpus: exact equality across settings.
// ---------------------------------------------------------------------------

#[test]
fn integer_reduction_with_critical_is_mode_invariant() {
    // Integer `+` reduction and a critical-guarded counter: exact results,
    // exercising for_chunk/for_next, reduction merge, and critical enter.
    let src = r#"
from omp4py import *

@omp
def count(n):
    total = 0
    hits = 0
    with omp("parallel num_threads(4)"):
        with omp("for reduction(+:total)"):
            for i in range(n):
                total += i
        with omp("critical"):
            hits += 1
    return [total, hits]
"#;
    differential(src, "count", &[Value::Int(1_000)]);
}

#[test]
fn schedules_and_nowait_are_mode_invariant() {
    let src = r#"
from omp4py import *

@omp
def sweep(n):
    a = 0
    b = 0
    c = 0
    with omp("parallel num_threads(3)"):
        with omp("for schedule(static, 7) reduction(+:a)"):
            for i in range(n):
                a += i * i
        with omp("for schedule(dynamic, 5) reduction(+:b) nowait"):
            for i in range(n):
                b += i
        with omp("for schedule(guided) reduction(+:c)"):
            for i in range(n):
                c += 1
    return [a, b, c]
"#;
    differential(src, "sweep", &[Value::Int(500)]);
}

#[test]
fn single_output_is_mode_invariant() {
    // Only the single-winner prints: stdout is deterministic.
    let src = r#"
from omp4py import *

@omp
def announce(n):
    with omp("parallel num_threads(2)"):
        with omp("single"):
            print("once", n)
        omp("barrier")
    return n
"#;
    differential(src, "announce", &[Value::Int(3)]);
}

#[test]
fn error_raised_inside_a_region_is_mode_invariant() {
    // Every thread raises the same error on its first iteration; the
    // first-error slot makes the propagated message deterministic.
    let src = r#"
from omp4py import *

@omp
def explode(n):
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            if i >= 0:
                raise ValueError("region boom")
            total += i
    return total
"#;
    differential(src, "explode", &[Value::Int(100)]);
}

#[test]
fn arity_error_through_the_decorated_function_is_mode_invariant() {
    let src = r#"
from omp4py import *

@omp
def takes_two(a, b):
    with omp("parallel num_threads(2)"):
        pass
    return a + b
"#;
    differential(src, "takes_two", &[Value::Int(1)]);
}

// ---------------------------------------------------------------------------
// Tolerance / invariant corpus: float reductions and cancellation are not
// bit-deterministic, so the settings are held to the same contracts.
// ---------------------------------------------------------------------------

#[test]
fn pi_converges_identically_under_every_setting() {
    let src = r#"
from omp4py import *

@omp
def pi(n):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(4)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
"#;
    let _guard = icv_lock();
    let before = Icvs::current();
    for exec in EXEC_MODES {
        for (vm, quicken) in CELLS {
            let (result, out) = run_case(exec, vm, quicken, src, "pi", vec![Value::Int(50_000)]);
            let value = result.expect("pi runs").as_float().expect("a float");
            assert!(
                close(value, std::f64::consts::PI, 1e-6),
                "{exec:?}/{vm:?}/quicken={quicken:?}: pi={value}"
            );
            assert!(
                out.is_empty(),
                "{exec:?}/{vm:?}/quicken={quicken:?}: unexpected stdout {out:?}"
            );
        }
    }
    Icvs::reset(before);
}

#[test]
fn cancellation_contract_holds_under_every_setting() {
    // `cancel(for)` stops chunk claims promptly whether iterations run on
    // the tree-walker or the VM. The exact count is scheduling-dependent, so
    // each setting is held to the same bounds instead of exact equality.
    let src = r#"
from omp4py import *

@omp
def count_until_cancel(n):
    executed = 0
    with omp("parallel num_threads(2)"):
        with omp("for schedule(dynamic, 1) reduction(+:executed)"):
            for i in range(n):
                executed += 1
                if executed >= 10:
                    omp("cancel(for)")
                omp("cancellation point(for)")
    return executed
"#;
    let _guard = icv_lock();
    let before = Icvs::current();
    Icvs::update(|i| i.cancellation = true);
    for exec in EXEC_MODES {
        for (vm, quicken) in CELLS {
            let (result, _) = run_case(
                exec,
                vm,
                quicken,
                src,
                "count_until_cancel",
                vec![Value::Int(100_000)],
            );
            let executed = result
                .expect("cancelled loop returns")
                .as_int()
                .expect("int");
            assert!(
                (10..1_000).contains(&executed),
                "{exec:?}/{vm:?}/quicken={quicken:?}: cancel did not bound the loop \
                 (executed={executed})"
            );
        }
    }
    Icvs::reset(before);
}

#[test]
fn vm_settings_actually_change_the_execution_tier() {
    // Guard against vacuous passes: `off` must execute zero VM frames and
    // `on` must execute many, through the full pyfront pipeline.
    let src = r#"
from omp4py import *

@omp
def work(n):
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            total += i
    return total
"#;
    let _guard = icv_lock();
    let before = Icvs::current();
    let frames_under = |vm: MinipyVm| {
        Icvs::update(|i| i.minipy_vm = vm);
        let runner = Runner::new(ExecMode::Pure);
        runner.run(src).expect("program loads");
        minipy::stats::reset();
        minipy::stats::set_enabled(true);
        let total = runner
            .call_global("work", vec![Value::Int(10_000)])
            .expect("work runs")
            .as_int()
            .expect("int");
        assert_eq!(total, 10_000 * 9_999 / 2);
        let frames = minipy::stats::snapshot().vm_frames;
        minipy::stats::set_enabled(false);
        frames
    };
    assert_eq!(frames_under(MinipyVm::Off), 0, "off must tree-walk");
    assert!(frames_under(MinipyVm::On) > 0, "on must use the VM");
    Icvs::reset(before);
}

#[test]
fn quicken_settings_actually_change_the_dispatch_tier() {
    // Same vacuity guard for the quickening tier, through the full pyfront
    // pipeline: `off` must never rewrite an instruction, `on` must.
    let src = r#"
from omp4py import *

@omp
def work(n):
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            total += i
    return total
"#;
    let _guard = icv_lock();
    let before = Icvs::current();
    let rewrites_under = |quicken: MinipyQuicken| {
        Icvs::update(|i| {
            i.minipy_vm = MinipyVm::On;
            i.minipy_quicken = quicken;
        });
        let runner = Runner::new(ExecMode::Pure);
        runner.run(src).expect("program loads");
        minipy::stats::reset();
        let total = runner
            .call_global("work", vec![Value::Int(10_000)])
            .expect("work runs")
            .as_int()
            .expect("int");
        assert_eq!(total, 10_000 * 9_999 / 2);
        minipy::stats::snapshot().quicken_rewrites
    };
    assert_eq!(
        rewrites_under(MinipyQuicken::Off),
        0,
        "quicken=off must run the generic tier"
    );
    assert!(
        rewrites_under(MinipyQuicken::On) > 0,
        "quicken=on must specialize instructions"
    );
    Icvs::reset(before);
}
