//! Criterion benches exercising every table/figure code path at small sizes.
//!
//! The full tables/figures come from the harness binaries
//! (`cargo run -p omp4rs-bench --release --bin figure5` etc.); these benches
//! keep each experiment's kernel measurable under `cargo bench` with one
//! target per table/figure, as required for regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omp4rs_apps::*;

/// Table I / Fig. 5 kernels: one small per-mode measurement per benchmark.
fn bench_figure5_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5");
    let modes = [Mode::Pure, Mode::Compiled, Mode::CompiledDT];
    for mode in modes {
        let scale = |full: usize| match mode {
            Mode::Pure | Mode::Hybrid => full / 50,
            Mode::Compiled => full / 4,
            _ => full,
        };
        group.bench_with_input(BenchmarkId::new("pi", mode.name()), &mode, |b, &mode| {
            let p = pi::Params {
                n: scale(100_000).max(100) as i64,
            };
            b.iter(|| pi::run(mode, 2, &p).expect("supported"));
        });
        group.bench_with_input(
            BenchmarkId::new("jacobi", mode.name()),
            &mode,
            |b, &mode| {
                let p = jacobi::Params {
                    n: scale(64).max(8),
                    max_iters: 10,
                    tol: 0.0,
                    ..jacobi::Params::default()
                };
                b.iter(|| jacobi::run(mode, 2, &p).expect("supported"));
            },
        );
        group.bench_with_input(BenchmarkId::new("qsort", mode.name()), &mode, |b, &mode| {
            let n = scale(40_000).max(200);
            let p = qsort::Params {
                n,
                cutoff: (n / 16).max(16),
                ..qsort::Params::default()
            };
            b.iter(|| qsort::run(mode, 2, &p).expect("supported"));
        });
    }
    group.finish();
}

/// Fig. 6 kernels: clustering & wordcount per mode.
fn bench_figure6_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6");
    for mode in [Mode::Pure, Mode::CompiledDT] {
        group.bench_with_input(
            BenchmarkId::new("clustering", mode.name()),
            &mode,
            |b, &mode| {
                let p = clustering::Params {
                    nodes: if mode.is_interpreted() { 100 } else { 800 },
                    edges_per_node: 8,
                    ..clustering::Params::default()
                };
                b.iter(|| clustering::run(mode, 2, &p).expect("supported"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("wordcount", mode.name()),
            &mode,
            |b, &mode| {
                let p = wordcount::Params {
                    lines: if mode.is_interpreted() { 60 } else { 1_500 },
                    ..wordcount::Params::default()
                };
                b.iter(|| wordcount::run(mode, 2, &p).expect("supported"));
            },
        );
    }
    group.finish();
}

/// Fig. 7 kernel: the schedule axis on the wordcount loop (native mode).
fn bench_figure7_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7");
    for kind in [
        omp4rs::ScheduleKind::Static,
        omp4rs::ScheduleKind::Dynamic,
        omp4rs::ScheduleKind::Guided,
    ] {
        group.bench_with_input(
            BenchmarkId::new("wordcount_schedule", kind.name()),
            &kind,
            |b, &kind| {
                let p = wordcount::Params {
                    lines: 1_500,
                    schedule: kind,
                    chunk: Some(300),
                    ..wordcount::Params::default()
                };
                let lines = wordcount::corpus(&p);
                b.iter(|| wordcount::native(&p, 2, &lines));
            },
        );
    }
    group.finish();
}

/// Fig. 8 kernel: one hybrid MPI/OpenMP jacobi iteration set per node count.
fn bench_figure8_hybrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8");
    for nodes in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("hybrid_jacobi_nodes", nodes),
            &nodes,
            |b, &nodes| {
                let p = hybrid::Params {
                    n: 48,
                    max_iters: 20,
                    tol: 0.0,
                    ..hybrid::Params::default()
                };
                b.iter(|| {
                    hybrid::run(
                        Mode::CompiledDT,
                        nodes,
                        2,
                        &p,
                        minimpi::NetModel::cluster(1),
                    )
                    .expect("supported")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets =
        bench_figure5_kernels,
        bench_figure6_kernels,
        bench_figure7_schedules,
        bench_figure8_hybrid
);
criterion_main!(figures);
