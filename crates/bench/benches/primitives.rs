//! Criterion microbenchmarks of the runtime primitives — the ablation axis
//! of the paper's dual-runtime design (§III): mutex- vs atomics-backed
//! counters, events, task queues, plus barrier and directive-parse costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omp4rs::directive::Directive;
use omp4rs::sync::{Backend, ClaimFlag, OmpEvent, SharedCounter, WorkBag};
use omp4rs::Team;

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_fetch_add");
    for backend in [Backend::Mutex, Backend::Atomic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                let counter = SharedCounter::new(backend);
                b.iter(|| std::hint::black_box(counter.fetch_add(1)));
            },
        );
    }
    group.finish();
}

fn bench_claim_flags(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_claim");
    for backend in [Backend::Mutex, Backend::Atomic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                b.iter_batched(
                    || ClaimFlag::new(backend),
                    |flag| std::hint::black_box(flag.try_claim()),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_set_and_check");
    for backend in [Backend::Mutex, Backend::Atomic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                b.iter_batched(
                    || OmpEvent::new(backend),
                    |event| {
                        event.set();
                        event.wait();
                        std::hint::black_box(event.is_set())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_task_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_submit_and_run");
    for backend in [Backend::Mutex, Backend::Atomic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                let team = Team::new(1, backend);
                b.iter(|| {
                    team.submit_task(Box::new(|| std::hint::black_box(())), true);
                    while team.run_one_task() {}
                });
            },
        );
    }
    group.finish();
}

fn bench_work_bag(c: &mut Criterion) {
    let mut group = c.benchmark_group("work_bag_push_pop");
    for backend in [Backend::Mutex, Backend::Atomic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                let bag: WorkBag<u64> = WorkBag::new(backend);
                b.iter(|| {
                    bag.push(1);
                    std::hint::black_box(bag.pop())
                });
            },
        );
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_single_thread");
    for backend in [Backend::Mutex, Backend::Atomic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                let team = Team::new(1, backend);
                b.iter(|| team.barrier());
            },
        );
    }
    group.finish();
}

fn bench_directive_parse(c: &mut Criterion) {
    // The transform-time cost of the paper's parser front half.
    let mut group = c.benchmark_group("directive_parse");
    for text in [
        "parallel",
        "parallel for reduction(+:pi_value) num_threads(4)",
        "for schedule(dynamic, 300) nowait ordered collapse(2)",
        "task if(depth < 4) firstprivate(a, b, c) final(n < 2)",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(text), &text, |b, text| {
            b.iter(|| Directive::parse(std::hint::black_box(text)).expect("valid"));
        });
    }
    group.finish();
}

fn bench_interpreter_statement(c: &mut Criterion) {
    // The Pure-mode overhead unit: one interpreted arithmetic statement.
    let interp = minipy::Interp::new();
    interp
        .run("def f(n):\n    acc = 0.0\n    for i in range(n):\n        acc += i * 0.5\n    return acc\n")
        .expect("program loads");
    let f = interp.get_global("f").expect("f defined");
    c.bench_function("interpreted_loop_1000_iters", |b| {
        b.iter(|| {
            interp
                .call(&f, vec![minipy::Value::Int(1000)])
                .expect("runs")
        });
    });
}

criterion_group!(
    name = primitives;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets =
        bench_counters,
        bench_claim_flags,
        bench_events,
        bench_task_queue,
        bench_work_bag,
        bench_barrier,
        bench_directive_parse,
        bench_interpreter_statement
);
criterion_main!(primitives);
