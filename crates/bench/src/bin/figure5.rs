//! Regenerate Fig. 5: scalability of the seven numerical applications under
//! Pure / Hybrid / Compiled / CompiledDT / PyOMP.
//!
//! Usage: `figure5 [--summary] [--scale <f64>] [--profile]`
//!
//! Methodology (see EXPERIMENTS.md): per-mode single-thread costs are
//! MEASURED on this host; the 1–32-thread curves are SIMULATED by replaying
//! each benchmark's OpenMP phase structure on a virtual 32-core machine with
//! those measured costs.

use omp4rs_apps::{pi, Mode};
use omp4rs_bench::{measure_primitives, sim_sweep, AppKind, PrimitiveCosts, SWEEP_THREADS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = omp4rs_bench::profile::begin(&mut args, "figure5");
    let summary = args.iter().any(|a| a == "--summary");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);

    println!("FIGURE 5 — scalability of the parallel numerical applications");
    println!("measured single-thread per-unit costs on this host; simulated 32-core sweep\n");
    let prims = measure_primitives();
    println!(
        "calibration: mutex claim {:.1} ns, atomic claim {:.1} ns, barrier {:.2} us, task {:.2} us\n",
        prims.mutex_claim * 1e9,
        prims.atomic_claim * 1e9,
        prims.barrier * 1e6,
        prims.task_round * 1e6
    );

    // speedup@32 per (app, mode) for the summary.
    let mut speedups: Vec<(AppKind, Mode, f64)> = Vec::new();
    let mut per_unit_ratio: Vec<(AppKind, f64)> = Vec::new();

    for app in AppKind::figure5() {
        println!("=== {} ===", app.name());
        // Measured single-thread costs per mode.
        let mut costs = Vec::new();
        for mode in Mode::all() {
            match omp4rs_bench::figures::measure(app, mode, scale) {
                Some(m) => {
                    println!(
                        "  measured {:<11} {:>10.2} ms over {:>9} units  → {:>9.1} ns/unit",
                        mode.name(),
                        m.seconds * 1e3,
                        m.units,
                        m.per_unit() * 1e9
                    );
                    costs.push((mode, m.per_unit()));
                }
                None => println!(
                    "  measured {:<11} unsupported ({})",
                    mode.name(),
                    app.name()
                ),
            }
        }
        if let (Some(pure), Some(dt)) = (
            costs
                .iter()
                .find(|(m, _)| *m == Mode::Pure)
                .map(|&(_, c)| c),
            costs
                .iter()
                .find(|(m, _)| *m == Mode::CompiledDT)
                .map(|&(_, c)| c),
        ) {
            per_unit_ratio.push((app, pure / dt));
        }

        // Simulated sweep.
        print!("  {:<11}", "sim threads");
        for t in SWEEP_THREADS {
            print!(" {t:>9}");
        }
        println!();
        for (mode, per_unit) in &costs {
            let sweep = sim_sweep(app, *mode, *per_unit, &prims, false, None);
            print!("  {:<11}", mode.name());
            let t1 = sweep[0].1;
            for &(_, t) in &sweep {
                print!(" {:>8.2}x", t1 / t);
            }
            println!("   (t1 = {:.2} ms)", t1 * 1e3);
            speedups.push((app, *mode, t1 / sweep.last().unwrap().1));
        }
        println!();
    }

    // `--summary` is accepted for compatibility; the summary always prints.
    let _ = summary;
    {
        println!("— summary (paper §IV-A quantities) —");
        let avg = |mode: Mode| -> f64 {
            let v: Vec<f64> = speedups
                .iter()
                .filter(|(_, m, _)| *m == mode)
                .map(|&(_, _, s)| s)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let max = |mode: Mode| -> f64 {
            speedups
                .iter()
                .filter(|(_, m, _)| *m == mode)
                .map(|&(_, _, s)| s)
                .fold(0.0, f64::max)
        };
        println!(
            "  avg speedup @32: Pure {:.1}x  Hybrid {:.1}x  Compiled {:.1}x  CompiledDT {:.1}x",
            avg(Mode::Pure),
            avg(Mode::Hybrid),
            avg(Mode::Compiled),
            avg(Mode::CompiledDT)
        );
        println!(
            "  max speedup @32: Pure {:.1}x  Compiled {:.1}x  CompiledDT {:.1}x",
            max(Mode::Pure),
            max(Mode::Compiled),
            max(Mode::CompiledDT)
        );
        // The paper compares PyOMP vs CompiledDT over the benchmarks PyOMP
        // can run (excluding qsort/bfs).
        let common: Vec<AppKind> = AppKind::figure5()
            .into_iter()
            .filter(|a| a.pyomp_supported())
            .collect();
        let avg_on = |mode: Mode| -> f64 {
            let v: Vec<f64> = speedups
                .iter()
                .filter(|(a, m, _)| *m == mode && common.contains(a))
                .map(|&(_, _, s)| s)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let (pyomp_avg, dt_avg) = (avg_on(Mode::PyOmp), avg_on(Mode::CompiledDT));
        println!(
            "  PyOMP-supported subset @32: PyOMP {pyomp_avg:.1}x vs CompiledDT {dt_avg:.1}x \
             → OMP4Py {:+.1}% (paper: +4.5%)",
            (dt_avg / pyomp_avg - 1.0) * 100.0
        );
        let gap: f64 = per_unit_ratio.iter().map(|&(_, r)| r).sum::<f64>()
            / per_unit_ratio.len().max(1) as f64;
        println!(
            "  avg measured Pure/CompiledDT per-unit gap: {gap:.0}x (paper: ~785x at 32 threads)"
        );
        println!("  (paper reference: Pure max 3.6x; Compiled up to 10.6x; CompiledDT avg 10.1x, max 16.2x; PyOMP avg 9.9x)");
    }
    if profile.active() {
        barrier_wait_comparison(&prims, scale);
    }
    profile.finish();
}

/// `--profile` extra: sweep the pi workload over 1–32 simulated threads and
/// report the simulator's barrier-wait accounting next to a measured,
/// profiler-instrumented Pure-mode run on this host — the validation loop
/// for the barrier-wait share the profiler exposes.
///
/// The simulation replays the *measured* problem size under the schedule the
/// adaptive runtime picks for interpreted loops (guided with the
/// overhead-derived minimum chunk), so measured and simulated rows are
/// directly comparable.
fn barrier_wait_comparison(prims: &PrimitiveCosts, scale: f64) {
    use simcore::{simulate_report, ClaimCost, CostModel, Machine, Phase, SimSchedule, Workload};

    println!("\n— barrier wait: measured (profiler) vs simulated (simcore), pi / Pure —");

    // Measured: run pi in Pure mode at a host-friendly thread count with the
    // profiler already armed, aggregating only this run's events.
    // Snap to a sweep point ≤ the host's core count so the measured row has
    // a directly comparable simulated row.
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    let host_threads = SWEEP_THREADS
        .iter()
        .copied()
        .rfind(|&t| t <= avail)
        .unwrap_or(2)
        .min(8);
    let events_before = omp4rs::ompt::events().len();
    let params = pi::Params {
        n: ((2_000_000.0 * scale * 0.02) as i64).max(2_000),
    };
    let measured = pi::run(Mode::Pure, host_threads, &params).ok();
    let events = omp4rs::ompt::events();
    let run_metrics = omp4rs::ompt::aggregate(&events[events_before..]);
    let meas = run_metrics.last();

    let Some(per_unit) = measured.map(|out| out.seconds / params.n as f64) else {
        println!("  (measured Pure pi run failed; skipping comparison)");
        return;
    };
    let iters = params.n as u64;
    let model = CostModel::default();
    let sweep: Vec<(usize, simcore::SimReport)> = SWEEP_THREADS
        .iter()
        .map(|&threads| {
            let min_chunk = omp4rs::adaptive::interpreted_min_chunk(iters, threads);
            // Guided claims run a read + CAS under the mutex backend:
            // roughly twice a plain claim.
            let base = prims.claim(omp4rs::sync::Backend::Mutex);
            let guided_claim = ClaimCost {
                seconds: base.seconds * 2.0,
                serializes: true,
            };
            let w = Workload::new()
                .phase(Phase::ParallelFor {
                    iters,
                    cost_per_iter: per_unit,
                    // Frame-local chunk bounds: shared-object traffic is a
                    // handful of ops per *loop*, ~0 per iteration.
                    shared_ops_per_iter: 0.0,
                    schedule: SimSchedule::Guided(min_chunk),
                    claim: guided_claim,
                    nowait: false,
                    imbalance: 0.0,
                })
                .phase(Phase::CriticalUpdates {
                    per_thread: 1,
                    cost: prims.mutex_claim.max(1e-7),
                });
            let mut machine = Machine::new(32);
            (threads, simulate_report(&mut machine, &model, &w, threads))
        })
        .collect();

    println!(
        "  {:<10} {:>12} {:>16} {:>14}",
        "threads", "sim span ms", "sim barrier ms", "barrier share"
    );
    for (threads, report) in &sweep {
        // Share = summed barrier wait across threads over total thread-time.
        let thread_time = report.seconds * *threads as f64;
        println!(
            "  sim {:<6} {:>12.3} {:>16.3} {:>13.1}%",
            threads,
            report.seconds * 1e3,
            report.barrier_wait * 1e3,
            100.0 * report.barrier_wait / thread_time.max(1e-12)
        );
    }
    match meas {
        Some(m) if m.span_ns > 0 => {
            let thread_ns = m.span_ns as f64 * m.threads as f64;
            println!(
                "  measured @{host_threads} threads (n={iters}): span {:.3} ms, barrier wait {:.3} ms ({:.1}% of thread-time, {} arrivals)",
                m.span_ns as f64 / 1e6,
                m.barrier_wait_ns as f64 / 1e6,
                100.0 * m.barrier_wait_ns as f64 / thread_ns.max(1.0),
                m.barriers
            );
            if let Some((_, sim)) = sweep.iter().find(|(t, _)| *t == host_threads) {
                let sim_share = sim.barrier_wait / (sim.seconds * host_threads as f64).max(1e-12);
                let meas_share = m.barrier_wait_ns as f64 / thread_ns.max(1.0);
                println!(
                    "  barrier-wait share measured/simulated @{host_threads}: {:.2}x \
                     (the gap is runtime overhead the model does not charge)",
                    meas_share / sim_share.max(1e-12)
                );
            }
        }
        _ => println!("  (no profiler events captured for the measured run)"),
    }
}
