//! Regenerate Fig. 5: scalability of the seven numerical applications under
//! Pure / Hybrid / Compiled / CompiledDT / PyOMP.
//!
//! Usage: `figure5 [--summary] [--scale <f64>] [--profile]`
//!
//! Methodology (see EXPERIMENTS.md): per-mode single-thread costs are
//! MEASURED on this host; the 1–32-thread curves are SIMULATED by replaying
//! each benchmark's OpenMP phase structure on a virtual 32-core machine with
//! those measured costs.

use omp4rs_apps::Mode;
use omp4rs_bench::{measure_primitives, sim_sweep, AppKind, SWEEP_THREADS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = omp4rs_bench::profile::begin(&mut args, "figure5");
    let summary = args.iter().any(|a| a == "--summary");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);

    println!("FIGURE 5 — scalability of the parallel numerical applications");
    println!("measured single-thread per-unit costs on this host; simulated 32-core sweep\n");
    let prims = measure_primitives();
    println!(
        "calibration: mutex claim {:.1} ns, atomic claim {:.1} ns, barrier {:.2} us, task {:.2} us\n",
        prims.mutex_claim * 1e9,
        prims.atomic_claim * 1e9,
        prims.barrier * 1e6,
        prims.task_round * 1e6
    );

    // speedup@32 per (app, mode) for the summary.
    let mut speedups: Vec<(AppKind, Mode, f64)> = Vec::new();
    let mut per_unit_ratio: Vec<(AppKind, f64)> = Vec::new();

    for app in AppKind::figure5() {
        println!("=== {} ===", app.name());
        // Measured single-thread costs per mode.
        let mut costs = Vec::new();
        for mode in Mode::all() {
            match omp4rs_bench::figures::measure(app, mode, scale) {
                Some(m) => {
                    println!(
                        "  measured {:<11} {:>10.2} ms over {:>9} units  → {:>9.1} ns/unit",
                        mode.name(),
                        m.seconds * 1e3,
                        m.units,
                        m.per_unit() * 1e9
                    );
                    costs.push((mode, m.per_unit()));
                }
                None => println!(
                    "  measured {:<11} unsupported ({})",
                    mode.name(),
                    app.name()
                ),
            }
        }
        if let (Some(pure), Some(dt)) = (
            costs
                .iter()
                .find(|(m, _)| *m == Mode::Pure)
                .map(|&(_, c)| c),
            costs
                .iter()
                .find(|(m, _)| *m == Mode::CompiledDT)
                .map(|&(_, c)| c),
        ) {
            per_unit_ratio.push((app, pure / dt));
        }

        // Simulated sweep.
        print!("  {:<11}", "sim threads");
        for t in SWEEP_THREADS {
            print!(" {t:>9}");
        }
        println!();
        for (mode, per_unit) in &costs {
            let sweep = sim_sweep(app, *mode, *per_unit, &prims, false, None);
            print!("  {:<11}", mode.name());
            let t1 = sweep[0].1;
            for &(_, t) in &sweep {
                print!(" {:>8.2}x", t1 / t);
            }
            println!("   (t1 = {:.2} ms)", t1 * 1e3);
            speedups.push((app, *mode, t1 / sweep.last().unwrap().1));
        }
        println!();
    }

    // `--summary` is accepted for compatibility; the summary always prints.
    let _ = summary;
    {
        println!("— summary (paper §IV-A quantities) —");
        let avg = |mode: Mode| -> f64 {
            let v: Vec<f64> = speedups
                .iter()
                .filter(|(_, m, _)| *m == mode)
                .map(|&(_, _, s)| s)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let max = |mode: Mode| -> f64 {
            speedups
                .iter()
                .filter(|(_, m, _)| *m == mode)
                .map(|&(_, _, s)| s)
                .fold(0.0, f64::max)
        };
        println!(
            "  avg speedup @32: Pure {:.1}x  Hybrid {:.1}x  Compiled {:.1}x  CompiledDT {:.1}x",
            avg(Mode::Pure),
            avg(Mode::Hybrid),
            avg(Mode::Compiled),
            avg(Mode::CompiledDT)
        );
        println!(
            "  max speedup @32: Pure {:.1}x  Compiled {:.1}x  CompiledDT {:.1}x",
            max(Mode::Pure),
            max(Mode::Compiled),
            max(Mode::CompiledDT)
        );
        // The paper compares PyOMP vs CompiledDT over the benchmarks PyOMP
        // can run (excluding qsort/bfs).
        let common: Vec<AppKind> = AppKind::figure5()
            .into_iter()
            .filter(|a| a.pyomp_supported())
            .collect();
        let avg_on = |mode: Mode| -> f64 {
            let v: Vec<f64> = speedups
                .iter()
                .filter(|(a, m, _)| *m == mode && common.contains(a))
                .map(|&(_, _, s)| s)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let (pyomp_avg, dt_avg) = (avg_on(Mode::PyOmp), avg_on(Mode::CompiledDT));
        println!(
            "  PyOMP-supported subset @32: PyOMP {pyomp_avg:.1}x vs CompiledDT {dt_avg:.1}x \
             → OMP4Py {:+.1}% (paper: +4.5%)",
            (dt_avg / pyomp_avg - 1.0) * 100.0
        );
        let gap: f64 = per_unit_ratio.iter().map(|&(_, r)| r).sum::<f64>()
            / per_unit_ratio.len().max(1) as f64;
        println!(
            "  avg measured Pure/CompiledDT per-unit gap: {gap:.0}x (paper: ~785x at 32 threads)"
        );
        println!("  (paper reference: Pure max 3.6x; Compiled up to 10.6x; CompiledDT avg 10.1x, max 16.2x; PyOMP avg 9.9x)");
    }
    profile.finish();
}
