//! Regenerate Fig. 8: hybrid MPI/OpenMP jacobi scalability over node counts
//! (16 threads per node in the paper).
//!
//! Real runs (correctness + measured single-node cost) use `minimpi` ranks
//! under an emulated interconnect; the node sweep extends the measured
//! per-row cost with the communication model, since one host cannot supply
//! 16 physical nodes.
//!
//! Usage: `figure8 [--n <dim>] [--threads <t>] [--profile]`

use minimpi::NetModel;
use omp4rs_apps::{hybrid, Mode};
use omp4rs_bench::measure_primitives;

const NODES: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = omp4rs_bench::profile::begin(&mut args, "figure8");
    let n = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(192);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2);

    println!("FIGURE 8 — hybrid MPI/OpenMP jacobi ({n}x{n} system, {threads} threads/node)");
    println!("real multi-rank runs under an emulated interconnect; simulated 16-thread nodes\n");
    let prims = measure_primitives();

    // Real runs: correctness + measured times for every mode at small node
    // counts (all ranks share this host's core, so wall time does not show
    // scaling; checksums show equivalence).
    println!("-- measured runs (correctness; all ranks share this host) --");
    for mode in Mode::omp4py_modes() {
        let p = hybrid::Params {
            n,
            max_iters: if mode.is_interpreted() { 20 } else { 200 },
            ..hybrid::Params::default()
        };
        print!("  {:<11}", mode.name());
        for nodes in [1usize, 2, 4] {
            if !p.n.is_multiple_of(nodes) {
                continue;
            }
            match hybrid::run(mode, nodes, threads, &p, NetModel::cluster(1)) {
                Ok(out) => print!(
                    "  {}n: {:>8.1} ms (chk {:>10.4})",
                    nodes,
                    out.seconds * 1e3,
                    out.check
                ),
                Err(e) => print!("  {nodes}n: error {e}"),
            }
        }
        println!();
    }
    println!(
        "  {:<11}  cannot run: {}",
        "PyOMP",
        omp4rs_apps::pyomp::unsupported_reason("hybrid").unwrap()
    );

    // Simulated node sweep: per-iteration row cost measured per mode
    // (scaled to the paper's matrix width — a row costs O(n) multiplies),
    // plus an mpi4py-grade interconnect: the linear gather+bcast exchange
    // costs ~0.75 ms of software+wire time per message, 2·p messages per
    // iteration (profile chosen to land on the paper's measured
    // efficiencies; see EXPERIMENTS.md).
    println!("\n-- simulated node sweep (16 OpenMP threads per node) --");
    // mpi4py-grade exchange profile (chosen to land on the paper's measured
    // efficiencies; see EXPERIMENTS.md): each rank moves its Python-visible
    // block at ~10 MB/s effective (serialization-bound) and the collective
    // adds ~1 ms per log2(p) stage.
    let eff_bw = 10.0e6f64;
    let stage_latency = 1.0e-3f64;
    let iterations = 100u32;
    print!("  {:<11}", "nodes");
    for nodes in NODES {
        print!(" {nodes:>10}");
    }
    println!();
    for mode in Mode::omp4py_modes() {
        let meas = omp4rs_bench::figures::measure(omp4rs_bench::AppKind::Jacobi, mode, 0.25);
        let Some(meas) = meas else { continue };
        // The measured benchmark ran a (120 · 0.25 · mode_scale) wide matrix;
        // rescale the per-row cost to the paper's width.
        let meas_n = (120.0 * 0.25 * omp4rs_bench::figures::mode_scale(mode)).max(4.0);
        let n_dim: usize = if mode == Mode::CompiledDT {
            20_000
        } else {
            3_000
        };
        let row_cost = meas.per_unit() * n_dim as f64 / meas_n;
        print!("  {:<11}", mode.name());
        let mut t1 = 0.0;
        for nodes in NODES {
            let rows = n_dim / nodes;
            // Intra-node OpenMP speedup on 16 threads, bounded by the mode's
            // serialized fraction (same model as Fig. 5).
            let sf =
                omp4rs_bench::figures::serialized_fraction(omp4rs_bench::AppKind::Jacobi, mode);
            let intra = (1.0 / (sf + (1.0 - sf) / 16.0)).min(16.0);
            let compute = rows as f64 * row_cost / intra;
            // Allgather + allreduce per iteration.
            let comm = if nodes > 1 {
                (rows * 8) as f64 / eff_bw + stage_latency * (nodes as f64).log2()
            } else {
                0.0
            };
            let total = iterations as f64 * (compute + comm + prims.barrier);
            if nodes == 1 {
                t1 = total;
            }
            print!(" {:>9.2}x", t1 / total);
        }
        println!(
            "   (single-node t = {:.1} s, {}x{} matrix)",
            t1, n_dim, n_dim
        );
    }
    println!("\n(paper: CompiledDT speedups over one node of 1.6x/3x/5.2x/8.6x at 2/4/8/16 nodes)");

    // Resilience: the same hybrid solve over a *lossy* interconnect, driven
    // through the retry layer — the checksum must match the reliable run.
    println!("\n-- resilient run (10% message loss, retry/backoff transport) --");
    let p = hybrid::Params {
        n,
        max_iters: 200,
        ..hybrid::Params::default()
    };
    // MINIMPI_RETRY overrides; the built-in policy retries generously
    // enough that a 10% loss rate virtually never exhausts it.
    let policy = if std::env::var("MINIMPI_RETRY").is_ok() {
        minimpi::RetryPolicy::from_env()
    } else {
        minimpi::RetryPolicy {
            max_attempts: 12,
            base_backoff: std::time::Duration::from_millis(1),
            per_attempt_timeout: std::time::Duration::from_millis(150),
            seed: 8,
        }
    };
    let reference = hybrid::run(Mode::CompiledDT, 2, threads, &p, NetModel::cluster(1));
    let lossy = NetModel::cluster(1).with_loss(0.10, 88);
    let start = std::time::Instant::now();
    let resilient = hybrid::solve_resilient(2, threads, &p, lossy, &policy);
    let elapsed = start.elapsed();
    match (reference, resilient) {
        (Ok(reliable), Ok(x)) => {
            let check: f64 = x.iter().sum();
            println!(
                "  CompiledDT   2n: {:>8.1} ms (chk {:>10.4}, drift vs reliable {:.2e})",
                elapsed.as_secs_f64() * 1e3,
                check,
                (check - reliable.check).abs()
            );
        }
        (_, Err(e)) => println!("  CompiledDT   2n: resilient run failed: {e}"),
        (Err(e), _) => println!("  CompiledDT   2n: reference run failed: {e}"),
    }
    profile.finish();
}
