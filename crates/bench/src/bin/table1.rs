//! Regenerate Table I: static characteristics of the evaluated benchmarks.

use omp4rs_apps as apps;

fn main() {
    println!("TABLE I — STATIC CHARACTERISTICS OF EVALUATED BENCHMARKS");
    println!("{:-<78}", "");
    println!(
        "{:<10} | {:<45} | synchronization",
        "benchmark", "OpenMP features"
    );
    println!("{:-<78}", "");
    let rows: [(&str, &str); 7] = [
        ("fft", apps::fft::FEATURES),
        ("jacobi", apps::jacobi::FEATURES),
        ("lu", apps::lu::FEATURES),
        ("md", apps::md::FEATURES),
        ("pi", apps::pi::FEATURES),
        ("qsort", apps::qsort::FEATURES),
        ("bfs", apps::bfs::FEATURES),
    ];
    for (name, features) in rows {
        let mut parts = features.split('|');
        let constructs = parts.next().unwrap_or("").trim();
        let rest: Vec<&str> = parts.map(str::trim).collect();
        let sync = rest.last().copied().unwrap_or("");
        let clauses = if rest.len() > 1 { rest[0] } else { "" };
        let mid = if clauses.is_empty() {
            constructs.to_string()
        } else {
            format!("{constructs} {clauses}")
        };
        println!("{name:<10} | {mid:<45} | {sync}");
    }
    println!("{:-<78}", "");
    println!("(paper Table I; every row regenerated from the benchmark modules' FEATURES)");
}
