//! EPCC-syncbench-style construct-overhead microbenchmark.
//!
//! Measures the per-construct overhead of the runtime's synchronization
//! primitives — the numbers that bound fine-grained scaling (paper §IV; the
//! EPCC schedule/sync benchmarks the OpenMP community uses for this):
//!
//! * `parallel` — entry + exit of an empty parallel region (fork/join cost:
//!   team construction, worker mobilization, final task-draining barrier),
//! * `parallel-spawn` — the same measurement with the persistent worker
//!   pool disabled (`OMP4RS_POOL=off`): the per-region thread-spawn
//!   baseline, taken in the same process so the hot-team speedup is an A/B
//!   under identical host load,
//! * `barrier` — an explicit barrier inside a live region,
//! * `reduction` — a work-shared loop with a `reduction(+)` and its
//!   mandatory end-of-loop barrier,
//! * `single` — a `single` construct with its implicit barrier,
//! * `task` — spawn of a deferred empty task plus its share of the final
//!   `taskwait`.
//!
//! Each construct is measured across a thread-count sweep × both
//! synchronization backends ([`Backend::Mutex`] / [`Backend::Atomic`]) ×
//! both wait policies (`OMP_WAIT_POLICY=passive|active`), because the whole
//! point of hot teams + signaled waiting is that these costs stop being
//! quantized by thread-spawn and condvar-tick latencies.
//!
//! ```text
//! syncbench [--threads 1,2,4,8] [--trials N] [--inner N] [--outer N]
//!           [--scale-limit R] [--json] [--check] [--trace]
//! ```
//!
//! `--json` emits one row per (construct, backend, policy, threads) for
//! `scripts/bench.sh` to assemble into `BENCH_sync.json` (plus a top-level
//! `pool_shards` member recording the sharded-pool geometry the numbers
//! were taken under). `--check` runs a 1..8-thread sweep and exits nonzero
//! unless every construct completed, every overhead number is finite and
//! positive, and `parallel` *scales*: the fastest-trial region cost at the
//! widest team stays within `--scale-limit` (default 80) multiples of the
//! 1-thread cost for every backend x policy cell. The limit is calibrated
//! so the sharded pool with early-leave final barriers passes with ~1.7x
//! headroom while the pre-sharding global-lock dispatch (measured ~89x on
//! the same host) trips it — a scaling regression gate, not a noise gate
//! (the cost *floor* is compared, so additive scheduler noise cannot trip
//! it). `--trace` arms the
//! streaming trace pipeline for the whole sweep and reports what it
//! sustained ([`omp4rs_bench::traceprobe`]) — every overhead number is then
//! measured *with* event recording on, so diffing against an untraced run
//! prices tracing per construct.

use std::time::Instant;

use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::{Backend, Icvs};

/// One measured construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Construct {
    Parallel,
    /// `parallel` with the worker pool disabled (`OMP4RS_POOL=off`): the
    /// pre-hot-team per-region-spawn path, measured in the same process so
    /// the pool's benefit is an A/B under identical host conditions rather
    /// than a comparison against a baseline recorded under different load.
    ParallelSpawn,
    Barrier,
    Reduction,
    Single,
    Task,
}

impl Construct {
    const ALL: [Construct; 5] = [
        Construct::Parallel,
        Construct::Barrier,
        Construct::Reduction,
        Construct::Single,
        Construct::Task,
    ];

    fn name(self) -> &'static str {
        match self {
            Construct::Parallel => "parallel",
            Construct::ParallelSpawn => "parallel-spawn",
            Construct::Barrier => "barrier",
            Construct::Reduction => "reduction",
            Construct::Single => "single",
            Construct::Task => "task",
        }
    }
}

/// Benchmark knobs (trial counts scale down as team size grows so the sweep
/// stays wall-clock bounded on small hosts).
#[derive(Debug, Clone, Copy)]
struct Knobs {
    trials: usize,
    outer: usize,
    inner: usize,
}

/// Median of a sample vector (sorts in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Wait for the worker pool to go quiet before timing a cell.
///
/// Workers from the previous cell's (possibly much larger) team each burn
/// their dock spin budget before parking; under `OMP_WAIT_POLICY=active`
/// that is 10k yield-laced iterations per worker, and a 32-worker drain on
/// a small host takes longer than an entire 4-thread timed loop — measured
/// as a 4x inflation of the 4-thread `parallel` cell when it follows a
/// 32-thread one. The flat sleep (during which this thread is off-CPU and
/// stragglers spin out their budgets) covers that worst case; the
/// park-count stability loop then confirms nobody is still transitioning.
/// Parks are monotonic runtime-wide, so a stable count means every
/// straggler has parked — but stability alone is not sufficient (a
/// mid-spin worker parks nothing for tens of milliseconds), hence the
/// unconditional sleep first.
fn settle() {
    std::thread::sleep(std::time::Duration::from_millis(300));
    let deadline = Instant::now() + std::time::Duration::from_millis(400);
    let mut last = omp4rs::pool::stats().park;
    let mut stable = 0;
    while stable < 3 && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
        let now = omp4rs::pool::stats().park;
        if now == last {
            stable += 1;
        } else {
            stable = 0;
            last = now;
        }
    }
}

/// Time `outer` empty parallel regions; returns seconds per region.
fn time_parallel(cfg: &ParallelConfig, outer: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..outer {
        parallel_region(cfg, |_ctx| {});
    }
    start.elapsed().as_secs_f64() / outer.max(1) as f64
}

/// Time one region running `inner` repetitions of a construct on every
/// thread; returns total region seconds.
fn time_region(cfg: &ParallelConfig, body: impl Fn(&omp4rs::WorkerCtx<'_>) + Sync) -> f64 {
    let start = Instant::now();
    parallel_region(cfg, body);
    start.elapsed().as_secs_f64()
}

/// Per-operation seconds for a construct at the given team size: the
/// `(median, min)` across trials.
///
/// The median is robust against one outlier trial; the min is the better
/// estimator of the cost *floor* on a shared host, where scheduler noise is
/// strictly additive (nothing can make a region entry cheaper than its true
/// cost, so the fastest trial is the one with the least interference).
///
/// `parallel` is the region entry/exit cost itself; every other construct is
/// measured inside a live region and reported net of one region's cost.
fn measure(
    construct: Construct,
    cfg: &ParallelConfig,
    knobs: Knobs,
    region_cost: f64,
) -> (f64, f64) {
    let mut samples = Vec::with_capacity(knobs.trials);
    for _ in 0..knobs.trials {
        let secs = match construct {
            // The caller flips the pool ICV for the spawn-baseline variant;
            // the timed loop is identical.
            Construct::Parallel | Construct::ParallelSpawn => time_parallel(cfg, knobs.outer),
            Construct::Barrier => {
                let inner = knobs.inner;
                let t = time_region(cfg, |ctx| {
                    for _ in 0..inner {
                        ctx.barrier();
                    }
                });
                (t - region_cost).max(0.0) / inner as f64
            }
            Construct::Reduction => {
                let inner = knobs.inner;
                let t = time_region(cfg, |ctx| {
                    let n = ctx.num_threads() as i64;
                    let mut sink = 0u64;
                    for _ in 0..inner {
                        sink = sink.wrapping_add(ctx.for_reduce(
                            ForSpec::new(),
                            0..n,
                            0u64,
                            |i, acc| *acc += i as u64,
                            |a, b| a + b,
                        ));
                    }
                    std::hint::black_box(sink);
                });
                (t - region_cost).max(0.0) / inner as f64
            }
            Construct::Single => {
                let inner = knobs.inner;
                let t = time_region(cfg, |ctx| {
                    let mut sink = 0u64;
                    for _ in 0..inner {
                        if ctx.single(|| ()).is_some() {
                            sink += 1;
                        }
                    }
                    std::hint::black_box(sink);
                });
                (t - region_cost).max(0.0) / inner as f64
            }
            Construct::Task => {
                let inner = knobs.inner;
                let t = time_region(cfg, |ctx| {
                    for _ in 0..inner {
                        ctx.task(|_| {});
                    }
                    ctx.taskwait();
                });
                let ops = (inner * cfg.num_threads.unwrap_or(1)) as f64;
                (t - region_cost).max(0.0) / ops
            }
        };
        samples.push(secs);
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    (median(&mut samples), min)
}

/// One result row.
#[derive(Debug)]
struct Row {
    construct: Construct,
    backend: Backend,
    policy: &'static str,
    threads: usize,
    /// Median across trials.
    ns_per_op: f64,
    /// Fastest trial — the interference-free cost floor.
    ns_per_op_min: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"construct\":\"{}\",\"backend\":\"{}\",\"policy\":\"{}\",\
             \"threads\":{},\"ns_per_op\":{:.1},\"ns_per_op_min\":{:.1}}}",
            self.construct.name(),
            backend_name(self.backend),
            self.policy,
            self.threads,
            self.ns_per_op,
            self.ns_per_op_min
        )
    }
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Mutex => "mutex",
        Backend::Atomic => "atomic",
    }
}

/// Select the wait policy for subsequent regions: set `OMP_WAIT_POLICY` and
/// re-derive the ICVs from the environment, exactly as a fresh process would.
fn apply_policy(policy: &str) {
    std::env::set_var("OMP_WAIT_POLICY", policy);
    Icvs::reset(Icvs::from_env());
}

fn knobs_for(threads: usize, trials: usize, outer: usize, inner: usize) -> Knobs {
    // Scale repetition counts to team size. Down for larger teams so the
    // full sweep stays bounded on a small host (costs scale roughly with
    // team size) — and *up* for small teams, where per-op costs in the
    // tens of microseconds would otherwise make a trial only a few
    // milliseconds of timed work, small enough for one scheduler hiccup to
    // move the whole sample.
    let scale = |n: usize| match threads {
        0..=4 => n * 5,
        5..=16 => (n / 2).max(8),
        _ => (n / 4).max(4),
    };
    Knobs {
        trials,
        outer: scale(outer),
        inner: scale(inner),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let probe = omp4rs_bench::traceprobe::begin(&mut args, "syncbench");
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");
    let trials = get("--trials", 5).max(1);
    let outer = get("--outer", 200).max(1);
    let inner = get("--inner", 200).max(1);
    let threads: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect()
        })
        // The check sweep includes 8 threads so the scaling gate below
        // exercises the contended regime the sharded pool exists for.
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let scale_limit = args
        .iter()
        .position(|a| a == "--scale-limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(80.0);

    let policies: &[&'static str] = &["passive", "active"];
    let backends = [Backend::Atomic, Backend::Mutex];

    let mut rows = Vec::new();
    for &policy in policies {
        apply_policy(policy);
        for backend in backends {
            for &t in &threads {
                let knobs = knobs_for(t, trials, outer, inner);
                let cfg = ParallelConfig::new().num_threads(t).backend(backend);
                // Warm the worker pool / code paths outside the timing,
                // then let the previous cell's stragglers park.
                parallel_region(&cfg, |_ctx| {});
                settle();
                let region_cost = measure(Construct::Parallel, &cfg, knobs, 0.0);
                for construct in Construct::ALL {
                    let (med, min) = if construct == Construct::Parallel {
                        region_cost
                    } else {
                        // Subtract the *median* region cost from every
                        // trial: a stable baseline keeps the min field
                        // meaning "quietest trial of this construct".
                        measure(construct, &cfg, knobs, region_cost.0)
                    };
                    rows.push(Row {
                        construct,
                        backend,
                        policy,
                        threads: t,
                        ns_per_op: med * 1e9,
                        ns_per_op_min: min * 1e9,
                    });
                }
                // Same cell, pool off: the per-region-spawn baseline the
                // hot-team speedup in EXPERIMENTS.md is quoted against.
                // Spawn cost dwarfs the timed loop, so a fraction of the
                // pooled repetition count keeps the sweep bounded.
                Icvs::update(|icvs| icvs.pool = false);
                let spawn_knobs = Knobs {
                    outer: (knobs.outer / 10).max(4),
                    ..knobs
                };
                let spawn_cost = measure(Construct::ParallelSpawn, &cfg, spawn_knobs, 0.0);
                Icvs::update(|icvs| icvs.pool = true);
                rows.push(Row {
                    construct: Construct::ParallelSpawn,
                    backend,
                    policy,
                    threads: t,
                    ns_per_op: spawn_cost.0 * 1e9,
                    ns_per_op_min: spawn_cost.1 * 1e9,
                });
            }
        }
    }
    // Leave the ICVs as a fresh process would see them.
    std::env::remove_var("OMP_WAIT_POLICY");
    Icvs::reset(Icvs::from_env());
    let trace = probe.finish();

    if json {
        let body = rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n  ");
        let trace_member = trace
            .as_ref()
            .map(|t| format!(",\n \"trace\": {}", t.json()))
            .unwrap_or_default();
        println!(
            "{{\n \"benchmark\": \"syncbench\",\n \"pool_shards\": {},\n \"rows\": [\n  \
             {body}\n ]{trace_member}\n}}",
            omp4rs::pool::shard_count()
        );
    } else {
        println!("construct overhead (ns/op):");
        println!(
            "{:<10} {:>7} {:>8} {:>8} {:>12} {:>12}",
            "construct", "backend", "policy", "threads", "median", "min"
        );
        for row in &rows {
            println!(
                "{:<10} {:>7} {:>8} {:>8} {:>12.1} {:>12.1}",
                row.construct.name(),
                backend_name(row.backend),
                row.policy,
                row.threads,
                row.ns_per_op,
                row.ns_per_op_min
            );
        }
        if let Some(report) = &trace {
            println!("{}", report.line());
        }
    }

    if check {
        let mut failed = false;
        for row in &rows {
            if !row.ns_per_op.is_finite() || !row.ns_per_op_min.is_finite() {
                eprintln!(
                    "CHECK FAILED: {} ({}/{} @{}) overhead is not finite",
                    row.construct.name(),
                    backend_name(row.backend),
                    row.policy,
                    row.threads
                );
                failed = true;
            }
        }
        // Region entry can never be free: a zero reading means the clock or
        // the construct loop is broken.
        if !rows
            .iter()
            .any(|r| r.construct == Construct::Parallel && r.ns_per_op > 0.0)
        {
            eprintln!("CHECK FAILED: no positive parallel-region overhead measured");
            failed = true;
        }
        // Scaling-regression gate: for every backend x policy cell, the
        // fork/join cost floor at the widest team must stay within
        // `scale_limit` multiples of the narrowest team's. Compares
        // `ns_per_op_min` (the interference-free floor), so a noisy host
        // inflates both sides additively rather than tripping the gate; a
        // real regression — serialized dispatch, lost early-leave, a
        // reintroduced global lock — multiplies the wide-team side only.
        let lo = threads.iter().copied().min().unwrap_or(1);
        let hi = threads.iter().copied().max().unwrap_or(1);
        if hi > lo {
            let floor = |backend: Backend, policy: &str, t: usize| {
                rows.iter()
                    .find(|r| {
                        r.construct == Construct::Parallel
                            && r.backend == backend
                            && r.policy == policy
                            && r.threads == t
                    })
                    .map(|r| r.ns_per_op_min)
            };
            for &policy in policies {
                for backend in backends {
                    if let (Some(narrow), Some(wide)) =
                        (floor(backend, policy, lo), floor(backend, policy, hi))
                    {
                        let ratio = wide / narrow.max(1.0);
                        if ratio > scale_limit {
                            eprintln!(
                                "CHECK FAILED: parallel ({}/{policy}) does not scale: \
                                 {wide:.1}ns @{hi}T is {ratio:.1}x the {narrow:.1}ns @{lo}T \
                                 floor (limit {scale_limit:.0}x)",
                                backend_name(backend)
                            );
                            failed = true;
                        }
                    }
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check: OK ({} rows, all finite; parallel @{hi}T within {scale_limit:.0}x of @{lo}T)",
            rows.len()
        );
    }
}
