//! Regenerate Fig. 7: speedups of *clustering coefficient* and *wordcount*
//! under static / dynamic / guided scheduling (chunk 300), relative to the
//! Pure 1-thread static baseline — plus the chunk-size variations (150,
//! 600) the paper discusses in the text.
//!
//! Usage: `figure7 [--scale <f64>] [--chunk <u64>] [--profile]`

use omp4rs::ScheduleKind;
use omp4rs_apps::Mode;
use omp4rs_bench::{measure_primitives, sim_sweep, AppKind, SWEEP_THREADS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = omp4rs_bench::profile::begin(&mut args, "figure7");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);
    let chunk = args
        .iter()
        .position(|a| a == "--chunk")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);

    println!("FIGURE 7 — scheduling-policy speedups (chunk {chunk}),");
    println!("relative to the Pure / 1 thread / static baseline\n");
    let prims = measure_primitives();

    for app in AppKind::figure6() {
        println!("=== {} ===", app.name());
        // Baseline: Pure, static, 1 thread.
        let pure_cost = match omp4rs_bench::figures::measure(app, Mode::Pure, scale) {
            Some(m) => m.per_unit(),
            None => {
                println!("  (cannot measure Pure baseline)");
                continue;
            }
        };
        let baseline = sim_sweep(
            app,
            Mode::Pure,
            pure_cost,
            &prims,
            false,
            Some((ScheduleKind::Static, None)),
        )[0]
        .1;

        for mode in Mode::omp4py_modes() {
            let per_unit = match omp4rs_bench::figures::measure(app, mode, scale) {
                Some(m) => m.per_unit(),
                None => continue,
            };
            println!("  -- {} --", mode.name());
            print!("  {:<9}", "threads");
            for t in SWEEP_THREADS {
                print!(" {t:>9}");
            }
            println!();
            for sched in [
                ScheduleKind::Static,
                ScheduleKind::Dynamic,
                ScheduleKind::Guided,
            ] {
                let sweep = sim_sweep(
                    app,
                    mode,
                    per_unit,
                    &prims,
                    false,
                    Some((sched, Some(chunk))),
                );
                print!("  {:<9}", sched.name());
                for &(_, t) in &sweep {
                    print!(" {:>8.2}x", baseline / t);
                }
                println!();
            }
        }
        println!();
    }
    println!("(paper: dynamic performs best — especially for wordcount's imbalance —");
    println!(" and guided lags, most visibly in Pure mode; rerun with --chunk 150/600 for the text's variations)");
    profile.finish();
}
