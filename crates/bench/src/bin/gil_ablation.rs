//! Ablation: the paper's §I motivation — a GIL-enabled interpreter gains
//! nothing from threads, while the free-threaded build scales (up to the
//! shared-object ceiling).
//!
//! Measured part: the same interpreted program runs under `GilMode::Enabled`
//! and `GilMode::FreeThreaded`, counting real GIL switches. Simulated part:
//! the thread sweep with and without the GIL resource.

use minipy::{Gil, GilMode, Interp, Value};
use omp4rs_apps::Mode;
use omp4rs_bench::{measure_primitives, sim_sweep, AppKind};
use omp4rs_pyfront::{ExecMode, Runner};

const PROGRAM: &str = r#"
from omp4py import *

@omp
def work(n, nthreads):
    acc = 0
    with omp("parallel for reduction(+:acc) num_threads(nthreads)"):
        for i in range(n):
            acc += i * i
    return acc
"#;

fn run_once(gil_mode: GilMode, threads: i64) -> (f64, u64, i64) {
    let gil = Gil::with_interval(gil_mode, 128);
    let interp = Interp::with_gil(gil);
    let runner = Runner::with_interp(interp, ExecMode::Hybrid);
    runner.run(PROGRAM).expect("program loads");
    let start = std::time::Instant::now();
    let v = runner
        .call_global("work", vec![Value::Int(40_000), Value::Int(threads)])
        .expect("program runs")
        .as_int()
        .expect("int result");
    (
        start.elapsed().as_secs_f64(),
        runner.interp().gil().switch_count(),
        v,
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = omp4rs_bench::profile::begin(&mut args, "gil_ablation");
    let _ = args;
    println!("GIL ABLATION — why the paper needs free-threaded Python\n");
    println!("-- measured (interpreted sum of squares, n = 40000) --");
    println!(
        "  {:<14} {:>8} {:>12} {:>14} {:>18}",
        "interpreter", "threads", "time", "GIL switches", "result"
    );
    let mut reference = None;
    for (label, mode) in [
        ("GIL-enabled", GilMode::Enabled),
        ("free-threaded", GilMode::FreeThreaded),
    ] {
        for threads in [1i64, 4] {
            let (secs, switches, v) = run_once(mode, threads);
            if let Some(r) = reference {
                assert_eq!(v, r, "results must not depend on the GIL");
            } else {
                reference = Some(v);
            }
            println!(
                "  {label:<14} {threads:>8} {:>9.2} ms {switches:>14} {v:>18}",
                secs * 1e3
            );
        }
    }

    println!("\n-- simulated 32-core sweep (Pure mode, measured per-unit cost) --");
    let prims = measure_primitives();
    let per_unit = omp4rs_bench::figures::measure(AppKind::Pi, Mode::Pure, 0.2)
        .expect("pi supports Pure")
        .per_unit();
    println!(
        "  {:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "config", 1, 2, 4, 8, 16, 32
    );
    for (label, gil) in [("GIL-enabled", true), ("free-threaded", false)] {
        let sweep = sim_sweep(AppKind::Pi, Mode::Pure, per_unit, &prims, gil, None);
        let t1 = sweep[0].1;
        print!("  {label:<14}");
        for &(_, t) in &sweep {
            print!(" {:>5.2}x", t1 / t);
        }
        println!();
    }
    println!("\n(the GIL-enabled sweep is flat — the paper's motivation for building on");
    println!(" Python 3.13+ free-threading; the free-threaded curve is Fig. 5's Pure curve)");
    profile.finish();
}
