//! The artifact-style CLI (paper artifact appendix §D):
//!
//! ```text
//! main <mode> <test> <threads> [scale]
//! ```
//!
//! * `mode` — `0` Pure, `1` Hybrid, `2` Compiled, `3` CompiledDT, `-1` PyOMP
//! * `test` — `fft`, `jacobi`, `lud`, `maze`, `md`, `pi`, `qsort`,
//!   `wordcount`, `graphic`
//! * `threads` — team size
//! * `scale` — optional problem-size multiplier (default 1.0; the artifact's
//!   "additional arguments to modify the problem size")
//! * `--profile` — emit `trace_main.json` plus a per-region profiler summary
//!   (see [`omp4rs_bench::profile`])
//! * `--json` — emit one machine-readable JSON object instead of prose
//!   (consumed by `scripts/bench.sh` to build `BENCH_<test>.json` baselines)
//! * `--repeat N` — run the benchmark N times (default 1) and report the
//!   median and standard deviation over the samples

use omp4rs_apps::Mode;
use omp4rs_bench::figures::{measure, mode_scale, AppKind};

fn usage() -> ! {
    eprintln!("usage: main <mode> <test> <threads> [scale] [--profile] [--json] [--repeat N]");
    eprintln!("  mode: 0=Pure 1=Hybrid 2=Compiled 3=CompiledDT -1=PyOMP");
    eprintln!("  test: fft jacobi lud maze md pi qsort wordcount graphic");
    eprintln!("        wavefront sparselu pagerank   (task-dependence suite)");
    std::process::exit(2);
}

/// Pull `--json` / `--repeat N` out of the argument list.
fn parse_flags(args: &mut Vec<String>) -> (bool, usize) {
    let json = args.iter().position(|a| a == "--json").map(|i| {
        args.remove(i);
    });
    let repeat = match args.iter().position(|a| a == "--repeat") {
        Some(i) if i + 1 < args.len() => {
            let n = args[i + 1].parse::<usize>().unwrap_or_else(|_| usage());
            args.drain(i..=i + 1);
            n.max(1)
        }
        Some(_) => usage(),
        None => 1,
    };
    (json.is_some(), repeat)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // OMP4RS_FAULTS arms deterministic fault injection for the whole run
    // (the guard must stay alive); see docs/ENVIRONMENT.md.
    let _faults = omp4rs::faults::arm_from_env();
    let (json, repeat) = parse_flags(&mut args);
    let profile = omp4rs_bench::profile::begin(&mut args, "main");
    if args.len() < 3 {
        usage();
    }
    let Some(mode) = Mode::parse(&args[0]) else {
        usage()
    };
    let Some(app) = AppKind::parse(&args[1]) else {
        usage()
    };
    let Ok(threads) = args[2].parse::<usize>() else {
        usage()
    };
    let scale: f64 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(1.0);

    // The measurement entry point runs the benchmark at any thread count by
    // re-dispatching; reuse it at the requested team size via the apps API.
    let mut samples = Vec::with_capacity(repeat);
    let mut check = 0.0;
    for _ in 0..repeat {
        match run_at(app, mode, threads, scale) {
            Ok((seconds, c)) => {
                samples.push(seconds);
                check = c;
            }
            Err(e) => {
                eprintln!("{} cannot run under {}: {e}", app.name(), mode.name());
                std::process::exit(1);
            }
        }
    }
    let (median, sigma) = median_sigma(&mut samples);
    if json {
        // The VM tri-state matters for interpreted modes: record what this
        // process resolved so baselines are self-describing.
        let icvs = omp4rs::Icvs::current();
        let vm = match icvs.minipy_vm {
            omp4rs::MinipyVm::Off => "off",
            omp4rs::MinipyVm::Auto => "auto",
            omp4rs::MinipyVm::On => "on",
        };
        let quicken = match icvs.minipy_quicken {
            omp4rs::MinipyQuicken::Off => "off",
            omp4rs::MinipyQuicken::Auto => "auto",
            omp4rs::MinipyQuicken::On => "on",
        };
        let list = samples
            .iter()
            .map(|s| format!("{s:.6}"))
            .collect::<Vec<_>>()
            .join(",");
        // `effective_scale` = scale * mode_scale(mode): the problem size the
        // run *actually* used. Without it, rows with different per-mode
        // multipliers (Pure 0.02 vs Compiled 0.3) look comparable when they
        // ran 15x different work — the trap behind the old "Compiled slower
        // than Hybrid" reading of BENCH_pi.json.
        println!(
            "{{\"app\":\"{}\",\"mode\":\"{}\",\"threads\":{},\"scale\":{},\
             \"effective_scale\":{:.6},\"minipy_vm\":\"{}\",\"minipy_quicken\":\"{}\",\
             \"repeats\":{},\"median_s\":{:.6},\"sigma_s\":{:.6},\"samples_s\":[{}],\"check\":{:.9}}}",
            app.name(),
            mode.name(),
            threads,
            scale,
            scale * mode_scale(mode),
            vm,
            quicken,
            repeat,
            median,
            sigma,
            list,
            check
        );
    } else {
        println!(
            "{} {} threads={} scale={}: median {:.6} s +- {:.6} over {} run(s) \
             (result checksum {:.6})",
            app.name(),
            mode.name(),
            threads,
            scale,
            median,
            sigma,
            repeat,
            check
        );
    }
    profile.finish();
}

/// Median and population standard deviation of the samples (sorts in place).
fn median_sigma(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    let median = if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    };
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
    (median, var.sqrt())
}

fn run_at(app: AppKind, mode: Mode, threads: usize, scale: f64) -> Result<(f64, f64), String> {
    use omp4rs_apps::*;
    let s = scale * mode_scale(mode);
    let f = |v: f64| -> usize { (v * s).max(4.0) as usize };
    let out = match app {
        AppKind::Pi => pi::run(
            mode,
            threads,
            &pi::Params {
                n: f(2_000_000.0) as i64,
            },
        )?,
        AppKind::Fft => {
            let log2_n = ((12.0 + s.log2()).round().clamp(6.0, 22.0)) as u32;
            fft::run(
                mode,
                threads,
                &fft::Params {
                    log2_n,
                    ..fft::Params::default()
                },
            )?
        }
        AppKind::Jacobi => jacobi::run(
            mode,
            threads,
            &jacobi::Params {
                n: f(120.0),
                ..jacobi::Params::default()
            },
        )?,
        AppKind::Lu => lu::run(
            mode,
            threads,
            &lu::Params {
                n: f(96.0),
                ..lu::Params::default()
            },
        )?,
        AppKind::Md => md::run(
            mode,
            threads,
            &md::Params {
                n: f(160.0),
                steps: 2,
                ..md::Params::default()
            },
        )?,
        AppKind::Qsort => {
            let n = f(120_000.0);
            qsort::run(
                mode,
                threads,
                &qsort::Params {
                    n,
                    cutoff: (n / 64).max(16),
                    ..qsort::Params::default()
                },
            )?
        }
        AppKind::Bfs => bfs::run(
            mode,
            threads,
            &bfs::Params {
                side: f(61.0) | 1,
                ..bfs::Params::default()
            },
        )?,
        AppKind::Clustering => clustering::run(
            mode,
            threads,
            &clustering::Params {
                nodes: f(2_000.0),
                ..clustering::Params::default()
            },
        )?,
        AppKind::Wordcount => wordcount::run(
            mode,
            threads,
            &wordcount::Params {
                lines: f(4_000.0),
                ..wordcount::Params::default()
            },
        )?,
        AppKind::Wavefront => wavefront::run(
            mode,
            threads,
            &wavefront::Params {
                n: f(6.0).max(2) * 16,
                block: 16,
                ..wavefront::Params::default()
            },
        )?,
        AppKind::SparseLu => sparselu::run(
            mode,
            threads,
            &sparselu::Params {
                nb: f(6.0).max(2),
                ..sparselu::Params::default()
            },
        )?,
        AppKind::Pagerank => pagerank::run(
            mode,
            threads,
            &pagerank::Params {
                nodes: f(600.0),
                ..pagerank::Params::default()
            },
        )?,
    };
    // Silence unused import of `measure` while keeping the module linked.
    let _ = measure;
    Ok((out.seconds, out.check))
}
