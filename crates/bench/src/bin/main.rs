//! The artifact-style CLI (paper artifact appendix §D):
//!
//! ```text
//! main <mode> <test> <threads> [scale]
//! ```
//!
//! * `mode` — `0` Pure, `1` Hybrid, `2` Compiled, `3` CompiledDT, `-1` PyOMP
//! * `test` — `fft`, `jacobi`, `lud`, `maze`, `md`, `pi`, `qsort`,
//!   `wordcount`, `graphic`
//! * `threads` — team size
//! * `scale` — optional problem-size multiplier (default 1.0; the artifact's
//!   "additional arguments to modify the problem size")
//! * `--profile` — emit `trace_main.json` plus a per-region profiler summary
//!   (see [`omp4rs_bench::profile`])

use omp4rs_apps::Mode;
use omp4rs_bench::figures::{measure, mode_scale, AppKind};

fn usage() -> ! {
    eprintln!("usage: main <mode> <test> <threads> [scale] [--profile]");
    eprintln!("  mode: 0=Pure 1=Hybrid 2=Compiled 3=CompiledDT -1=PyOMP");
    eprintln!("  test: fft jacobi lud maze md pi qsort wordcount graphic");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // OMP4RS_FAULTS arms deterministic fault injection for the whole run
    // (the guard must stay alive); see docs/ENVIRONMENT.md.
    let _faults = omp4rs::faults::arm_from_env();
    let profile = omp4rs_bench::profile::begin(&mut args, "main");
    if args.len() < 3 {
        usage();
    }
    let Some(mode) = Mode::parse(&args[0]) else {
        usage()
    };
    let Some(app) = AppKind::parse(&args[1]) else {
        usage()
    };
    let Ok(threads) = args[2].parse::<usize>() else {
        usage()
    };
    let scale: f64 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(1.0);

    // The measurement entry point runs the benchmark at any thread count by
    // re-dispatching; reuse it at the requested team size via the apps API.
    let out = run_at(app, mode, threads, scale);
    match out {
        Ok((seconds, check)) => {
            println!(
                "{} {} threads={} scale={}: {:.6} s (result checksum {:.6})",
                app.name(),
                mode.name(),
                threads,
                scale,
                seconds,
                check
            );
        }
        Err(e) => {
            eprintln!("{} cannot run under {}: {e}", app.name(), mode.name());
            std::process::exit(1);
        }
    }
    profile.finish();
}

fn run_at(app: AppKind, mode: Mode, threads: usize, scale: f64) -> Result<(f64, f64), String> {
    use omp4rs_apps::*;
    let s = scale * mode_scale(mode);
    let f = |v: f64| -> usize { (v * s).max(4.0) as usize };
    let out = match app {
        AppKind::Pi => pi::run(
            mode,
            threads,
            &pi::Params {
                n: f(2_000_000.0) as i64,
            },
        )?,
        AppKind::Fft => {
            let log2_n = ((12.0 + s.log2()).round().clamp(6.0, 22.0)) as u32;
            fft::run(
                mode,
                threads,
                &fft::Params {
                    log2_n,
                    ..fft::Params::default()
                },
            )?
        }
        AppKind::Jacobi => jacobi::run(
            mode,
            threads,
            &jacobi::Params {
                n: f(120.0),
                ..jacobi::Params::default()
            },
        )?,
        AppKind::Lu => lu::run(
            mode,
            threads,
            &lu::Params {
                n: f(96.0),
                ..lu::Params::default()
            },
        )?,
        AppKind::Md => md::run(
            mode,
            threads,
            &md::Params {
                n: f(160.0),
                steps: 2,
                ..md::Params::default()
            },
        )?,
        AppKind::Qsort => {
            let n = f(120_000.0);
            qsort::run(
                mode,
                threads,
                &qsort::Params {
                    n,
                    cutoff: (n / 64).max(16),
                    ..qsort::Params::default()
                },
            )?
        }
        AppKind::Bfs => bfs::run(
            mode,
            threads,
            &bfs::Params {
                side: f(61.0) | 1,
                ..bfs::Params::default()
            },
        )?,
        AppKind::Clustering => clustering::run(
            mode,
            threads,
            &clustering::Params {
                nodes: f(2_000.0),
                ..clustering::Params::default()
            },
        )?,
        AppKind::Wordcount => wordcount::run(
            mode,
            threads,
            &wordcount::Params {
                lines: f(4_000.0),
                ..wordcount::Params::default()
            },
        )?,
    };
    // Silence unused import of `measure` while keeping the module linked.
    let _ = measure;
    Ok((out.seconds, out.check))
}
