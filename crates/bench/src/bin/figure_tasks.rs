//! Figure-style results for the task-dependence suite: *wavefront*,
//! *sparselu*, and *pagerank* under the four OMP4Py modes (PyOMP cannot run
//! any of them — no `depend` clause).
//!
//! Usage: `figure_tasks [--scale <f64>] [--profile]`
//!
//! Per app: measured single-thread cost per mode, the dependence-graph
//! accounting for one CompiledDT run (`omp4rs.task.dep.*` deltas), and the
//! simulated 1–32-thread sweep from the measured per-unit costs.

use omp4rs_apps::Mode;
use omp4rs_bench::{measure_primitives, sim_sweep, AppKind, SWEEP_THREADS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = omp4rs_bench::profile::begin(&mut args, "figure_tasks");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);

    println!("FIGURE (tasks) — wavefront, sparselu, pagerank: depend-ordered task DAGs");
    println!("(PyOMP: no task depend clause or taskgroup — the whole suite is out of envelope)\n");
    let prims = measure_primitives();

    for app in AppKind::tasks_suite() {
        println!("=== {} ===", app.name());
        let mut costs = Vec::new();
        for mode in Mode::omp4py_modes() {
            // Bracket one measurement with the dependence counters so the
            // figure records the graph each mode actually built.
            let before = omp4rs::depgraph::counters();
            match omp4rs_bench::figures::measure(app, mode, scale) {
                Some(m) => {
                    let after = omp4rs::depgraph::counters();
                    println!(
                        "  measured {:<11} {:>10.2} ms  → {:>10.1} ns/unit   \
                         dep: {} deferred / {} released / {} edges",
                        mode.name(),
                        m.seconds * 1e3,
                        m.per_unit() * 1e9,
                        after.deferred - before.deferred,
                        after.released - before.released,
                        after.edges - before.edges,
                    );
                    costs.push((mode, m.per_unit()));
                }
                None => println!("  measured {:<11} unsupported", mode.name()),
            }
        }
        let reason = omp4rs_apps::pyomp::unsupported_reason(app.name()).unwrap_or("unsupported");
        println!("  measured {:<11} cannot run: {reason}", "PyOMP");

        print!("  {:<11}", "sim threads");
        for t in SWEEP_THREADS {
            print!(" {t:>9}");
        }
        println!();
        for (mode, per_unit) in &costs {
            let sweep = sim_sweep(app, *mode, *per_unit, &prims, false, None);
            let t1 = sweep[0].1;
            print!("  {:<11}", mode.name());
            for &(_, t) in &sweep {
                print!(" {:>8.2}x", t1 / t);
            }
            println!("   (t1 = {:.2} ms)", t1 * 1e3);
        }
        println!();
    }
    println!("(every run drains its graph: deferred == released in each dep column above;");
    println!(" a mismatch would mean a stranded successor — the invariant the chaos tests pin)");
    profile.finish();
}
