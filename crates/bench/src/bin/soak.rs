//! Chaos-soak harness: server-style resilience proof for the runtime.
//!
//! N client threads fire small parallel regions continuously while the
//! fault layer injects worker panics and "infinite" stalls, and a sidecar
//! exercises minimpi rank failures over a lossy interconnect — all
//! simultaneously. The run must complete with **zero hangs** (an internal
//! monitor thread enforces an overall deadline), **zero cascading panics**
//! (every failure is a typed, per-region outcome), and deterministic
//! degradation counters.
//!
//! Usage: `soak [--check] [--json] [--trace] [--clients <list>] [--seconds <s>]`
//!
//! * `--check` — short seeded run under the full fault matrix; exits
//!   nonzero unless the expected degradation counters come out exactly.
//! * `--json`  — emit the `BENCH_serve.json` document on stdout: a sweep of
//!   regions/sec vs client count, with and without chaos.
//! * `--trace` — arm the streaming trace pipeline underneath the soak
//!   (chaos included) and report what it sustained; see
//!   [`omp4rs_bench::traceprobe`]. Adds a `"trace"` member to the JSON.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use minimpi::{NetModel, RetryPolicy, World};
use omp4rs::exec::{parallel_region_result, ParallelConfig};
use omp4rs::faults::{self, FaultPlan, FaultSite};
use omp4rs::{pool, Backend, Icvs, InjectedFault, OmpError};

/// Per-soak outcome tallies. Everything a region can do is one of these —
/// any panic that is neither an injected fault nor a region timeout is a
/// cascading failure and fails `--check`.
#[derive(Debug, Default)]
struct Tally {
    regions: AtomicU64,
    ok: AtomicU64,
    injected_panics: AtomicU64,
    deadline_timeouts: AtomicU64,
    unexpected: AtomicU64,
}

/// One client region: a small work-shared reduction plus an explicit
/// barrier — enough surface (chunk claims, barrier arrivals) for every
/// fault site to land somewhere.
fn serve_one(threads: usize) -> Result<(), OmpError> {
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region_result(&cfg, |ctx| {
        let sum = ctx.for_reduce(
            omp4rs::ForSpec::new(),
            0..64,
            0i64,
            |i, acc| *acc += i,
            |a, b| a + b,
        );
        ctx.barrier();
        assert_eq!(sum, 64 * 63 / 2);
    })
}

/// Drive `clients` client threads for `duration`, classifying every
/// region's outcome.
fn soak(clients: usize, threads: usize, duration: Duration, tally: &Tally) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    tally.regions.fetch_add(1, Ordering::Relaxed);
                    match catch_unwind(AssertUnwindSafe(|| serve_one(threads))) {
                        Ok(Ok(())) => {
                            tally.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Err(OmpError::RegionTimeout { .. })) => {
                            tally.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Err(_)) => {
                            tally.unexpected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<InjectedFault>().is_some() {
                                tally.injected_panics.fetch_add(1, Ordering::Relaxed);
                            } else {
                                tally.unexpected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
}

/// The minimpi leg of the fault matrix: resilient collectives over a lossy
/// net must all recover, and a permanently silenced rank must surface as a
/// typed `RetriesExhausted` — not a hang. Returns (recoveries, typed
/// permanent failures observed).
fn mpi_chaos(rounds: usize) -> (u64, u64) {
    let policy = RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(1),
        per_attempt_timeout: Duration::from_millis(100),
        seed: 11,
    };
    let mut recovered = 0u64;
    for round in 0..rounds {
        let net = NetModel::local().with_loss(0.25, 1000 + round as u64);
        let out = World::run_with_net(2, net, |comm| {
            comm.allreduce_sum_resilient(comm.rank() as f64 + 1.0, &policy)
        });
        if out.iter().all(|r| r == &Ok(3.0)) {
            recovered += 1;
        }
    }
    // Permanent failure: rank 1 goes silent; rank 0's retries must exhaust
    // into the typed error within bounded time.
    let fast = RetryPolicy {
        max_attempts: 2,
        per_attempt_timeout: Duration::from_millis(40),
        ..policy
    };
    let out = World::run(2, |comm| {
        if comm.rank() == 1 {
            comm.inject_failure();
        }
        comm.allreduce_sum_resilient(1.0, &fast)
    });
    let typed = out
        .iter()
        .filter(|r| matches!(r, Err(minimpi::MpiError::RetriesExhausted { .. })))
        .count() as u64;
    (recovered, typed)
}

/// Install the ICVs a serving process would run with. The region deadline
/// turns injected stalls into `RegionTimeout`s; `dynamic` turns pool
/// saturation into shrunken/shed teams; the generous watchdog is armed as
/// the backstop without flagging healthy-but-descheduled workers.
fn serve_icvs(chaos: bool) -> Icvs {
    let before = Icvs::current();
    Icvs::update(|icvs| {
        icvs.dynamic = true;
        if chaos {
            icvs.region_deadline = Some(Duration::from_millis(300));
            icvs.watchdog = Some(Duration::from_secs(10));
        }
    });
    before
}

struct SweepRow {
    clients: usize,
    chaos: bool,
    regions: u64,
    ok: u64,
    injected_panics: u64,
    deadline_timeouts: u64,
    unexpected: u64,
    regions_per_sec: f64,
}

impl SweepRow {
    fn json(&self) -> String {
        format!(
            "{{\"clients\":{},\"chaos\":{},\"regions\":{},\"ok\":{},\"injected_panics\":{},\
             \"deadline_timeouts\":{},\"unexpected\":{},\"regions_per_sec\":{:.1}}}",
            self.clients,
            self.chaos,
            self.regions,
            self.ok,
            self.injected_panics,
            self.deadline_timeouts,
            self.unexpected,
            self.regions_per_sec
        )
    }
}

/// One sweep cell: soak at `clients` for `seconds`, optionally under the
/// standard chaos plan (one injected worker panic + one injected infinite
/// stall, occurrences spaced so they cannot land in the same region).
fn run_cell(clients: usize, seconds: f64, chaos: bool) -> SweepRow {
    let before = serve_icvs(chaos);
    let guard = chaos.then(|| {
        faults::arm(
            FaultPlan::new(0x50AC)
                .panic_at(FaultSite::BarrierArrival, 10)
                .delay_at(FaultSite::BarrierArrival, 400, Duration::from_secs(120)),
        )
    });
    let tally = Tally::default();
    let start = Instant::now();
    soak(clients, 4, Duration::from_secs_f64(seconds), &tally);
    let elapsed = start.elapsed().as_secs_f64();
    drop(guard);
    Icvs::reset(before);
    let regions = tally.regions.load(Ordering::Relaxed);
    SweepRow {
        clients,
        chaos,
        regions,
        ok: tally.ok.load(Ordering::Relaxed),
        injected_panics: tally.injected_panics.load(Ordering::Relaxed),
        deadline_timeouts: tally.deadline_timeouts.load(Ordering::Relaxed),
        unexpected: tally.unexpected.load(Ordering::Relaxed),
        regions_per_sec: regions as f64 / elapsed,
    }
}

/// Zero-hang enforcement: if the process is still alive past the overall
/// deadline, something deadlocked despite the resilience layer — print a
/// diagnostic and die nonzero so CI sees a failure, not a stuck job.
fn arm_hang_monitor(limit: Duration) {
    let spawned = std::thread::Builder::new()
        .name("soak-hang-monitor".into())
        .spawn(move || {
            std::thread::sleep(limit);
            eprintln!(
                "soak: HANG — still running after {limit:?}; pool stats {:?}, watchdog {:?}",
                pool::stats(),
                pool::watchdog_stats()
            );
            std::process::exit(2);
        });
    if let Err(e) = spawned {
        eprintln!("soak: could not arm hang monitor: {e}");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let probe = omp4rs_bench::traceprobe::begin(&mut args, "soak");
    let check = args.iter().any(|a| a == "--check");
    let json = args.iter().any(|a| a == "--json");
    let seconds = args
        .iter()
        .position(|a| a == "--seconds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if check { 3.0 } else { 2.0 });
    let clients: Vec<usize> = args
        .iter()
        .position(|a| a == "--clients")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|c| c.parse().ok()).collect())
        .unwrap_or_else(|| if check { vec![4] } else { vec![1, 2, 4, 8] });

    let cells = clients.len() * if check { 1 } else { 2 };
    arm_hang_monitor(Duration::from_secs_f64(seconds * cells as f64 + 120.0));

    if check {
        // The full fault matrix at once: worker panic + injected stall
        // (clients) and rank failures (mpi sidecar), concurrently.
        let admission_before = pool::admission_stats();
        let mpi = std::thread::spawn(|| mpi_chaos(10));
        let row = run_cell(clients[0], seconds, true);
        let (recovered, typed_permanent) = mpi.join().expect("mpi sidecar must not panic");
        let admission_after = pool::admission_stats();
        if let Some(report) = probe.finish() {
            println!("{}", report.line());
        }

        let admitted = (admission_after.granted - admission_before.granted)
            + (admission_after.shrunk - admission_before.shrunk)
            + (admission_after.shed - admission_before.shed);
        println!(
            "check: {} regions ({:.0}/s), {} ok, {} injected panics, {} deadline timeouts, \
             {} unexpected; admission decisions {}; mpi {}/10 recovered, {} typed permanent",
            row.regions,
            row.regions_per_sec,
            row.ok,
            row.injected_panics,
            row.deadline_timeouts,
            row.unexpected,
            admitted,
            recovered,
            typed_permanent
        );
        let mut failures = Vec::new();
        // Deterministic counters: each plan entry fires exactly once, and
        // the two entries cannot land in one region (occurrences 10 and 400
        // are farther apart than any region's arrival count).
        if row.injected_panics != 1 {
            failures.push(format!(
                "expected exactly 1 injected panic, saw {}",
                row.injected_panics
            ));
        }
        if row.deadline_timeouts != 1 {
            failures.push(format!(
                "expected exactly 1 deadline timeout, saw {}",
                row.deadline_timeouts
            ));
        }
        if row.unexpected != 0 {
            failures.push(format!("{} cascading/unexpected failures", row.unexpected));
        }
        if row.ok + 2 != row.regions {
            failures.push(format!(
                "outcome accounting leak: {} ok + 2 degraded != {} regions",
                row.ok, row.regions
            ));
        }
        // Every top-level region passes admission exactly once under
        // OMP_DYNAMIC; the mpi sidecar contributes none.
        if admitted < row.regions {
            failures.push(format!(
                "admission decisions {admitted} < regions {}",
                row.regions
            ));
        }
        if recovered != 10 {
            failures.push(format!("mpi recovered {recovered}/10 lossy rounds"));
        }
        if typed_permanent == 0 {
            failures.push("dead rank produced no typed RetriesExhausted".into());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!("check: OK (zero hangs, zero cascades, deterministic degradation)");
        return;
    }

    // Sweep: regions/sec vs client count, with and without chaos.
    let mut rows = Vec::new();
    for &c in &clients {
        for chaos in [false, true] {
            eprintln!("==> soak clients={c} chaos={chaos} seconds={seconds}");
            rows.push(run_cell(c, seconds, chaos));
        }
    }
    let (recovered, typed_permanent) = mpi_chaos(5);
    let admission = pool::admission_stats();
    let watchdog = pool::watchdog_stats();
    let trace = probe.finish();

    if json {
        let body = rows
            .iter()
            .map(SweepRow::json)
            .collect::<Vec<_>>()
            .join(",\n  ");
        let trace_member = trace
            .as_ref()
            .map(|t| format!(",\n \"trace\": {}", t.json()))
            .unwrap_or_default();
        println!(
            "{{\n \"benchmark\": \"serve\",\n \"pool_shards\": {},\n \
             \"seconds_per_cell\": {seconds},\n \"sweep\": [\n  \
             {body}\n ],\n \"mpi\": {{\"lossy_rounds_recovered\": {recovered}, \
             \"typed_permanent_failures\": {typed_permanent}}},\n \"admission\": \
             {{\"granted\": {}, \"shrunk\": {}, \"shed\": {}}},\n \"watchdog\": \
             {{\"stalls\": {}, \"cancels\": {}}}{trace_member}\n}}",
            pool::shard_count(),
            admission.granted,
            admission.shrunk,
            admission.shed,
            watchdog.stalls,
            watchdog.cancels
        );
    } else {
        println!("SOAK — regions/sec vs clients (4 threads per region)");
        for row in &rows {
            println!(
                "  clients={:<2} chaos={:<5} {:>8.0} regions/s  ({} regions, {} ok, {} panics, {} timeouts, {} unexpected)",
                row.clients,
                row.chaos,
                row.regions_per_sec,
                row.regions,
                row.ok,
                row.injected_panics,
                row.deadline_timeouts,
                row.unexpected
            );
        }
        println!(
            "admission: {} granted, {} shrunk, {} shed; watchdog: {} stalls, {} cancels; \
             mpi: {recovered}/5 lossy rounds recovered, {typed_permanent} typed permanent failures",
            admission.granted, admission.shrunk, admission.shed, watchdog.stalls, watchdog.cancels
        );
        if let Some(report) = &trace {
            println!("{}", report.line());
        }
    }
}
