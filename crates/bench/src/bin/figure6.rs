//! Regenerate Fig. 6: scalability of *clustering coefficient* and
//! *wordcount* under the four OMP4Py modes (PyOMP cannot run either).
//!
//! Usage: `figure6 [--scale <f64>] [--profile]`

use omp4rs_apps::Mode;
use omp4rs_bench::{measure_primitives, sim_sweep, AppKind, SWEEP_THREADS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = omp4rs_bench::profile::begin(&mut args, "figure6");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);

    println!("FIGURE 6 — clustering coefficient and wordcount scalability");
    println!("(PyOMP: clustering → Numba cannot compile NetworkX; wordcount → no dict support)\n");
    let prims = measure_primitives();

    for app in AppKind::figure6() {
        println!("=== {} ===", app.name());
        let mut costs = Vec::new();
        for mode in Mode::omp4py_modes() {
            match omp4rs_bench::figures::measure(app, mode, scale) {
                Some(m) => {
                    println!(
                        "  measured {:<11} {:>10.2} ms  → {:>10.1} ns/unit",
                        mode.name(),
                        m.seconds * 1e3,
                        m.per_unit() * 1e9
                    );
                    costs.push((mode, m.per_unit()));
                }
                None => println!("  measured {:<11} unsupported", mode.name()),
            }
        }
        // PyOMP row: the paper's incompatibility message.
        let reason = omp4rs_apps::pyomp::unsupported_reason(app.name())
            .or_else(|| omp4rs_apps::pyomp::unsupported_reason("clustering"))
            .unwrap_or("unsupported");
        println!("  measured {:<11} cannot run: {reason}", "PyOMP");

        print!("  {:<11}", "sim threads");
        for t in SWEEP_THREADS {
            print!(" {t:>9}");
        }
        println!();
        for (mode, per_unit) in &costs {
            let sweep = sim_sweep(app, *mode, *per_unit, &prims, false, None);
            let t1 = sweep[0].1;
            print!("  {:<11}", mode.name());
            for &(_, t) in &sweep {
                print!(" {:>8.2}x", t1 / t);
            }
            println!("   (t1 = {:.2} ms)", t1 * 1e3);
        }
        println!();
    }
    println!("(paper: both applications scale in all modes — clustering ~5x, wordcount ~10x at 32 threads —");
    println!(" with compiled modes only slightly ahead, since the work is library/str/dict-bound)");
    profile.finish();
}
