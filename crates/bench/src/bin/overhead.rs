//! Trace-overhead microbenchmark: what does the OMPT-style profiler cost?
//!
//! Runs an event-dense workload — a `schedule(dynamic, 1)` parallel loop
//! whose every chunk claim and completion is an event, plus the region's
//! barriers — once with the profiler enabled and once disabled, several
//! trials each, and reports:
//!
//! * events recorded per second of wall-clock while enabled (mean ± σ),
//! * per-event overhead: the enabled-vs-disabled time delta divided by the
//!   number of events recorded,
//! * the disabled-run invariant: **zero** events recorded.
//!
//! ```text
//! overhead [--trials N] [--iters N] [--check]
//! ```
//!
//! `--check` exits nonzero unless (a) disabled runs record no events and
//! (b) an enabled run's Chrome-trace dump passes the shape validator —
//! the CI hook for the profiler's "inert unless armed" contract.

use omp4rs::exec::{parallel, ForSpec};
use omp4rs::ompt;

/// One timed run of the event-dense loop; returns (seconds, events recorded).
fn run_once(iters: i64, threads: usize) -> (f64, usize) {
    let before = ompt::events().len();
    let start = std::time::Instant::now();
    let sink = std::sync::atomic::AtomicU64::new(0);
    parallel(&format!("num_threads({threads})"), |ctx| {
        let mut local = 0u64;
        ctx.for_range(
            ForSpec::parse("schedule(dynamic, 1)").expect("valid spec"),
            (0, iters, 1),
            |i| {
                local = local.wrapping_add(i as u64);
            },
        );
        sink.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
    });
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(sink.into_inner());
    (seconds, ompt::events().len() - before)
}

fn mean_sigma(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let trials = get("--trials", 7).max(2);
    let iters = get("--iters", 20_000) as i64;
    let check = args.iter().any(|a| a == "--check");
    let threads = 4;

    println!(
        "profiler overhead: {trials} trials, dynamic,1 loop of {iters} iters, {threads} threads"
    );

    // Warm up thread pools and code paths outside any session.
    {
        let _s = ompt::disabled_session();
        run_once(iters, threads);
    }

    // Disabled runs: must record nothing; establishes the baseline time.
    let mut disabled_secs = Vec::with_capacity(trials);
    let mut disabled_events = 0usize;
    {
        let _s = ompt::disabled_session();
        for _ in 0..trials {
            let (secs, events) = run_once(iters, threads);
            disabled_secs.push(secs);
            disabled_events += events;
        }
    }

    // Enabled runs: count events and wall-clock.
    let trace_path = std::env::temp_dir().join("overhead_trace.json");
    let mut enabled_secs = Vec::with_capacity(trials);
    let mut enabled_events = Vec::with_capacity(trials);
    let trace_result;
    {
        let session = ompt::session(ompt::ToolConfig {
            trace_path: Some(trace_path.display().to_string()),
            summary: false,
        });
        for _ in 0..trials {
            let (secs, events) = run_once(iters, threads);
            enabled_secs.push(secs);
            enabled_events.push(events as f64);
        }
        trace_result = ompt::validate_chrome_trace(&session.chrome_trace());
    }

    let (dis_mean, dis_sigma) = mean_sigma(&disabled_secs);
    let (en_mean, en_sigma) = mean_sigma(&enabled_secs);
    let (ev_mean, ev_sigma) = mean_sigma(&enabled_events);
    let rate: Vec<f64> = enabled_secs
        .iter()
        .zip(&enabled_events)
        .map(|(s, e)| e / s.max(1e-12))
        .collect();
    let (rate_mean, rate_sigma) = mean_sigma(&rate);
    let delta = (en_mean - dis_mean).max(0.0);
    let per_event_ns = if ev_mean > 0.0 {
        delta / ev_mean * 1e9
    } else {
        0.0
    };

    println!(
        "  disabled: {:.3} ± {:.3} ms/run, {} events recorded",
        dis_mean * 1e3,
        dis_sigma * 1e3,
        disabled_events
    );
    println!(
        "  enabled:  {:.3} ± {:.3} ms/run, {:.0} ± {:.0} events/run",
        en_mean * 1e3,
        en_sigma * 1e3,
        ev_mean,
        ev_sigma
    );
    println!(
        "  rate:     {:.0} ± {:.0} events/sec while enabled",
        rate_mean, rate_sigma
    );
    println!(
        "  overhead: {:+.1}% wall-clock ({:.0} ns per recorded event)",
        100.0 * delta / dis_mean.max(1e-12),
        per_event_ns
    );
    match &trace_result {
        Ok(stats) => println!(
            "  trace:    {} events, {} counters — valid Chrome trace",
            stats.events, stats.counters
        ),
        Err(e) => println!("  trace:    INVALID: {e}"),
    }

    if check {
        let mut failed = false;
        if disabled_events != 0 {
            eprintln!("CHECK FAILED: disabled profiler recorded {disabled_events} events");
            failed = true;
        }
        if ev_mean <= 0.0 {
            eprintln!("CHECK FAILED: enabled profiler recorded no events");
            failed = true;
        }
        if let Err(e) = &trace_result {
            eprintln!("CHECK FAILED: Chrome trace did not validate: {e}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("  check:    OK (disabled records nothing; enabled trace validates)");
    }
}
