//! Trace-overhead microbenchmark: what does the OMPT-style profiler cost,
//! and how much event traffic can the trace pipeline sustain?
//!
//! Two sections:
//!
//! 1. **A/B overhead.** Runs an event-dense workload — a
//!    `schedule(dynamic, 1)` parallel loop whose every chunk claim and
//!    completion is an event, plus the region's barriers — once with the
//!    profiler enabled and once disabled, several trials each, and reports
//!    events/sec, per-event overhead, and the disabled-run invariant
//!    (**zero** events recorded).
//! 2. **Sustained throughput per overflow policy.** For each of
//!    `drop-oldest`, `drop-newest`, and `block`, runs the same event-dense
//!    regions for a fixed wall-clock window through the full production
//!    pipeline — bounded per-thread rings, the dedicated flusher, and a
//!    rotating streaming sink — and reports events/sec drained, events
//!    dropped, the bounded-memory guarantee (`rings × capacity ×
//!    sizeof(Event)`), and whether a lossy run's `omp4rs.trace.dropped`
//!    counter landed in the trace footer.
//!
//! ```text
//! overhead [--trials N] [--iters N] [--ring N] [--sustained-ms N] [--json] [--check]
//! ```
//!
//! `--check` exits nonzero unless (a) disabled runs record no events,
//! (b) an enabled run's Chrome-trace dump passes the shape validator,
//! (c) lossy policies on a tiny ring report drops in both the stats and the
//! trace footer, and (d) the `block` policy loses nothing. For (c) the
//! flusher is paused during lossy runs ([`ompt::set_flusher_paused`]) so the
//! tiny ring deterministically overflows. `--json` writes the machine-
//! readable document (`scripts/bench.sh` captures it as BENCH_trace.json)
//! to stdout and moves the human-readable report to stderr.

use omp4rs::exec::{parallel, ForSpec};
use omp4rs::ompt::{self, TracePolicy};

static JSON: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Human-readable output: stdout normally, stderr under `--json` (stdout is
/// then reserved for the JSON document).
macro_rules! say {
    ($($t:tt)*) => {
        if JSON.load(std::sync::atomic::Ordering::Relaxed) {
            eprintln!($($t)*);
        } else {
            println!($($t)*);
        }
    };
}

/// The event-dense region: a `dynamic,1` loop recording two events per
/// iteration plus the region's begin/end/barrier events.
fn run_region(iters: i64, threads: usize) {
    let sink = std::sync::atomic::AtomicU64::new(0);
    parallel(&format!("num_threads({threads})"), |ctx| {
        let mut local = 0u64;
        ctx.for_range(
            ForSpec::parse("schedule(dynamic, 1)").expect("valid spec"),
            (0, iters, 1),
            |i| {
                local = local.wrapping_add(i as u64);
            },
        );
        sink.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
    });
    std::hint::black_box(sink.into_inner());
}

/// One timed run of the event-dense loop; returns (seconds, events recorded).
fn run_once(iters: i64, threads: usize) -> (f64, usize) {
    let before = ompt::events().len();
    let start = std::time::Instant::now();
    run_region(iters, threads);
    let seconds = start.elapsed().as_secs_f64();
    (seconds, ompt::events().len() - before)
}

fn mean_sigma(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// One sustained-throughput measurement through the full pipeline.
struct Sustained {
    policy: TracePolicy,
    ring: usize,
    threads: usize,
    seconds: f64,
    flushed: u64,
    dropped: u64,
    rings: usize,
    bounded_bytes: usize,
    parts: usize,
    parts_valid: bool,
    footer_drops: bool,
}

impl Sustained {
    fn events_per_sec(&self) -> f64 {
        self.flushed as f64 / self.seconds.max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\"policy\":\"{}\",\"ring\":{},\"threads\":{},\"seconds\":{:.3},\
             \"flushed\":{},\"dropped\":{},\"events_per_sec\":{:.0},\
             \"rings\":{},\"bounded_bytes\":{},\"parts\":{},\
             \"parts_valid\":{},\"footer_drops\":{}}}",
            self.policy.name(),
            self.ring,
            self.threads,
            self.seconds,
            self.flushed,
            self.dropped,
            self.events_per_sec(),
            self.rings,
            self.bounded_bytes,
            self.parts,
            self.parts_valid,
            self.footer_drops
        )
    }
}

/// Run event-dense regions through a streaming (rotating) session under the
/// given policy for `ms` of wall-clock, then finalize and inspect the parts.
///
/// `pause_flusher` holds the dedicated flusher off during the measurement so
/// a tiny ring deterministically overflows (`--check` uses it for the lossy
/// policies); inline region-end drains still feed the sink, and shutdown
/// drains everything that remains.
fn sustained_run(
    policy: TracePolicy,
    ring: usize,
    threads: usize,
    ms: u64,
    iters: i64,
    pause_flusher: bool,
) -> Sustained {
    let base = std::env::temp_dir().join(format!(
        "overhead_sustained_{}_{}.json",
        policy.name(),
        std::process::id()
    ));
    let base = base.display().to_string();
    let session = ompt::session(ompt::ToolConfig {
        trace_path: Some(base.clone()),
        summary: false,
        ring_capacity: ring,
        policy,
        rotate_kib: Some(128),
        rotate_keep: 3,
    });
    ompt::set_flusher_paused(pause_flusher);
    let start = std::time::Instant::now();
    let deadline = start + std::time::Duration::from_millis(ms);
    while std::time::Instant::now() < deadline {
        run_region(iters, threads);
    }
    let seconds = start.elapsed().as_secs_f64();
    ompt::set_flusher_paused(false);
    let stats = ompt::ring_stats();
    let final_part = ompt::finalize().expect("trace parts writable");
    drop(session);

    // Look for the drop counter in the *final* part's footer (rotation
    // stamps the running total into every part it closes), then probe the
    // rotation output: count surviving parts, validate, and clean up.
    let footer_drops = final_part
        .as_deref()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .is_some_and(|text| text.contains("\"omp4rs.trace.dropped\""));
    let mut parts = 0usize;
    let mut parts_valid = true;
    // Pruning means surviving part indices need not start at 0 (a long run
    // rotates far past the keep window); scan a wide index range.
    let stem = base.strip_suffix(".json").unwrap_or(&base);
    for idx in 0..4096 {
        let path = format!("{stem}.{idx}.json");
        if let Ok(text) = std::fs::read_to_string(&path) {
            parts += 1;
            parts_valid &= ompt::validate_chrome_trace(&text).is_ok();
            let _ = std::fs::remove_file(&path);
        }
    }
    Sustained {
        policy,
        ring,
        threads,
        seconds,
        flushed: stats.flushed,
        dropped: stats.dropped,
        rings: stats.rings,
        bounded_bytes: stats.bounded_bytes(),
        parts,
        parts_valid,
        footer_drops,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let check = args.iter().any(|a| a == "--check");
    let json = args.iter().any(|a| a == "--json");
    JSON.store(json, std::sync::atomic::Ordering::Relaxed);
    let trials = get("--trials", 7).max(2);
    let iters = get("--iters", 20_000) as i64;
    let ring = get("--ring", if check { 256 } else { 2048 }).max(1);
    let sustained_ms = get("--sustained-ms", if check { 300 } else { 1000 }) as u64;
    let threads = 4;

    say!("profiler overhead: {trials} trials, dynamic,1 loop of {iters} iters, {threads} threads");

    // Warm up thread pools and code paths outside any session.
    {
        let _s = ompt::disabled_session();
        run_once(iters, threads);
    }

    // Disabled runs: must record nothing; establishes the baseline time.
    let mut disabled_secs = Vec::with_capacity(trials);
    let mut disabled_events = 0usize;
    {
        let _s = ompt::disabled_session();
        for _ in 0..trials {
            let (secs, events) = run_once(iters, threads);
            disabled_secs.push(secs);
            disabled_events += events;
        }
    }

    // Enabled runs: count events and wall-clock.
    let trace_path = std::env::temp_dir().join("overhead_trace.json");
    let mut enabled_secs = Vec::with_capacity(trials);
    let mut enabled_events = Vec::with_capacity(trials);
    let trace_result;
    {
        let session = ompt::session(ompt::ToolConfig {
            trace_path: Some(trace_path.display().to_string()),
            summary: false,
            ..Default::default()
        });
        for _ in 0..trials {
            let (secs, events) = run_once(iters, threads);
            enabled_secs.push(secs);
            enabled_events.push(events as f64);
        }
        trace_result = ompt::validate_chrome_trace(&session.chrome_trace());
    }

    let (dis_mean, dis_sigma) = mean_sigma(&disabled_secs);
    let (en_mean, en_sigma) = mean_sigma(&enabled_secs);
    let (ev_mean, ev_sigma) = mean_sigma(&enabled_events);
    let rate: Vec<f64> = enabled_secs
        .iter()
        .zip(&enabled_events)
        .map(|(s, e)| e / s.max(1e-12))
        .collect();
    let (rate_mean, rate_sigma) = mean_sigma(&rate);
    let delta = (en_mean - dis_mean).max(0.0);
    let per_event_ns = if ev_mean > 0.0 {
        delta / ev_mean * 1e9
    } else {
        0.0
    };

    say!(
        "  disabled: {:.3} ± {:.3} ms/run, {} events recorded",
        dis_mean * 1e3,
        dis_sigma * 1e3,
        disabled_events
    );
    say!(
        "  enabled:  {:.3} ± {:.3} ms/run, {:.0} ± {:.0} events/run",
        en_mean * 1e3,
        en_sigma * 1e3,
        ev_mean,
        ev_sigma
    );
    say!(
        "  rate:     {:.0} ± {:.0} events/sec while enabled",
        rate_mean,
        rate_sigma
    );
    say!(
        "  overhead: {:+.1}% wall-clock ({:.0} ns per recorded event)",
        100.0 * delta / dis_mean.max(1e-12),
        per_event_ns
    );
    match &trace_result {
        Ok(stats) => say!(
            "  trace:    {} events, {} counters — valid Chrome trace",
            stats.events,
            stats.counters
        ),
        Err(e) => say!("  trace:    INVALID: {e}"),
    }

    // Sustained throughput per overflow policy, through the full pipeline
    // (ring buffers -> flusher -> rotating stream sink). Lossy policies run
    // with the flusher paused under --check so the tiny ring must overflow;
    // `block` always keeps the flusher live (it is what makes block make
    // progress without self-draining every slice).
    say!("sustained pipeline throughput: ring={ring} events/thread, {sustained_ms} ms per policy");
    let mut sustained = Vec::new();
    for policy in [
        TracePolicy::DropOldest,
        TracePolicy::DropNewest,
        TracePolicy::Block,
    ] {
        let pause = check && policy != TracePolicy::Block;
        let row = sustained_run(policy, ring, threads, sustained_ms, iters, pause);
        say!(
            "  {:<12} {:>9.0} events/sec drained, {:>7} dropped, {} rings x {} cap = {:.0} KiB bound, {} part(s){}{}",
            row.policy.name(),
            row.events_per_sec(),
            row.dropped,
            row.rings,
            row.ring,
            row.bounded_bytes as f64 / 1024.0,
            row.parts,
            if row.parts_valid { "" } else { " [INVALID PART]" },
            if row.footer_drops { " [drops in footer]" } else { "" }
        );
        sustained.push(row);
    }

    if json {
        let rows: Vec<String> = sustained.iter().map(Sustained::json).collect();
        println!(
            "{{\n \"benchmark\": \"trace-pipeline\",\n \"threads\": {},\n \"iters\": {},\n \
             \"overhead\": {{\"disabled_ms\": {:.4}, \"enabled_ms\": {:.4}, \
             \"events_per_run\": {:.0}, \"events_per_sec\": {:.0}, \"per_event_ns\": {:.1}}},\n \
             \"sustained\": [\n  {}\n ]\n}}",
            threads,
            iters,
            dis_mean * 1e3,
            en_mean * 1e3,
            ev_mean,
            rate_mean,
            per_event_ns,
            rows.join(",\n  ")
        );
    }

    if check {
        let mut failed = false;
        if disabled_events != 0 {
            eprintln!("CHECK FAILED: disabled profiler recorded {disabled_events} events");
            failed = true;
        }
        if ev_mean <= 0.0 {
            eprintln!("CHECK FAILED: enabled profiler recorded no events");
            failed = true;
        }
        if let Err(e) = &trace_result {
            eprintln!("CHECK FAILED: Chrome trace did not validate: {e}");
            failed = true;
        }
        for row in &sustained {
            let name = row.policy.name();
            if row.flushed == 0 {
                eprintln!("CHECK FAILED: {name} drained no events through the pipeline");
                failed = true;
            }
            if !row.parts_valid || row.parts == 0 {
                eprintln!("CHECK FAILED: {name} produced missing/invalid trace parts");
                failed = true;
            }
            match row.policy {
                TracePolicy::Block => {
                    if row.dropped != 0 {
                        eprintln!("CHECK FAILED: block policy dropped {} events", row.dropped);
                        failed = true;
                    }
                }
                TracePolicy::DropOldest | TracePolicy::DropNewest => {
                    if row.dropped == 0 {
                        eprintln!(
                            "CHECK FAILED: {name} on a {ring}-slot ring dropped nothing \
                             (overflow never engaged?)"
                        );
                        failed = true;
                    }
                    if !row.footer_drops {
                        eprintln!(
                            "CHECK FAILED: {name} dropped {} events but the trace footer \
                             has no omp4rs.trace.dropped entry",
                            row.dropped
                        );
                        failed = true;
                    }
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        say!(
            "  check:    OK (disabled records nothing; enabled trace validates; \
             lossy drops surface in stats + footer; block is lossless)"
        );
    }
}
