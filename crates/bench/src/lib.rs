//! # omp4rs-bench — the harness that regenerates the paper's evaluation
//!
//! Binaries (one per table/figure — see DESIGN.md §4):
//!
//! * `main` — the artifact-style CLI: `main <mode> <test> <threads> [scale]`
//! * `table1` — static benchmark characteristics (Table I)
//! * `figure5` — numerical-application scalability, 5 systems
//! * `figure6` — clustering & wordcount scalability, 4 OMP4Py modes
//! * `figure7` — scheduling-policy speedups (static/dynamic/guided)
//! * `figure8` — hybrid MPI/OpenMP jacobi across nodes
//! * `gil_ablation` — GIL vs free-threading (the paper's §I motivation)
//!
//! # Methodology on a small host
//!
//! The paper's testbed is a 32-core Xeon. On hosts with fewer cores the
//! harness reports **measured** numbers for everything core-count-independent
//! (per-iteration costs per mode — the Pure/Hybrid/Compiled/CompiledDT
//! ordering and gaps; correctness at any thread count), and regenerates the
//! **thread-scaling curves** with `simcore`, which replays the runtime's
//! scheduling algorithms on a virtual 32-core machine using those measured
//! costs. Calibration details live in [`calibrate`]; per-benchmark workload
//! shapes in [`figures`].

// Public API items carry doc comments; enum struct-variant fields are
// documented at the variant level.
#![warn(missing_docs)]
#![allow(missing_docs)]

pub mod calibrate;
pub mod figures;
pub mod profile;
pub mod traceprobe;

pub use calibrate::{measure_primitives, PrimitiveCosts};
pub use figures::{
    sim_sweep, sim_sweep_report, workload_for, AppKind, MeasuredCost, SWEEP_THREADS,
};
