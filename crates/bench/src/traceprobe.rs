//! `--trace` support for the load-generating binaries (`soak`, `syncbench`).
//!
//! Where `--profile` ([`crate::profile`]) is about *reading* a run's trace,
//! `--trace` is about *stressing the trace pipeline itself*: it arms a
//! streaming session — bounded per-thread rings, the dedicated flusher, a
//! rotating part-file sink — underneath whatever load the binary generates,
//! and reports what the pipeline sustained: events drained per second,
//! events dropped by the overflow policy, and whether every rotated part was
//! a valid Chrome trace. Part files land in the temp directory and are
//! removed after inspection; the point is the throughput numbers, not the
//! trace contents.
//!
//! Note that the numbers the binary itself reports are then measured *with
//! tracing armed* — compare against an untraced run to see what event
//! recording costs that workload. Ring capacity and overflow policy follow
//! the environment (`OMP4RS_TRACE_RING`, `OMP4RS_TRACE_POLICY`).
//!
//! ```no_run
//! let mut args: Vec<String> = std::env::args().skip(1).collect();
//! let probe = omp4rs_bench::traceprobe::begin(&mut args, "soak");
//! // ... generate load ...
//! if let Some(report) = probe.finish() {
//!     eprintln!("{}", report.line());
//! }
//! ```

use omp4rs::ompt;

/// Handle returned by [`begin`]; call [`TraceProbe::finish`] after the run.
#[must_use = "call finish() after the run to report pipeline throughput"]
pub struct TraceProbe {
    /// `Some` while a probe session is live: the session guard, the
    /// wall-clock start, and the base trace path the parts rotate under.
    armed: Option<(ompt::Session, std::time::Instant, String)>,
}

/// What the pipeline sustained during the probed run.
#[derive(Debug)]
pub struct TraceReport {
    /// Wall-clock seconds the probe was armed.
    pub seconds: f64,
    /// Events drained out of the rings into the rotating sink.
    pub flushed: u64,
    /// Events dropped by the overflow policy (0 under `block`).
    pub dropped: u64,
    /// Rotated part files the run produced.
    pub parts: usize,
    /// Whether every part passed the Chrome-trace shape validator.
    pub parts_valid: bool,
}

impl TraceReport {
    /// Events per second drained through the pipeline.
    pub fn events_per_sec(&self) -> f64 {
        self.flushed as f64 / self.seconds.max(1e-12)
    }

    /// One human-readable summary line.
    pub fn line(&self) -> String {
        format!(
            "trace pipeline: {} events drained ({:.0}/s), {} dropped, {} part(s){}",
            self.flushed,
            self.events_per_sec(),
            self.dropped,
            self.parts,
            if self.parts_valid {
                ""
            } else {
                " [INVALID PART]"
            }
        )
    }

    /// The `"trace"` member for a binary's `--json` document.
    pub fn json(&self) -> String {
        format!(
            "{{\"seconds\":{:.3},\"flushed\":{},\"dropped\":{},\
             \"events_per_sec\":{:.0},\"parts\":{},\"parts_valid\":{}}}",
            self.seconds,
            self.flushed,
            self.dropped,
            self.events_per_sec(),
            self.parts,
            self.parts_valid
        )
    }
}

/// Strip `--trace` from `args`; if it was present, arm a streaming session
/// (rotating part files under the temp directory) for the rest of the run.
pub fn begin(args: &mut Vec<String>, label: &str) -> TraceProbe {
    let flagged = {
        let before = args.len();
        args.retain(|a| a != "--trace");
        args.len() != before
    };
    if !flagged {
        return TraceProbe { armed: None };
    }
    let base = std::env::temp_dir()
        .join(format!("trace_{label}_{}.json", std::process::id()))
        .display()
        .to_string();
    let session = ompt::session(ompt::ToolConfig {
        trace_path: Some(base.clone()),
        summary: false,
        rotate_kib: Some(256),
        ..Default::default()
    });
    TraceProbe {
        armed: Some((session, std::time::Instant::now(), base)),
    }
}

impl TraceProbe {
    /// Whether this run is being traced.
    pub fn active(&self) -> bool {
        self.armed.is_some()
    }

    /// Drain and close the session, inspect + delete the rotated parts, and
    /// return the throughput report. `None` when `--trace` was not given.
    pub fn finish(self) -> Option<TraceReport> {
        let (session, start, base) = self.armed?;
        let seconds = start.elapsed().as_secs_f64();
        let stats = ompt::ring_stats();
        let _ = ompt::finalize();
        drop(session);
        let mut parts = 0usize;
        let mut parts_valid = true;
        // Pruning means surviving part indices need not start at 0; scan the
        // whole index range rather than stopping at the first gap.
        let stem = base.strip_suffix(".json").unwrap_or(&base);
        for idx in 0..4096 {
            let path = format!("{stem}.{idx}.json");
            if let Ok(text) = std::fs::read_to_string(&path) {
                parts += 1;
                parts_valid &= ompt::validate_chrome_trace(&text).is_ok();
                let _ = std::fs::remove_file(&path);
            }
        }
        Some(TraceReport {
            seconds,
            flushed: stats.flushed,
            dropped: stats.dropped,
            parts,
            parts_valid,
        })
    }
}
