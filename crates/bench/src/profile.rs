//! `--profile` support for the figure binaries.
//!
//! Every binary in this crate accepts a `--profile` flag (equivalent to
//! setting `OMP_TOOL=summary,trace:trace_<label>.json`): the run executes
//! with the [`omp4rs::ompt`] profiler armed, and on exit writes a
//! Chrome-trace JSON file next to the figure output plus a per-region
//! summary on stderr. Load the trace in `chrome://tracing` / Perfetto to see
//! barriers, chunks, and tasks per team thread.
//!
//! ```text
//! figure5 --profile            # emits trace_figure5.json + summary
//! OMP_TOOL=trace:my.json main 0 pi 4   # same, via the environment
//! ```
//!
//! Usage from a binary's `main`:
//!
//! ```no_run
//! let mut args: Vec<String> = std::env::args().skip(1).collect();
//! let profile = omp4rs_bench::profile::begin(&mut args, "figure5");
//! // ... run the figure ...
//! profile.finish();
//! ```

/// Handle returned by [`begin`]; call [`Profile::finish`] after the run.
#[must_use = "call finish() after the run to emit the trace and summary"]
pub struct Profile {
    label: &'static str,
    /// Whether `begin` armed (or found armed) the profiler.
    active: bool,
}

/// Strip `--profile` from `args` and arm the profiler if it was present (or
/// if `OMP_TOOL` already enabled it). Also arms the interpreter-side GIL and
/// object-lock counters so Pure-mode runs show their contention.
pub fn begin(args: &mut Vec<String>, label: &'static str) -> Profile {
    let flagged = {
        let before = args.len();
        args.retain(|a| a != "--profile");
        args.len() != before
    };
    omp4rs::ompt::ensure_env_init();
    if flagged && !omp4rs::ompt::enabled() {
        omp4rs::ompt::enable(omp4rs::ompt::ToolConfig {
            trace_path: Some(format!("trace_{label}.json")),
            summary: true,
            ..Default::default()
        });
    }
    let active = omp4rs::ompt::enabled();
    if active {
        minipy::stats::set_enabled(true);
        minipy::stats::reset();
        omp4rs::ompt::reset();
    }
    Profile { label, active }
}

impl Profile {
    /// Whether this run is being profiled.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Publish interpreter counters, emit the configured outputs, and
    /// self-check the written trace. Does nothing on unprofiled runs.
    pub fn finish(self) {
        if !self.active {
            return;
        }
        let stats = minipy::stats::snapshot();
        omp4rs::ompt::set_counter("minipy.gil.acquisitions", stats.gil_acquisitions);
        omp4rs::ompt::set_counter("minipy.gil.hold_ns", stats.gil_hold_ns);
        omp4rs::ompt::set_counter("minipy.obj_lock.acquisitions", stats.obj_lock_acquisitions);
        omp4rs::ompt::set_counter("minipy.obj_lock.contended", stats.obj_lock_contended);
        omp4rs::ompt::set_counter("minipy.vm.compiles", stats.vm_compiles);
        omp4rs::ompt::set_counter("minipy.vm.compile_ns", stats.vm_compile_ns);
        omp4rs::ompt::set_counter("minipy.vm.fallbacks", stats.vm_fallbacks);
        omp4rs::ompt::set_counter("minipy.vm.frames", stats.vm_frames);
        omp4rs::ompt::set_counter("minipy.vm.ops", stats.vm_ops);
        omp4rs::ompt::set_counter("minipy.vm.quicken.rewrites", stats.quicken_rewrites);
        omp4rs::ompt::set_counter("minipy.vm.quicken.deopts", stats.quicken_deopts);
        omp4rs::ompt::set_counter("minipy.vm.ic.hits", stats.ic_hits);
        omp4rs::ompt::set_counter("minipy.vm.ic.misses", stats.ic_misses);
        match omp4rs::ompt::finalize() {
            Ok(Some(path)) => {
                match std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| omp4rs::ompt::validate_chrome_trace(&text))
                {
                    Ok(ts) => eprintln!(
                        "[{}] wrote {path}: {} trace events, {} counters",
                        self.label, ts.events, ts.counters
                    ),
                    Err(e) => eprintln!(
                        "[{}] wrote {path}, but it failed validation: {e}",
                        self.label
                    ),
                }
            }
            Ok(None) => {}
            Err(e) => eprintln!("[{}] could not write trace: {e}", self.label),
        }
    }
}
