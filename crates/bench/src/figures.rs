//! Per-benchmark measured costs and simulator workload shapes.
//!
//! Every figure follows the same recipe:
//!
//! 1. **Measure** each mode's single-thread time on this host with a
//!    mode-appropriate problem size, yielding a per-work-unit cost. These
//!    measurements carry the paper's headline mode gaps (CompiledDT vs Pure
//!    of two–three orders of magnitude) and are reported directly.
//! 2. **Simulate** the thread sweep (1–32 threads on a virtual 32-core
//!    machine) by replaying the benchmark's OpenMP phase structure in
//!    `simcore` with the measured per-unit cost and the host-calibrated
//!    primitive costs.
//!
//! The only non-measured parameter is each mode's *serialized fraction* —
//! the share of interpreted work that contends on shared objects (refcounts
//! and per-object locks, the mechanism the paper blames for CPython
//! 3.14b1's limited scaling). The coefficients are documented in
//! EXPERIMENTS.md; they set the Pure/Hybrid scaling ceilings and are the
//! same for all benchmarks of a figure.

use omp4rs::sync::Backend;
use omp4rs::ScheduleKind;
use omp4rs_apps::{
    bfs, clustering, fft, jacobi, lu, md, pagerank, pi, qsort, sparselu, wavefront, wordcount, Mode,
};
use simcore::{
    simulate_report, ClaimCost, CostModel, Machine, Phase, SimReport, SimSchedule, TaskShape,
    Workload,
};

use crate::calibrate::PrimitiveCosts;

/// Thread counts swept by the paper's figures.
pub const SWEEP_THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The benchmarks of Figs. 5–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    Fft,
    Jacobi,
    Lu,
    Md,
    Pi,
    Qsort,
    Bfs,
    Clustering,
    Wordcount,
    Wavefront,
    SparseLu,
    Pagerank,
}

impl AppKind {
    /// The seven numerical applications of Fig. 5 (artifact test names).
    pub fn figure5() -> [AppKind; 7] {
        [
            AppKind::Fft,
            AppKind::Jacobi,
            AppKind::Lu,
            AppKind::Md,
            AppKind::Pi,
            AppKind::Qsort,
            AppKind::Bfs,
        ]
    }

    /// The non-numerical applications of Fig. 6/7.
    pub fn figure6() -> [AppKind; 2] {
        [AppKind::Clustering, AppKind::Wordcount]
    }

    /// The task-dependence suite (`BENCH_tasks.json` / `figure_tasks`):
    /// applications a loop-parallel runtime cannot run — every one needs
    /// `depend(in/out/inout)` (and `priority`) to order its task DAG.
    pub fn tasks_suite() -> [AppKind; 3] {
        [AppKind::Wavefront, AppKind::SparseLu, AppKind::Pagerank]
    }

    /// Artifact test name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Fft => "fft",
            AppKind::Jacobi => "jacobi",
            AppKind::Lu => "lud",
            AppKind::Md => "md",
            AppKind::Pi => "pi",
            AppKind::Qsort => "qsort",
            AppKind::Bfs => "maze",
            AppKind::Clustering => "graphic",
            AppKind::Wordcount => "wordcount",
            AppKind::Wavefront => "wavefront",
            AppKind::SparseLu => "sparselu",
            AppKind::Pagerank => "pagerank",
        }
    }

    /// Parse an artifact test name.
    pub fn parse(text: &str) -> Option<AppKind> {
        Some(match text {
            "fft" => AppKind::Fft,
            "jacobi" => AppKind::Jacobi,
            "lu" | "lud" => AppKind::Lu,
            "md" => AppKind::Md,
            "pi" => AppKind::Pi,
            "qsort" => AppKind::Qsort,
            "bfs" | "maze" => AppKind::Bfs,
            "clustering" | "graphic" => AppKind::Clustering,
            "wordcount" => AppKind::Wordcount,
            "wavefront" => AppKind::Wavefront,
            "sparselu" | "lu_tasks" => AppKind::SparseLu,
            "pagerank" => AppKind::Pagerank,
            _ => return None,
        })
    }

    /// Whether the PyOMP baseline can run this benchmark (paper §IV).
    pub fn pyomp_supported(self) -> bool {
        matches!(
            self,
            AppKind::Fft | AppKind::Jacobi | AppKind::Lu | AppKind::Md | AppKind::Pi
        )
    }
}

/// A measured single-thread cost: total seconds over `units` work units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredCost {
    /// Wall-clock seconds at one thread.
    pub seconds: f64,
    /// Number of work units the run performed.
    pub units: u64,
}

impl MeasuredCost {
    /// Seconds per work unit.
    pub fn per_unit(&self) -> f64 {
        self.seconds / self.units.max(1) as f64
    }
}

/// Size multiplier applied to interpreted modes so measurement stays fast;
/// the harness reports *per-unit* costs, which are size-independent.
pub fn mode_scale(mode: Mode) -> f64 {
    match mode {
        Mode::Pure | Mode::Hybrid => 0.02,
        Mode::Compiled => 0.3,
        Mode::CompiledDT | Mode::PyOmp => 1.0,
    }
}

/// Run one benchmark at one thread with mode-scaled sizes and return the
/// measured cost (`None` when the mode cannot run the benchmark).
///
/// Runs twice and keeps the faster run (first-run warm-up effects on a
/// shared host would otherwise invert close mode pairs).
///
/// `scale` scales all problem sizes (1.0 = harness defaults).
pub fn measure(app: AppKind, mode: Mode, scale: f64) -> Option<MeasuredCost> {
    let first = measure_once(app, mode, scale)?;
    let second = measure_once(app, mode, scale)?;
    Some(if second.seconds < first.seconds {
        second
    } else {
        first
    })
}

fn measure_once(app: AppKind, mode: Mode, scale: f64) -> Option<MeasuredCost> {
    let s = scale * mode_scale(mode);
    let f = |v: f64| -> usize { (v * s).max(4.0) as usize };
    match app {
        AppKind::Pi => {
            let p = pi::Params {
                n: f(2_000_000.0) as i64,
            };
            let out = pi::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: p.n as u64,
            })
        }
        AppKind::Fft => {
            // Keep power-of-two lengths; scale the exponent.
            let log2_n = ((12.0 + s.log2()).round().clamp(6.0, 20.0)) as u32;
            let p = fft::Params {
                log2_n,
                ..fft::Params::default()
            };
            let out = fft::run(mode, 1, &p).ok()?;
            let n = p.n() as u64;
            let units = (n / 2) * n.trailing_zeros() as u64; // butterflies
            Some(MeasuredCost {
                seconds: out.seconds,
                units,
            })
        }
        AppKind::Jacobi => {
            let n = f(120.0);
            let p = jacobi::Params {
                n,
                max_iters: 60,
                tol: 0.0,
                ..jacobi::Params::default()
            };
            let out = jacobi::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: (p.max_iters * n) as u64,
            })
        }
        AppKind::Lu => {
            let n = f(96.0);
            let p = lu::Params {
                n,
                ..lu::Params::default()
            };
            let out = lu::run(mode, 1, &p).ok()?;
            // Row updates: sum over k of (n-k-1).
            let units: u64 = (0..n as u64).map(|k| n as u64 - k - 1).sum();
            Some(MeasuredCost {
                seconds: out.seconds,
                units: units.max(1),
            })
        }
        AppKind::Md => {
            let n = f(160.0);
            let p = md::Params {
                n,
                steps: 2,
                ..md::Params::default()
            };
            let out = md::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: ((p.steps + 1) * n) as u64,
            })
        }
        AppKind::Qsort => {
            let n = f(120_000.0);
            let p = qsort::Params {
                n,
                cutoff: (n / 64).max(16),
                ..qsort::Params::default()
            };
            let out = qsort::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: n as u64,
            })
        }
        AppKind::Bfs => {
            let side = f(61.0) | 1; // odd side keeps mazes interesting
            let p = bfs::Params {
                side,
                ..bfs::Params::default()
            };
            let out = bfs::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: (side * side) as u64,
            })
        }
        AppKind::Clustering => {
            let p = clustering::Params {
                nodes: f(2_000.0),
                ..clustering::Params::default()
            };
            let out = clustering::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: p.nodes as u64,
            })
        }
        AppKind::Wordcount => {
            let p = wordcount::Params {
                lines: f(4_000.0),
                ..wordcount::Params::default()
            };
            let out = wordcount::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: p.lines as u64,
            })
        }
        AppKind::Wavefront => {
            let p = wavefront::Params {
                n: f(6.0).max(2) * 16,
                block: 16,
                ..wavefront::Params::default()
            };
            let out = wavefront::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: (p.n * p.n) as u64, // cells
            })
        }
        AppKind::SparseLu => {
            let p = sparselu::Params {
                nb: f(6.0).max(2),
                ..sparselu::Params::default()
            };
            let out = sparselu::run(mode, 1, &p).ok()?;
            let n = p.n() as u64;
            Some(MeasuredCost {
                seconds: out.seconds,
                units: (n * n * n / 3).max(1), // ~flops of dense LU
            })
        }
        AppKind::Pagerank => {
            let p = pagerank::Params {
                nodes: f(600.0),
                ..pagerank::Params::default()
            };
            let out = pagerank::run(mode, 1, &p).ok()?;
            Some(MeasuredCost {
                seconds: out.seconds,
                // ~edge traversals (each undirected edge is read twice per
                // iteration, once from each endpoint).
                units: (p.iters * p.nodes * p.degree * 2).max(1) as u64,
            })
        }
    }
}

/// Serialized fraction of interpreted work (shared refcount/lock traffic).
/// These coefficients — not measured on this host — set the Pure/Hybrid
/// scaling ceilings; see EXPERIMENTS.md ("Simulation parameters").
pub fn serialized_fraction(app: AppKind, mode: Mode) -> f64 {
    let base: f64 = match mode {
        Mode::Pure => 0.30,
        Mode::Hybrid => 0.26,
        Mode::Compiled => 0.085,
        Mode::CompiledDT => 0.065,
        Mode::PyOmp => 0.07,
    };
    match app {
        // Library-bound: the graph work is native in every mode, but each
        // call crosses the object boundary (argument boxing, result
        // refcounts), which serializes alike in all modes — the paper sees
        // ~5x at 32 threads for every mode.
        AppKind::Clustering => 0.15,
        // Every bfs task relaxes neighbor cells with CAS traffic on the
        // shared distance array — several cache-line transfers per (tiny)
        // task in every mode.
        AppKind::Bfs => base.max(0.10),
        // Dict/str work keeps contending even when compiled.
        AppKind::Wordcount => match mode {
            Mode::Pure => 0.22,
            Mode::Hybrid => 0.19,
            _ => 0.10,
        },
        _ => base,
    }
}

fn shared_ops(app: AppKind, mode: Mode, per_unit: f64, model: &CostModel) -> f64 {
    serialized_fraction(app, mode) * per_unit / model.shared_op
}

fn backend(mode: Mode) -> Backend {
    match mode {
        Mode::Pure => Backend::Mutex,
        _ => Backend::Atomic,
    }
}

fn to_sim_schedule(
    kind: ScheduleKind,
    chunk: Option<u64>,
    units: u64,
    threads: usize,
) -> SimSchedule {
    match kind {
        ScheduleKind::Static | ScheduleKind::Auto | ScheduleKind::Runtime => match chunk {
            Some(c) => SimSchedule::StaticChunk(c),
            None => SimSchedule::StaticBlock,
        },
        ScheduleKind::Dynamic => SimSchedule::Dynamic(chunk.unwrap_or(1)),
        ScheduleKind::Guided => SimSchedule::Guided(chunk.unwrap_or(1)),
    }
    .clamp_chunk(units, threads)
}

trait ClampChunk {
    fn clamp_chunk(self, units: u64, threads: usize) -> Self;
}
impl ClampChunk for SimSchedule {
    fn clamp_chunk(self, _units: u64, _threads: usize) -> Self {
        self
    }
}

/// Build the simulator workload for a benchmark in a mode.
///
/// `per_unit` is the measured single-thread cost per work unit; `prims`
/// are the host-calibrated primitive costs. `schedule` overrides the loop
/// schedule (Fig. 7); `None` uses each benchmark's paper configuration.
pub fn workload_for(
    app: AppKind,
    mode: Mode,
    per_unit: f64,
    prims: &PrimitiveCosts,
    model: &CostModel,
    threads: usize,
    schedule: Option<(ScheduleKind, Option<u64>)>,
) -> Workload {
    let claim_for = |sched: &SimSchedule| -> ClaimCost {
        match sched {
            SimSchedule::Dynamic(_) => prims.claim(backend(mode)),
            // Guided claims run a read + CAS (or a longer critical section
            // under the mutex backend): roughly twice a fetch_add.
            SimSchedule::Guided(_) => {
                let base = prims.claim(backend(mode));
                ClaimCost {
                    seconds: base.seconds * 2.0,
                    serializes: true,
                }
            }
            _ => ClaimCost::local(),
        }
    };
    let ops = |units_cost: f64| shared_ops(app, mode, units_cost, model);

    let mut w = Workload::new();
    match app {
        AppKind::Pi => {
            // Paper size: 20 billion intervals (static claims keep the event
            // count at O(threads), so the full size is simulable).
            let iters = 20_000_000_000u64;
            let sched = schedule
                .map(|(k, c)| to_sim_schedule(k, c, iters, threads))
                .unwrap_or(SimSchedule::StaticBlock);
            w = w
                .phase(Phase::ParallelFor {
                    iters,
                    cost_per_iter: per_unit,
                    shared_ops_per_iter: ops(per_unit),
                    claim: claim_for(&sched),
                    schedule: sched,
                    nowait: false,
                    imbalance: 0.0,
                })
                .phase(Phase::CriticalUpdates {
                    per_thread: 1,
                    cost: prims.mutex_claim.max(1e-7),
                });
        }
        AppKind::Fft => {
            // Paper size: 16M complex elements.
            let log2_n = 24u64;
            let n = 1u64 << log2_n;
            for _stage in 0..log2_n {
                let sched = schedule
                    .map(|(k, c)| to_sim_schedule(k, c, n / 2, threads))
                    .unwrap_or(SimSchedule::StaticBlock);
                w = w.phase(Phase::ParallelFor {
                    iters: n / 2,
                    cost_per_iter: per_unit,
                    shared_ops_per_iter: ops(per_unit),
                    claim: claim_for(&sched),
                    schedule: sched,
                    nowait: false,
                    imbalance: 0.0,
                });
            }
        }
        AppKind::Jacobi => {
            // Paper size: 3k×3k rows, up to 1000 iterations (50 simulated —
            // the per-iteration structure is what sets the scaling shape).
            let n = 3_000u64;
            let iterations = 50;
            for _ in 0..iterations {
                let sched = schedule
                    .map(|(k, c)| to_sim_schedule(k, c, n, threads))
                    .unwrap_or(SimSchedule::StaticBlock);
                w = w
                    .phase(Phase::ParallelFor {
                        iters: n,
                        cost_per_iter: per_unit,
                        shared_ops_per_iter: ops(per_unit),
                        claim: claim_for(&sched),
                        schedule: sched,
                        nowait: false,
                        imbalance: 0.0,
                    })
                    // The `single` copy-back, then the explicit barrier.
                    .phase(Phase::Serial {
                        cost: n as f64 * per_unit * 0.02,
                    })
                    .phase(Phase::Barrier);
            }
        }
        AppKind::Lu => {
            // Paper size: 2k×2k.
            let n = 2_000u64;
            // Per-step trailing-row updates: row i costs (n-k) units' worth.
            for k in 0..n {
                let rows = n - k - 1;
                if rows == 0 {
                    break;
                }
                let sched = schedule
                    .map(|(kk, c)| to_sim_schedule(kk, c, rows, threads))
                    .unwrap_or(SimSchedule::StaticBlock);
                w = w.phase(Phase::ParallelFor {
                    iters: rows,
                    cost_per_iter: per_unit * (rows as f64 / n as f64),
                    shared_ops_per_iter: ops(per_unit),
                    claim: claim_for(&sched),
                    schedule: sched,
                    nowait: false,
                    imbalance: 0.0,
                });
            }
        }
        AppKind::Md => {
            // Paper size: 8000 particles.
            let n = 8_000u64;
            for _step in 0..3 {
                let sched = schedule
                    .map(|(k, c)| to_sim_schedule(k, c, n, threads))
                    .unwrap_or(SimSchedule::StaticBlock);
                // Force phase (dominant) + two light integration loops.
                w = w
                    .phase(Phase::ParallelFor {
                        iters: n,
                        cost_per_iter: per_unit,
                        shared_ops_per_iter: ops(per_unit),
                        claim: claim_for(&sched),
                        schedule: sched,
                        nowait: false,
                        imbalance: 0.0,
                    })
                    .phase(Phase::ParallelFor {
                        iters: n,
                        cost_per_iter: per_unit * 0.01,
                        shared_ops_per_iter: ops(per_unit * 0.01),
                        claim: ClaimCost::local(),
                        schedule: SimSchedule::StaticBlock,
                        nowait: false,
                        imbalance: 0.0,
                    });
            }
        }
        AppKind::Qsort => {
            // Paper size: 400M floats; tasks per the artifact cutoff.
            let n = 400_000_000u64;
            let cutoff = n / 256;
            let count = 2 * (n / cutoff);
            w = w.phase(Phase::Tasks {
                count,
                cost_per_task: cutoff as f64 * per_unit,
                shared_ops_per_task: ops(per_unit) * cutoff as f64,
                spawn_cost: prims.task_round.max(1e-7),
                shape: TaskShape::BinaryRecursive,
            });
        }
        AppKind::Bfs => {
            // One task per expanded cell (the paper: each feasible move
            // spawns a task); the wavefront unfolds like a recursive tree.
            // Simulated at 64k cells (one event per task keeps the paper's
            // 2.1k² grid out of reach of a per-task DES; the scaling shape
            // is task-grain-bound, not count-bound).
            let cells = 65_536u64;
            w = w.phase(Phase::Tasks {
                count: cells,
                // Each expansion performs a fixed number of CAS relaxations
                // on the shared distance array regardless of mode.
                cost_per_task: per_unit,
                shared_ops_per_task: ops(per_unit).max(4.0),
                spawn_cost: prims.task_round.max(1e-7),
                shape: TaskShape::BinaryRecursive,
            });
        }
        AppKind::Clustering => {
            // Paper size: 300k nodes.
            let nodes = 300_000u64;
            let (kind, chunk) = schedule.unwrap_or((ScheduleKind::Dynamic, Some(300)));
            let sched = to_sim_schedule(kind, chunk, nodes, threads);
            w = w.phase(Phase::ParallelFor {
                iters: nodes,
                cost_per_iter: per_unit,
                shared_ops_per_iter: ops(per_unit),
                claim: claim_for(&sched),
                schedule: sched,
                nowait: false,
                // Node degrees vary: mild positional imbalance.
                imbalance: 0.4,
            });
        }
        AppKind::Wordcount => {
            // The paper's 21 GB corpus at ~2 KB/line ≈ 10M lines; 1M keeps
            // dynamic-claim event counts tractable with identical shape.
            let lines = 1_000_000u64;
            let (kind, chunk) = schedule.unwrap_or((ScheduleKind::Dynamic, Some(300)));
            let sched = to_sim_schedule(kind, chunk, lines, threads);
            w = w
                .phase(Phase::ParallelFor {
                    iters: lines,
                    cost_per_iter: per_unit,
                    shared_ops_per_iter: ops(per_unit),
                    claim: claim_for(&sched),
                    schedule: sched,
                    nowait: false,
                    // Line lengths vary strongly (the Fig. 7 lever).
                    imbalance: 1.0,
                })
                // Per-thread dict merge under critical.
                .phase(Phase::CriticalUpdates {
                    per_thread: 1,
                    cost: per_unit * 50.0,
                });
        }
        AppKind::Wavefront => {
            // Paper-style size: 2k×2k cells in 64×64 blocks. One dependence
            // task per block, submitted from a single. The DES has no
            // dependence edges, so SingleProducer + the block grain bounds
            // the achievable overlap the same way the anti-diagonal
            // wavefront does on average (width ≈ nb/2 of nb² tasks).
            let n = 2_048u64;
            let bs = 64u64;
            let nb = n / bs;
            w = w.phase(Phase::Tasks {
                count: nb * nb,
                cost_per_task: per_unit * (bs * bs) as f64,
                shared_ops_per_task: ops(per_unit) * (bs * bs) as f64,
                spawn_cost: prims.task_round.max(1e-7),
                shape: TaskShape::SingleProducer,
            });
        }
        AppKind::SparseLu => {
            // Paper-style size: 2k×2k in 32×32 blocks of 64. Kernel count
            // per step k: 1 + 2(nb−k−1) + (nb−k−1)²; total ≈ nb³/3.
            let nb = 32u64;
            let bs = 64u64;
            let kernels: u64 = (0..nb)
                .map(|k| 1 + 2 * (nb - k - 1) + (nb - k - 1).pow(2))
                .sum();
            w = w.phase(Phase::Tasks {
                count: kernels,
                cost_per_task: per_unit * (bs * bs * bs) as f64 / 3.0,
                shared_ops_per_task: ops(per_unit) * (bs * bs) as f64,
                spawn_cost: prims.task_round.max(1e-7),
                shape: TaskShape::SingleProducer,
            });
        }
        AppKind::Pagerank => {
            // Paper-style size: 300k nodes, degree 4, 20 iterations, 4
            // chunks per iteration (the pipeline's task grain).
            let (nodes, degree, iters, chunks) = (300_000u64, 4u64, 20u64, 4u64);
            let traversals = nodes * degree * 2 * iters;
            w = w.phase(Phase::Tasks {
                count: iters * chunks,
                cost_per_task: per_unit * (traversals / (iters * chunks)) as f64,
                shared_ops_per_task: ops(per_unit) * (traversals / (iters * chunks)) as f64,
                spawn_cost: prims.task_round.max(1e-7),
                shape: TaskShape::SingleProducer,
            });
        }
    }
    w
}

/// Simulate the thread sweep for a benchmark/mode; returns
/// `(threads, seconds)` pairs.
pub fn sim_sweep(
    app: AppKind,
    mode: Mode,
    per_unit: f64,
    prims: &PrimitiveCosts,
    gil: bool,
    schedule: Option<(ScheduleKind, Option<u64>)>,
) -> Vec<(usize, f64)> {
    sim_sweep_report(app, mode, per_unit, prims, gil, schedule)
        .into_iter()
        .map(|(threads, report)| (threads, report.seconds))
        .collect()
}

/// Like [`sim_sweep`], but returns the simulator's full [`SimReport`] per
/// thread count, including the barrier-wait accounting that mirrors the
/// runtime profiler's `BarrierWait` aggregation. Used by `figure5 --profile`
/// to compare measured barrier behaviour against the model.
pub fn sim_sweep_report(
    app: AppKind,
    mode: Mode,
    per_unit: f64,
    prims: &PrimitiveCosts,
    gil: bool,
    schedule: Option<(ScheduleKind, Option<u64>)>,
) -> Vec<(usize, SimReport)> {
    let model = CostModel {
        gil,
        ..CostModel::default()
    };
    SWEEP_THREADS
        .iter()
        .map(|&threads| {
            let w = workload_for(app, mode, per_unit, prims, &model, threads, schedule);
            let mut machine = Machine::new(32);
            (threads, simulate_report(&mut machine, &model, &w, threads))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prims() -> PrimitiveCosts {
        PrimitiveCosts {
            mutex_claim: 3e-8,
            atomic_claim: 8e-9,
            barrier: 2e-6,
            task_round: 4e-7,
        }
    }

    #[test]
    fn app_names_round_trip() {
        for app in AppKind::figure5()
            .into_iter()
            .chain(AppKind::figure6())
            .chain(AppKind::tasks_suite())
        {
            assert_eq!(AppKind::parse(app.name()), Some(app), "{app:?}");
        }
        assert_eq!(AppKind::parse("bogus"), None);
    }

    #[test]
    fn tasks_suite_is_outside_pyomp_envelope() {
        for app in AppKind::tasks_suite() {
            assert!(!app.pyomp_supported(), "{app:?} needs depend");
        }
    }

    #[test]
    fn pyomp_envelope_matches_paper() {
        assert!(AppKind::Pi.pyomp_supported());
        assert!(!AppKind::Qsort.pyomp_supported());
        assert!(!AppKind::Bfs.pyomp_supported());
        assert!(!AppKind::Clustering.pyomp_supported());
        assert!(!AppKind::Wordcount.pyomp_supported());
    }

    #[test]
    fn compileddt_sweeps_scale_well() {
        // Fig. 5's CompiledDT curves: good scaling to 32 threads.
        for app in [AppKind::Pi, AppKind::Md] {
            let sweep = sim_sweep(app, Mode::CompiledDT, 2e-7, &prims(), false, None);
            let t1 = sweep[0].1;
            let t32 = sweep.last().unwrap().1;
            let speedup = t1 / t32;
            assert!(speedup > 8.0, "{app:?}: CompiledDT speedup@32 = {speedup}");
        }
    }

    #[test]
    fn pure_sweeps_hit_a_ceiling() {
        // Fig. 5's Pure curves: limited scaling (paper max 3.6×).
        let sweep = sim_sweep(AppKind::Pi, Mode::Pure, 2e-5, &prims(), false, None);
        let t1 = sweep[0].1;
        let best = sweep.iter().map(|&(_, t)| t1 / t).fold(0.0, f64::max);
        assert!(best < 6.0, "Pure speedup should be capped, got {best}");
        assert!(best > 1.5, "Pure should still gain something, got {best}");
    }

    #[test]
    fn gil_sweeps_are_flat() {
        let sweep = sim_sweep(AppKind::Pi, Mode::Pure, 2e-5, &prims(), true, None);
        let t1 = sweep[0].1;
        let t8 = sweep.iter().find(|&&(t, _)| t == 8).unwrap().1;
        assert!(t8 > t1 * 0.9, "GIL: no speedup expected ({t1} → {t8})");
    }

    #[test]
    fn dynamic_beats_static_for_wordcount() {
        // Fig. 7's headline: wordcount's imbalance favors dynamic. The
        // margin shows mid-sweep (at 32 threads both schedules converge on
        // the shared-traffic ceiling, as in the paper's flattening curves),
        // so compare at 8 threads.
        let p = prims();
        let at_8 = |kind, chunk| -> f64 {
            sim_sweep(
                AppKind::Wordcount,
                Mode::CompiledDT,
                5e-7,
                &p,
                false,
                Some((kind, chunk)),
            )
            .iter()
            .find(|&&(t, _)| t == 8)
            .expect("8 is in the sweep")
            .1
        };
        let static_t = at_8(ScheduleKind::Static, None);
        let dynamic_t = at_8(ScheduleKind::Dynamic, Some(300));
        assert!(
            dynamic_t < static_t,
            "dynamic ({dynamic_t}) should beat static ({static_t}) at 8 threads"
        );
    }

    #[test]
    fn measured_costs_order_modes() {
        // The headline mode ordering, measured for real on this host:
        // interpreted ≫ boxed-compiled ≫ native. The interpreter gap bound
        // accommodates the VM's quickened tier (fused range loops bring the
        // interpreted π kernel within ~10-15× of native rather than the
        // tree-walker-era 100×+); it must still be clearly interpreted.
        let pure = measure(AppKind::Pi, Mode::Pure, 0.2).unwrap().per_unit();
        let compiled = measure(AppKind::Pi, Mode::Compiled, 0.2)
            .unwrap()
            .per_unit();
        let native = measure(AppKind::Pi, Mode::CompiledDT, 0.2)
            .unwrap()
            .per_unit();
        assert!(
            pure > compiled && compiled > native,
            "per-unit costs must order: pure={pure:.2e} compiled={compiled:.2e} native={native:.2e}"
        );
        assert!(
            pure / native > 5.0,
            "interpreter gap should be large: {}",
            pure / native
        );
    }
}
