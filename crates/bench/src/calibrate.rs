//! Host calibration: measure the synchronization-primitive costs the
//! simulator replays.

use std::time::Instant;

use omp4rs::sync::{Backend, SharedCounter};
use omp4rs::Team;
use simcore::ClaimCost;

/// Measured primitive costs on this host (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimitiveCosts {
    /// One mutex-backend counter claim (lock + add + unlock).
    pub mutex_claim: f64,
    /// One atomic-backend counter claim (`fetch_add`).
    pub atomic_claim: f64,
    /// One team barrier (2 threads, uncontended).
    pub barrier: f64,
    /// One task submit + execute round trip.
    pub task_round: f64,
}

impl PrimitiveCosts {
    /// The claim cost for a backend.
    pub fn claim(&self, backend: Backend) -> ClaimCost {
        match backend {
            Backend::Mutex => ClaimCost {
                seconds: self.mutex_claim,
                serializes: true,
            },
            Backend::Atomic => ClaimCost {
                seconds: self.atomic_claim,
                serializes: true,
            },
        }
    }
}

fn time_per_op(reps: u64, f: impl FnMut(u64)) -> f64 {
    let mut f = f;
    let start = Instant::now();
    for i in 0..reps {
        f(i);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Measure the primitive costs (sub-second total).
pub fn measure_primitives() -> PrimitiveCosts {
    let reps = 200_000;
    let mutex_counter = SharedCounter::new(Backend::Mutex);
    let mutex_claim = time_per_op(reps, |_| {
        std::hint::black_box(mutex_counter.fetch_add(1));
    });
    let atomic_counter = SharedCounter::new(Backend::Atomic);
    let atomic_claim = time_per_op(reps, |_| {
        std::hint::black_box(atomic_counter.fetch_add(1));
    });

    // Barrier: a 1-thread team barrier measures the per-barrier bookkeeping
    // (multi-thread rendezvous latency is what the simulator's max-of-arrival
    // model already captures).
    let team = Team::new(1, Backend::Atomic);
    let barrier = time_per_op(20_000, |_| team.barrier());

    // Task round trip: submit + drain.
    let task_round = time_per_op(20_000, |_| {
        team.submit_task(Box::new(|| {}), true);
        while team.run_one_task() {}
    });

    PrimitiveCosts {
        mutex_claim,
        atomic_claim,
        barrier,
        task_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_sane_magnitudes() {
        let c = measure_primitives();
        assert!(c.mutex_claim > 0.0 && c.mutex_claim < 1e-5, "{c:?}");
        assert!(c.atomic_claim > 0.0 && c.atomic_claim < 1e-5, "{c:?}");
        assert!(c.barrier > 0.0 && c.barrier < 1e-4, "{c:?}");
        assert!(c.task_round > 0.0 && c.task_round < 1e-3, "{c:?}");
    }

    #[test]
    fn mutex_claim_costs_at_least_as_much_as_atomic() {
        // The design premise of the paper's cruntime.
        let c = measure_primitives();
        assert!(
            c.mutex_claim >= c.atomic_claim * 0.8,
            "mutex {} vs atomic {}",
            c.mutex_claim,
            c.atomic_claim
        );
    }

    #[test]
    fn claims_map_to_backends() {
        let c = PrimitiveCosts {
            mutex_claim: 1e-7,
            atomic_claim: 1e-8,
            barrier: 1e-6,
            task_round: 1e-6,
        };
        assert_eq!(c.claim(Backend::Mutex).seconds, 1e-7);
        assert_eq!(c.claim(Backend::Atomic).seconds, 1e-8);
        assert!(c.claim(Backend::Mutex).serializes);
    }
}
