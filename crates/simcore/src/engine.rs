//! Simulation primitives: virtual time, FCFS resources, the machine.

/// A serializing FCFS resource (a mutex, an atomic cache line, the GIL).
///
/// `acquire(arrive, service)` returns the completion time of a request that
/// arrives at `arrive` and occupies the resource for `service` virtual
/// seconds. Requests must be issued in nondecreasing arrival order — the
/// event loops in [`crate::workload`] guarantee this by always advancing
/// the earliest thread first.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    available_at: f64,
    busy_time: f64,
}

impl Resource {
    /// A fresh, idle resource.
    pub fn new() -> Resource {
        Resource::default()
    }

    /// Serve a request; returns its completion time.
    pub fn acquire(&mut self, arrive: f64, service: f64) -> f64 {
        let start = arrive.max(self.available_at);
        self.available_at = start + service;
        self.busy_time += service;
        self.available_at
    }

    /// Time the resource has spent busy (utilization diagnostics).
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Next time the resource is free.
    pub fn available_at(&self) -> f64 {
        self.available_at
    }
}

/// The virtual machine: a core count and the global serializing resources.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Number of physical cores. Threads beyond this count time-share:
    /// compute segments are stretched by `ceil(threads / cores)`.
    pub cores: usize,
    /// The simulated GIL (used only when a workload enables it).
    pub gil: Resource,
    /// Shared-object traffic (refcounts / per-object locks): the cache-line
    /// serialization that limits free-threaded interpreter scaling.
    pub shared_objects: Resource,
    /// The scheduling counter / task queue head.
    pub queue: Resource,
    /// The runtime's reduction/critical mutex.
    pub mutex: Resource,
}

impl Machine {
    /// A machine with `cores` cores and idle resources.
    pub fn new(cores: usize) -> Machine {
        Machine {
            cores: cores.max(1),
            gil: Resource::new(),
            shared_objects: Resource::new(),
            queue: Resource::new(),
            mutex: Resource::new(),
        }
    }

    /// Stretch factor for compute when `threads` exceed the core count
    /// (simple time-slicing model).
    pub fn oversubscription(&self, threads: usize) -> f64 {
        if threads <= self.cores {
            1.0
        } else {
            threads as f64 / self.cores as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(5.0, 2.0), 7.0);
        assert_eq!(r.busy_time(), 2.0);
    }

    #[test]
    fn contended_requests_queue_fcfs() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0.0, 3.0), 3.0);
        // Arrives while busy: waits.
        assert_eq!(r.acquire(1.0, 3.0), 6.0);
        // Arrives after idle period: no wait.
        assert_eq!(r.acquire(10.0, 1.0), 11.0);
        assert_eq!(r.busy_time(), 7.0);
    }

    #[test]
    fn oversubscription_factor() {
        let m = Machine::new(4);
        assert_eq!(m.oversubscription(1), 1.0);
        assert_eq!(m.oversubscription(4), 1.0);
        assert_eq!(m.oversubscription(8), 2.0);
    }
}
