//! Workload descriptions and the simulation loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::engine::Machine;

/// Per-claim cost of the shared scheduling counter, by backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimCost {
    /// Seconds per chunk claim (lock+unlock for the mutex backend, a
    /// fetch_add cache-line transfer for the atomic backend).
    pub seconds: f64,
    /// Whether claims serialize through the shared queue resource (true
    /// for dynamic/guided counters; static claims are thread-local).
    pub serializes: bool,
}

impl ClaimCost {
    /// A free local claim (static scheduling).
    pub fn local() -> ClaimCost {
        ClaimCost {
            seconds: 0.0,
            serializes: false,
        }
    }
}

/// Scheduling policy in the simulator (mirrors the runtime's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimSchedule {
    /// Contiguous block per thread.
    StaticBlock,
    /// Chunked round-robin.
    StaticChunk(u64),
    /// Shared-counter claims of fixed chunks.
    Dynamic(u64),
    /// Shared-counter claims of decaying chunks (min chunk given).
    Guided(u64),
}

/// Shape of a task phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskShape {
    /// One thread produces all tasks (the paper's bfs/wordcount-style
    /// single-producer pattern); the team consumes them.
    SingleProducer,
    /// Binary recursive decomposition (the paper's qsort/fibonacci): each
    /// task spawns two children until the pool is exhausted.
    BinaryRecursive,
}

/// One phase of a simulated program.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// A work-shared loop with an implicit end barrier (unless `nowait`).
    ParallelFor {
        /// Total loop iterations.
        iters: u64,
        /// Seconds of pure compute per iteration (measured at one thread).
        cost_per_iter: f64,
        /// Shared-object operations per iteration (refcount/cell-lock
        /// touches). Each costs [`CostModel::shared_op`] and serializes.
        shared_ops_per_iter: f64,
        /// Scheduling policy.
        schedule: SimSchedule,
        /// Chunk-claim cost.
        claim: ClaimCost,
        /// Skip the end barrier.
        nowait: bool,
        /// Load-imbalance intensity: each chunk's cost is scaled by
        /// `1 + imbalance · T` where `T` is a deterministic heavy-tailed
        /// draw keyed on the chunk's start iteration (Pareto-like,
        /// mean ≈ 1, capped). `0.0` = uniform. Models heavy-tailed work
        /// items — the Wikipedia-article length distribution behind the
        /// wordcount imbalance of Fig. 7 — which fixed (static) chunk
        /// assignments cannot balance but dynamic/guided claims can.
        imbalance: f64,
    },
    /// A region executed by one thread while others wait at the next
    /// barrier (`single` + barrier, or serial setup).
    Serial {
        /// Seconds of compute.
        cost: f64,
    },
    /// An explicit barrier.
    Barrier,
    /// A task-queue phase ending in a task-draining barrier.
    Tasks {
        /// Total number of tasks.
        count: u64,
        /// Seconds of compute per task.
        cost_per_task: f64,
        /// Shared-object operations per task.
        shared_ops_per_task: f64,
        /// Seconds to enqueue one task (by the producer).
        spawn_cost: f64,
        /// Producer/tree shape.
        shape: TaskShape,
    },
    /// Each thread performs `per_thread` critical-section updates of
    /// `cost` seconds each (reduction merges, shared dict updates).
    CriticalUpdates {
        /// Updates per thread.
        per_thread: u64,
        /// Seconds per update (serialized through the runtime mutex).
        cost: f64,
    },
}

/// Calibrated cost parameters (measured on the host by the bench harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Barrier cost in seconds (per barrier, once all threads arrived).
    pub barrier: f64,
    /// Seconds per shared-object operation when contended (a cache-line
    /// transfer; ~60–100 ns on commodity hardware).
    pub shared_op: f64,
    /// Whether a GIL serializes all compute (Pure/Hybrid on a GIL build).
    pub gil: bool,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            barrier: 2e-6,
            shared_op: 7e-8,
            gil: false,
        }
    }
}

/// A simulated program: phases executed by every thread of the team.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    /// The phases, in order.
    pub phases: Vec<Phase>,
}

impl Workload {
    /// Create an empty workload.
    pub fn new() -> Workload {
        Workload::default()
    }

    /// Append a phase (builder style).
    pub fn phase(mut self, p: Phase) -> Workload {
        self.phases.push(p);
        self
    }
}

/// Accounting collected by [`simulate_report`]: the virtual wall-clock of
/// the run plus the simulator's analog of the profiler's barrier metrics,
/// so measured `--profile` runs can be compared against the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimReport {
    /// Virtual wall-clock seconds of the parallel region.
    pub seconds: f64,
    /// Summed barrier wait across all threads and barriers: for each
    /// barrier, each thread contributes `release - arrival`.
    pub barrier_wait: f64,
    /// Total barrier arrivals (threads × barriers), matching the
    /// profiler's `barrier_arrivals` aggregate.
    pub barrier_arrivals: u64,
}

/// Min-heap entry: (next event time, thread id).
#[derive(Debug, PartialEq)]
struct Ev(f64, usize);

impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by thread id for determinism.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

/// Simulate a workload on `threads` threads and return the virtual
/// wall-clock seconds of the parallel region.
///
/// The machine is mutated (resource utilization accumulates) so a fresh
/// [`Machine`] should be used per run.
pub fn simulate(
    machine: &mut Machine,
    model: &CostModel,
    workload: &Workload,
    threads: usize,
) -> f64 {
    simulate_report(machine, model, workload, threads).seconds
}

/// Like [`simulate`], but also returns the simulator's barrier-wait
/// accounting (the analog of the runtime profiler's `BarrierWait` events)
/// so measured and simulated barrier behaviour can be compared directly.
pub fn simulate_report(
    machine: &mut Machine,
    model: &CostModel,
    workload: &Workload,
    threads: usize,
) -> SimReport {
    let threads = threads.max(1);
    let slow = machine.oversubscription(threads);
    let mut now = vec![0.0f64; threads];
    let mut report = SimReport::default();

    for phase in &workload.phases {
        match phase {
            Phase::Serial { cost } => {
                // Thread 0 computes; everyone barriers after.
                now[0] = charge_compute(machine, model, now[0], *cost * slow);
                barrier(&mut now, model, &mut report);
            }
            Phase::Barrier => barrier(&mut now, model, &mut report),
            Phase::CriticalUpdates { per_thread, cost } => {
                // Each thread's updates serialize through the mutex; drive
                // in global time order.
                let mut heap: BinaryHeap<Ev> = now
                    .iter()
                    .enumerate()
                    .map(|(t, &time)| Ev(time, t))
                    .collect();
                let mut remaining = vec![*per_thread; threads];
                while let Some(Ev(time, t)) = heap.pop() {
                    if remaining[t] == 0 {
                        now[t] = time;
                        continue;
                    }
                    remaining[t] -= 1;
                    let done = machine.mutex.acquire(time, *cost * slow);
                    heap.push(Ev(done, t));
                }
            }
            Phase::ParallelFor {
                iters,
                cost_per_iter,
                shared_ops_per_iter,
                schedule,
                claim,
                nowait,
                imbalance,
            } => {
                sim_loop(
                    machine,
                    model,
                    &mut now,
                    *iters,
                    *cost_per_iter * slow,
                    *shared_ops_per_iter,
                    *schedule,
                    *claim,
                    *imbalance,
                );
                if !nowait {
                    barrier(&mut now, model, &mut report);
                }
            }
            Phase::Tasks {
                count,
                cost_per_task,
                shared_ops_per_task,
                spawn_cost,
                shape,
            } => {
                sim_tasks(
                    machine,
                    model,
                    &mut now,
                    *count,
                    *cost_per_task * slow,
                    *shared_ops_per_task,
                    *spawn_cost,
                    *shape,
                );
                barrier(&mut now, model, &mut report);
            }
        }
    }
    report.seconds = now.iter().copied().fold(0.0, f64::max);
    report
}

/// Iterations are weighted in fixed segments of this many iterations, so a
/// chunk's cost is the integral of a chunking-independent weight field.
const WEIGHT_SEGMENT: u64 = 256;

/// Deterministic heavy-tailed weight of one segment (splitmix64 → Pareto-like
/// draw with tail exponent 1.25, capped at 400), keyed by segment index.
fn segment_weight(segment: u64, imbalance: f64) -> f64 {
    if imbalance == 0.0 {
        return 1.0;
    }
    // splitmix64
    let mut z = segment.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z as f64 / u64::MAX as f64).clamp(0.0, 0.999_999);
    // Heavy tail, like article/line length distributions (close to Zipf).
    let tail = ((1.0 / (1.0 - u)).powf(0.8) - 1.0).min(400.0);
    1.0 + imbalance * tail
}

/// Weighted iteration count of the chunk `[lo, lo + len)`.
fn weighted_iterations(lo: u64, len: u64, imbalance: f64) -> f64 {
    if imbalance == 0.0 {
        return len as f64;
    }
    let hi = lo + len;
    let mut total = 0.0;
    let mut pos = lo;
    while pos < hi {
        let seg = pos / WEIGHT_SEGMENT;
        let seg_end = ((seg + 1) * WEIGHT_SEGMENT).min(hi);
        total += (seg_end - pos) as f64 * segment_weight(seg, imbalance);
        pos = seg_end;
    }
    total
}

/// Charge compute time, serialized through the GIL when enabled.
fn charge_compute(machine: &mut Machine, model: &CostModel, start: f64, cost: f64) -> f64 {
    if model.gil {
        machine.gil.acquire(start, cost)
    } else {
        start + cost
    }
}

fn barrier(now: &mut [f64], model: &CostModel, report: &mut SimReport) {
    let release = now.iter().copied().fold(0.0, f64::max) + model.barrier;
    for t in now.iter_mut() {
        report.barrier_wait += release - *t;
        report.barrier_arrivals += 1;
        *t = release;
    }
}

/// Drive one work-shared loop, replaying the runtime's chunking logic.
#[allow(clippy::too_many_arguments)]
fn sim_loop(
    machine: &mut Machine,
    model: &CostModel,
    now: &mut [f64],
    iters: u64,
    cost_per_iter: f64,
    shared_ops_per_iter: f64,
    schedule: SimSchedule,
    claim: ClaimCost,
    imbalance: f64,
) {
    let threads = now.len();
    if iters == 0 {
        return;
    }
    let phase_start = now.iter().copied().fold(f64::INFINITY, f64::min);
    let mut total_shared = 0.0f64;
    // Per-thread chunk generators for static schedules.
    let mut heap: BinaryHeap<Ev> = now
        .iter()
        .enumerate()
        .map(|(t, &time)| Ev(time, t))
        .collect();
    let mut static_next: Vec<u64> = (0..threads as u64).collect();
    let mut static_block_done = vec![false; threads];
    let mut counter: u64 = 0; // dynamic/guided shared counter

    while let Some(Ev(time, t)) = heap.pop() {
        // Determine this thread's next chunk (start, length).
        let (chunk_lo, chunk_len): (u64, u64) = match schedule {
            SimSchedule::StaticBlock => {
                if static_block_done[t] {
                    (0, 0)
                } else {
                    static_block_done[t] = true;
                    let tt = t as u64;
                    let n = threads as u64;
                    let base = iters / n;
                    let lo = tt * base + tt.min(iters % n);
                    (lo, base + u64::from(tt < iters % n))
                }
            }
            SimSchedule::StaticChunk(c) => {
                let lo = static_next[t] * c;
                if lo >= iters {
                    (0, 0)
                } else {
                    static_next[t] += threads as u64;
                    (lo, c.min(iters - lo))
                }
            }
            SimSchedule::Dynamic(c) => {
                if counter >= iters {
                    (0, 0)
                } else {
                    let lo = counter;
                    let len = c.min(iters - counter);
                    counter += len;
                    (lo, len)
                }
            }
            SimSchedule::Guided(min_chunk) => {
                if counter >= iters {
                    (0, 0)
                } else {
                    let lo = counter;
                    let remaining = iters - counter;
                    let len = (remaining.div_ceil(2 * threads as u64))
                        .max(min_chunk)
                        .min(remaining);
                    counter += len;
                    (lo, len)
                }
            }
        };
        if chunk_len == 0 {
            now[t] = time;
            continue;
        }
        // Claim cost (serialized for shared counters).
        let after_claim = if claim.seconds > 0.0 {
            if claim.serializes {
                machine.queue.acquire(time, claim.seconds)
            } else {
                time + claim.seconds
            }
        } else {
            time
        };
        // Chunk compute: private part runs in parallel; shared-object
        // traffic adds latency per chunk *and* accumulates into the global
        // serialization floor applied below (a single FCFS resource would
        // falsely serialize on out-of-order arrivals since each event spans
        // a whole chunk). The imbalance model scales the chunk by a
        // heavy-tailed weight.
        // Integrate the (chunking-independent) per-segment weight field over
        // this chunk, so total work is conserved across schedules. Heavier
        // work items do proportionally more shared-object traffic.
        let weighted_len = weighted_iterations(chunk_lo, chunk_len, imbalance);
        let shared = weighted_len * shared_ops_per_iter * model.shared_op;
        total_shared += shared;
        let private = weighted_len * cost_per_iter;
        let done = charge_compute(machine, model, after_claim, private + shared);
        heap.push(Ev(done, t));
    }
    // Shared-object operations serialize (cache-line ownership migrates):
    // the phase cannot complete before the serialized traffic has drained.
    machine.shared_objects.acquire(phase_start, total_shared);
    let floor = phase_start + total_shared;
    if let Some(last) = now
        .iter_mut()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    {
        *last = last.max(floor);
    }
}

/// Drive a task phase.
#[allow(clippy::too_many_arguments)]
fn sim_tasks(
    machine: &mut Machine,
    model: &CostModel,
    now: &mut [f64],
    count: u64,
    cost_per_task: f64,
    shared_ops_per_task: f64,
    spawn_cost: f64,
    shape: TaskShape,
) {
    if count == 0 {
        return;
    }
    // Tasks become available at given times; consumers claim them through
    // the queue resource.
    let mut available: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    let mut ready_times: Vec<f64> = Vec::with_capacity(count as usize);

    match shape {
        TaskShape::SingleProducer => {
            // Thread 0 enqueues every task back-to-back.
            let mut t0 = now[0];
            for _ in 0..count {
                t0 += spawn_cost;
                ready_times.push(t0);
            }
            now[0] = t0;
        }
        TaskShape::BinaryRecursive => {
            // Root available immediately; each completed task releases two
            // children (handled below by re-seeding availability).
            ready_times.push(now[0] + spawn_cost);
        }
    }
    for (i, _) in ready_times.iter().enumerate() {
        available.push(std::cmp::Reverse(i as u64));
    }

    let phase_start = now.iter().copied().fold(f64::INFINITY, f64::min);
    let mut task_shared_total = 0.0f64;
    let mut spawned = ready_times.len() as u64;
    let mut completed = 0u64;
    let mut heap: BinaryHeap<Ev> = now
        .iter()
        .enumerate()
        .map(|(t, &time)| Ev(time, t))
        .collect();
    // Completion times of in-flight tasks: the wake-up horizon for idle
    // threads (new children become ready at a parent's completion).
    let mut inflight: Vec<f64> = Vec::new();

    while completed < count {
        let Ev(time, t) = heap.pop().expect("threads outlive tasks");
        // Find the earliest-ready available task this thread can claim.
        let claim = available.peek().map(|idx| ready_times[idx.0 as usize]);
        match claim {
            Some(ready) => {
                available.pop();
                let start = time.max(ready);
                // Claim and spawn costs are additive here rather than routed
                // through the FCFS queue resource: task events are not
                // processed in global arrival order (a whole task is
                // advanced per event), so a shared ratcheting resource would
                // spuriously serialize concurrent claims.
                let after_claim = start + spawn_cost.max(1e-9);
                let shared = shared_ops_per_task * model.shared_op;
                task_shared_total += shared;
                let mut done = charge_compute(machine, model, after_claim, cost_per_task + shared);
                completed += 1;
                // Recursive shape: completing a task spawns up to two more.
                if shape == TaskShape::BinaryRecursive {
                    for _ in 0..2 {
                        if spawned < count {
                            let spawn_done = done + spawn_cost;
                            ready_times.push(spawn_done);
                            available.push(std::cmp::Reverse(ready_times.len() as u64 - 1));
                            spawned += 1;
                            done = spawn_done;
                        }
                    }
                }
                inflight.push(done);
                heap.push(Ev(done, t));
            }
            None => {
                // No task ready yet: park until the next readiness or the
                // next in-flight completion (which may spawn children).
                inflight.retain(|&c| c > time);
                let next_ready = ready_times
                    .iter()
                    .chain(inflight.iter())
                    .copied()
                    .filter(|&r| r > time)
                    .fold(f64::INFINITY, f64::min);
                if next_ready.is_finite() {
                    heap.push(Ev(next_ready, t));
                } else {
                    // Nothing in flight and nothing ready: this thread is
                    // done with the phase.
                    now[t] = time;
                    if heap.is_empty() {
                        break;
                    }
                }
            }
        }
    }
    // Flush remaining heap entries into `now`.
    while let Some(Ev(time, t)) = heap.pop() {
        now[t] = now[t].max(time);
    }
    // Serialization floor for shared task-state traffic.
    machine
        .shared_objects
        .acquire(phase_start, task_shared_total);
    let floor = phase_start + task_shared_total;
    if let Some(last) = now
        .iter_mut()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    {
        *last = last.max(floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn for_phase(iters: u64, cost: f64, schedule: SimSchedule, claim: ClaimCost) -> Phase {
        Phase::ParallelFor {
            iters,
            cost_per_iter: cost,
            shared_ops_per_iter: 0.0,
            schedule,
            claim,
            nowait: false,
            imbalance: 0.0,
        }
    }

    fn run(phases: Vec<Phase>, threads: usize) -> f64 {
        let mut machine = Machine::new(32);
        let model = CostModel {
            barrier: 0.0,
            shared_op: 7e-8,
            gil: false,
        };
        simulate(&mut machine, &model, &Workload { phases }, threads)
    }

    #[test]
    fn embarrassingly_parallel_scales_linearly() {
        let phases = vec![for_phase(
            1_000,
            1e-5,
            SimSchedule::StaticBlock,
            ClaimCost::local(),
        )];
        let t1 = run(phases.clone(), 1);
        let t4 = run(phases.clone(), 4);
        let t16 = run(phases, 16);
        assert!(
            (t1 / t4 - 4.0).abs() < 0.2,
            "speedup {t1}/{t4} = {}",
            t1 / t4
        );
        assert!(t1 / t16 > 12.0, "speedup at 16 = {}", t1 / t16);
    }

    #[test]
    fn oversubscription_stops_scaling() {
        let phases = vec![for_phase(
            1_000,
            1e-5,
            SimSchedule::StaticBlock,
            ClaimCost::local(),
        )];
        let mut machine = Machine::new(4);
        let model = CostModel::default();
        let t4 = simulate(
            &mut machine,
            &model,
            &Workload {
                phases: phases.clone(),
            },
            4,
        );
        let mut machine = Machine::new(4);
        let t8 = simulate(&mut machine, &model, &Workload { phases }, 8);
        assert!(
            t8 >= t4 * 0.95,
            "8 threads on 4 cores must not beat 4 threads"
        );
    }

    #[test]
    fn gil_prevents_speedup() {
        let phases = vec![for_phase(
            1_000,
            1e-5,
            SimSchedule::StaticBlock,
            ClaimCost::local(),
        )];
        let mut machine = Machine::new(32);
        let model = CostModel {
            gil: true,
            ..CostModel::default()
        };
        let t1 = simulate(
            &mut machine,
            &model,
            &Workload {
                phases: phases.clone(),
            },
            1,
        );
        let mut machine = Machine::new(32);
        let t8 = simulate(&mut machine, &model, &Workload { phases }, 8);
        assert!(t8 >= t1 * 0.9, "GIL: t8={t8} must be ~>= t1={t1}");
    }

    #[test]
    fn shared_object_traffic_caps_scaling() {
        // 1 µs compute but 10 shared ops/iter at 70 ns: ~0.7 µs serialized
        // per iteration → max speedup ≈ 1.7/0.7 ≈ 2.4.
        let phases = vec![Phase::ParallelFor {
            iters: 10_000,
            cost_per_iter: 1e-6,
            shared_ops_per_iter: 10.0,
            schedule: SimSchedule::StaticBlock,
            claim: ClaimCost::local(),
            nowait: false,
            imbalance: 0.0,
        }];
        let t1 = run(phases.clone(), 1);
        let t16 = run(phases, 16);
        let speedup = t1 / t16;
        assert!(
            speedup < 4.0,
            "shared traffic must cap speedup, got {speedup}"
        );
        assert!(speedup > 1.2, "some speedup expected, got {speedup}");
    }

    #[test]
    fn mutex_claims_cost_more_than_atomic() {
        let mutex_claim = ClaimCost {
            seconds: 4e-7,
            serializes: true,
        };
        let atomic_claim = ClaimCost {
            seconds: 4e-8,
            serializes: true,
        };
        let mk = |claim| vec![for_phase(100_000, 1e-8, SimSchedule::Dynamic(1), claim)];
        let t_mutex = run(mk(mutex_claim), 8);
        let t_atomic = run(mk(atomic_claim), 8);
        assert!(
            t_mutex > t_atomic * 1.5,
            "mutex {t_mutex} should clearly exceed atomic {t_atomic}"
        );
    }

    #[test]
    fn dynamic_beats_static_under_imbalance() {
        // Imbalance is modeled by giving iterations different costs via two
        // loops — here we approximate: static block with a serial tail vs
        // dynamic spreading. Use guided/dynamic claim overhead small.
        // (Real imbalance modeling happens in the bench harness by splitting
        // phases; this test only checks the engine's schedules both cover
        // the space with sane times.)
        let t_static = run(
            vec![for_phase(
                10_000,
                1e-7,
                SimSchedule::StaticBlock,
                ClaimCost::local(),
            )],
            8,
        );
        let t_dyn = run(
            vec![for_phase(
                10_000,
                1e-7,
                SimSchedule::Dynamic(64),
                ClaimCost {
                    seconds: 5e-8,
                    serializes: true,
                },
            )],
            8,
        );
        let ratio = t_dyn / t_static;
        assert!(
            ratio < 1.5 && ratio > 0.5,
            "balanced loops should be comparable: {ratio}"
        );
    }

    #[test]
    fn serial_phase_ignores_thread_count() {
        let phases = vec![Phase::Serial { cost: 1e-3 }];
        let t1 = run(phases.clone(), 1);
        let t8 = run(phases, 8);
        assert!((t1 - t8).abs() < 1e-9);
    }

    #[test]
    fn critical_updates_serialize() {
        let phases = vec![Phase::CriticalUpdates {
            per_thread: 100,
            cost: 1e-6,
        }];
        let t1 = run(phases.clone(), 1);
        let t8 = run(phases, 8);
        // 8 threads × 100 updates all through one mutex ≈ 8× the work.
        assert!(t8 > t1 * 6.0, "t8={t8} t1={t1}");
    }

    #[test]
    fn single_producer_tasks_bounded_by_producer() {
        let phases = vec![Phase::Tasks {
            count: 1_000,
            cost_per_task: 1e-7,
            shared_ops_per_task: 0.0,
            spawn_cost: 1e-6, // producer slower than consumers
            shape: TaskShape::SingleProducer,
        }];
        let t8 = run(phases, 8);
        // Lower bound: producer must enqueue 1000 tasks at 1 µs each.
        assert!(t8 >= 1e-3 * 0.9, "t8={t8}");
    }

    #[test]
    fn recursive_tasks_scale() {
        let phases = vec![Phase::Tasks {
            count: 4_000,
            cost_per_task: 1e-6,
            shared_ops_per_task: 0.0,
            spawn_cost: 1e-8,
            shape: TaskShape::BinaryRecursive,
        }];
        let t1 = run(phases.clone(), 1);
        let t8 = run(phases, 8);
        assert!(t1 / t8 > 3.0, "recursive tasks should scale: {}", t1 / t8);
    }

    #[test]
    fn dynamic_beats_static_under_heavy_tail_imbalance() {
        let mk = |schedule, claim| {
            vec![Phase::ParallelFor {
                iters: 10_000,
                cost_per_iter: 1e-7,
                shared_ops_per_iter: 0.0,
                schedule,
                claim,
                nowait: false,
                imbalance: 3.0, // heavy-tailed chunk weights
            }]
        };
        // Static with a fixed chunk assignment cannot adapt to the tail…
        let t_static = run(mk(SimSchedule::StaticChunk(64), ClaimCost::local()), 8);
        // …while dynamic claims absorb it.
        let t_dynamic = run(
            mk(
                SimSchedule::Dynamic(64),
                ClaimCost {
                    seconds: 5e-8,
                    serializes: true,
                },
            ),
            8,
        );
        assert!(
            t_dynamic < t_static * 0.95,
            "dynamic {t_dynamic} should beat static {t_static} under imbalance"
        );
    }

    #[test]
    fn segment_weights_deterministic_and_heavy_tailed() {
        assert_eq!(segment_weight(123, 1.0), segment_weight(123, 1.0));
        assert_eq!(segment_weight(42, 0.0), 1.0);
        let mean: f64 = (0..10_000).map(|i| segment_weight(i, 1.0)).sum::<f64>() / 10_000.0;
        assert!((2.0..12.0).contains(&mean), "mean weight {mean}");
        let max = (0..10_000)
            .map(|i| segment_weight(i, 1.0))
            .fold(0.0, f64::max);
        assert!(max > mean * 10.0, "max {max} vs mean {mean}");
    }

    #[test]
    fn weighted_iterations_conserved_across_chunkings() {
        // Any partition of [0, n) must integrate to the same total work.
        let n = 100_000u64;
        let whole = weighted_iterations(0, n, 1.5);
        for chunk in [1u64, 7, 64, 300, 4096] {
            let mut sum = 0.0;
            let mut lo = 0;
            while lo < n {
                let len = chunk.min(n - lo);
                sum += weighted_iterations(lo, len, 1.5);
                lo += len;
            }
            assert!(
                (sum - whole).abs() < whole * 1e-9,
                "chunk {chunk}: {sum} vs {whole}"
            );
        }
    }

    #[test]
    fn report_accounts_barrier_wait() {
        // A serial phase makes threads 1..N wait for thread 0: the summed
        // barrier wait must be ≈ (N-1) × cost (plus the barrier itself).
        let mut machine = Machine::new(32);
        let model = CostModel {
            barrier: 0.0,
            shared_op: 7e-8,
            gil: false,
        };
        let workload = Workload {
            phases: vec![Phase::Serial { cost: 1e-3 }],
        };
        let report = simulate_report(&mut machine, &model, &workload, 4);
        assert_eq!(report.barrier_arrivals, 4);
        assert!(
            (report.barrier_wait - 3e-3).abs() < 1e-9,
            "wait {}",
            report.barrier_wait
        );
        // A perfectly balanced loop barely waits.
        let mut machine = Machine::new(32);
        let balanced = Workload {
            phases: vec![Phase::ParallelFor {
                iters: 4_000,
                cost_per_iter: 1e-6,
                shared_ops_per_iter: 0.0,
                schedule: SimSchedule::StaticBlock,
                claim: ClaimCost::local(),
                nowait: false,
                imbalance: 0.0,
            }],
        };
        let balanced_report = simulate_report(&mut machine, &model, &balanced, 4);
        assert!(
            balanced_report.barrier_wait < report.barrier_wait * 0.01,
            "balanced wait {} vs serial wait {}",
            balanced_report.barrier_wait,
            report.barrier_wait
        );
    }

    #[test]
    fn empty_workload_is_zero() {
        assert_eq!(run(vec![], 8), 0.0);
        assert_eq!(
            run(
                vec![for_phase(
                    0,
                    1.0,
                    SimSchedule::StaticBlock,
                    ClaimCost::local()
                )],
                4
            ),
            0.0
        );
    }
}
