//! # simcore — a discrete-event multicore execution simulator
//!
//! The OMP4Py paper's evaluation machine is a 32-core Xeon; this
//! reproduction may run on hosts with a single core, where wall-clock
//! thread-scaling measurements are necessarily flat. `simcore` regenerates
//! the paper's *scaling curves* (Figs. 5–8) by simulating the runtime's
//! actual scheduling algorithms on a virtual multicore machine:
//!
//! * loop chunks are claimed in virtual time exactly as the real runtime
//!   claims them (static round-robin / dynamic counter / guided decay),
//!   with per-claim costs that differ between the mutex and atomic backends;
//! * barriers release at the max of arrival times plus a measured cost;
//! * a simulated GIL serializes interpreted compute;
//! * free-threaded interpreter scaling is limited by charging each
//!   iteration's shared-object operations (refcounts, cell locks — the
//!   mechanism the paper blames for CPython 3.14b1's limited scalability)
//!   through a serializing resource;
//! * task phases model single-producer queues and recursive task trees.
//!
//! All cost parameters come from **real measurements on the host** (per-
//! iteration times at one thread, microbenchmarked claim/barrier costs);
//! the simulator only extrapolates them to more cores. The bench harness
//! (`omp4rs-bench`) performs that calibration.

// Public API items carry doc comments; enum struct-variant fields are
// documented at the variant level.
#![warn(missing_docs)]
#![allow(missing_docs)]

pub mod engine;
pub mod workload;

pub use engine::{Machine, Resource};
pub use workload::{
    simulate, simulate_report, ClaimCost, CostModel, Phase, SimReport, SimSchedule, TaskShape,
    Workload,
};
