//! Seeded workload generators: random graphs (clustering benchmark) and
//! grid mazes (bfs/pathfinding benchmark).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;

/// Generate a seeded random graph with `n` nodes and approximately
/// `edges_per_node * n / 2`… no — exactly `edges_per_node` edge *endpoints*
/// per node on average: each node draws `edges_per_node / 2` random
/// neighbors, giving an expected degree of `edges_per_node` (the paper's
/// "300k-node graph with 100 edges per node").
pub fn random_graph(n: usize, edges_per_node: usize, seed: u64) -> Graph {
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let draws_per_node = (edges_per_node / 2).max(1);
    for u in 0..n {
        for _ in 0..draws_per_node {
            let v = rng.gen_range(0..n);
            if v != u {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A grid maze: `0` cells are paths, `1` cells are walls (the paper's bfs
/// benchmark: entrance top-left, exit bottom-right, 4-neighbor moves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Maze {
    /// Side length of the square grid.
    pub side: usize,
    /// Row-major cells; `0` = path, `1` = wall.
    pub cells: Vec<u8>,
}

impl Maze {
    /// Whether a cell is a wall.
    pub fn is_wall(&self, row: usize, col: usize) -> bool {
        self.cells[row * self.side + col] != 0
    }

    /// Flattened index of a cell.
    pub fn idx(&self, row: usize, col: usize) -> usize {
        row * self.side + col
    }

    /// Open 4-neighbors of a cell.
    pub fn open_neighbors(&self, row: usize, col: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(4);
        if row > 0 && !self.is_wall(row - 1, col) {
            out.push((row - 1, col));
        }
        if row + 1 < self.side && !self.is_wall(row + 1, col) {
            out.push((row + 1, col));
        }
        if col > 0 && !self.is_wall(row, col - 1) {
            out.push((row, col - 1));
        }
        if col + 1 < self.side && !self.is_wall(row, col + 1) {
            out.push((row, col + 1));
        }
        out
    }

    /// View the maze as a graph over open cells (walls become isolated
    /// nodes), for cross-checking parallel BFS against [`crate::algorithms`].
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.side * self.side);
        for row in 0..self.side {
            for col in 0..self.side {
                if self.is_wall(row, col) {
                    continue;
                }
                if col + 1 < self.side && !self.is_wall(row, col + 1) {
                    g.add_edge(self.idx(row, col), self.idx(row, col + 1));
                }
                if row + 1 < self.side && !self.is_wall(row + 1, col) {
                    g.add_edge(self.idx(row, col), self.idx(row + 1, col));
                }
            }
        }
        g
    }
}

/// Generate a seeded maze with a guaranteed open path from the top-left
/// entrance to the bottom-right exit.
///
/// A random staircase walk from entrance to exit is carved first, then each
/// remaining cell independently becomes a wall with probability
/// `wall_probability`.
pub fn maze_grid(side: usize, wall_probability: f64, seed: u64) -> Maze {
    let side = side.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cells = vec![0u8; side * side];
    for cell in cells.iter_mut() {
        if rng.gen_bool(wall_probability.clamp(0.0, 1.0)) {
            *cell = 1;
        }
    }
    // Carve a guaranteed path: monotone walk with random interleaving.
    let (mut row, mut col) = (0usize, 0usize);
    cells[0] = 0;
    while row + 1 < side || col + 1 < side {
        if row + 1 >= side {
            col += 1;
        } else if col + 1 >= side || rng.gen_bool(0.5) {
            row += 1;
        } else {
            col += 1;
        }
        cells[row * side + col] = 0;
    }
    Maze { side, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::bfs_shortest_path_len;

    #[test]
    fn random_graph_deterministic_by_seed() {
        let a = random_graph(100, 8, 42);
        let b = random_graph(100, 8, 42);
        let c = random_graph(100, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_graph_expected_degree() {
        let n = 2000;
        let g = random_graph(n, 10, 7);
        let avg_degree = 2.0 * g.edge_count() as f64 / n as f64;
        // Each node draws 5 neighbors; collisions make it slightly < 10.
        assert!(
            avg_degree > 8.0 && avg_degree <= 10.0,
            "avg degree {avg_degree}"
        );
    }

    #[test]
    fn random_graph_edge_cases() {
        assert_eq!(random_graph(0, 10, 1).node_count(), 0);
        assert_eq!(random_graph(1, 10, 1).edge_count(), 0);
    }

    #[test]
    fn maze_is_deterministic_and_solvable() {
        let m1 = maze_grid(31, 0.35, 9);
        let m2 = maze_grid(31, 0.35, 9);
        assert_eq!(m1, m2);
        assert!(!m1.is_wall(0, 0));
        assert!(!m1.is_wall(30, 30));
        let g = m1.to_graph();
        let dist = bfs_shortest_path_len(&g, m1.idx(0, 0), m1.idx(30, 30));
        assert!(dist.is_some(), "carved path must connect entrance to exit");
        // Shortest path in a grid is at least the Manhattan distance.
        assert!(dist.unwrap() >= 60);
    }

    #[test]
    fn maze_open_neighbors_respect_walls() {
        let m = Maze {
            side: 3,
            cells: vec![0, 1, 0, 0, 0, 0, 1, 0, 0],
        };
        assert_eq!(m.open_neighbors(0, 0), vec![(1, 0)]);
        let mut center = m.open_neighbors(1, 1);
        center.sort_unstable();
        assert_eq!(center, vec![(1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn fully_open_maze_shortest_path() {
        let m = maze_grid(10, 0.0, 3);
        let g = m.to_graph();
        let dist = bfs_shortest_path_len(&g, 0, m.idx(9, 9)).unwrap();
        assert_eq!(dist, 18); // Manhattan distance in an open grid.
    }
}
