//! Sequential reference algorithms (used to verify the parallel benchmark
//! implementations).

use std::collections::VecDeque;

use crate::graph::Graph;

/// Average clustering coefficient over all nodes (NetworkX
/// `average_clustering`).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = (0..n).map(|u| g.clustering(u)).sum();
    total / n as f64
}

/// PageRank by fixed-iteration power method (NetworkX `pagerank` over an
/// undirected graph, minus dangling-mass redistribution: a node with no
/// neighbors converges to `(1 - damping) / n`). Deterministic: every mode of
/// the parallel benchmark sums each node's neighbor contributions in the
/// same (adjacency) order, so results agree across implementations to
/// floating-point noise only.
pub fn pagerank(g: &Graph, damping: f64, iters: usize) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - damping) / n as f64;
    let mut ranks = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        for (u, slot) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &v in g.neighbors(u) {
                let v = v as usize;
                sum += ranks[v] / g.degree(v) as f64;
            }
            *slot = base + damping * sum;
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

/// Length (in edges) of the shortest path between two nodes, by BFS.
/// `None` if unreachable.
pub fn bfs_shortest_path_len(g: &Graph, from: usize, to: usize) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; g.node_count()];
    dist[from] = 0;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                if v == to {
                    return Some(dist[v]);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_clustering_triangle_plus_tail() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        // c(0)=1, c(1)=1, c(2)=1/3, c(3)=0 → avg = (1+1+1/3)/4
        let expected = (1.0 + 1.0 + 1.0 / 3.0) / 4.0;
        assert!((average_clustering(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn average_clustering_empty_graph() {
        assert_eq!(average_clustering(&Graph::new(0)), 0.0);
        assert_eq!(average_clustering(&Graph::new(5)), 0.0);
    }

    #[test]
    fn pagerank_sums_to_one_without_danglers() {
        // A connected graph has no danglers, so mass is conserved.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let pr = pagerank(&g, 0.85, 30);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "total = {total}");
        // The 4-cycle is vertex-transitive: all ranks equal.
        for &r in &pr {
            assert!((r - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_ranks_high_degree_nodes_higher() {
        // Star: the center should dominate.
        let mut g = Graph::new(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf);
        }
        let pr = pagerank(&g, 0.85, 50);
        assert!(pr[0] > pr[1] * 2.0, "center {} leaf {}", pr[0], pr[1]);
    }

    #[test]
    fn pagerank_isolated_node_gets_base_mass() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let pr = pagerank(&g, 0.85, 60);
        assert!((pr[2] - 0.15 / 3.0).abs() < 1e-9, "isolated rank {}", pr[2]);
    }

    #[test]
    fn bfs_distances() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(0, 4);
        g.add_edge(4, 3);
        assert_eq!(bfs_shortest_path_len(&g, 0, 3), Some(2)); // via 4
        assert_eq!(bfs_shortest_path_len(&g, 0, 0), Some(0));
        assert_eq!(bfs_shortest_path_len(&g, 0, 5), None); // isolated
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generators::random_graph;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Clustering coefficients are always within [0, 1].
        #[test]
        fn clustering_in_unit_interval(n in 2usize..60, k in 2usize..10, seed in 0u64..1000) {
            let g = random_graph(n, k, seed);
            for u in 0..n {
                let c = g.clustering(u);
                prop_assert!((0.0..=1.0).contains(&c), "c({u}) = {c}");
            }
        }

        /// Sum of per-node triangle counts is divisible by 3 (each triangle
        /// is counted once per corner).
        #[test]
        fn triangle_counts_consistent(n in 3usize..50, k in 2usize..8, seed in 0u64..1000) {
            let g = random_graph(n, k, seed);
            let total: usize = (0..n).map(|u| g.triangles(u)).sum();
            prop_assert_eq!(total % 3, 0);
        }

        /// BFS distance obeys the triangle inequality through any midpoint.
        #[test]
        fn bfs_triangle_inequality(n in 3usize..40, k in 2usize..6, seed in 0u64..500) {
            let g = random_graph(n, k, seed);
            let (a, b, m) = (0, n - 1, n / 2);
            if let (Some(ab), Some(am), Some(mb)) = (
                bfs_shortest_path_len(&g, a, b),
                bfs_shortest_path_len(&g, a, m),
                bfs_shortest_path_len(&g, m, b),
            ) {
                prop_assert!(ab <= am + mb);
            }
        }
    }
}
