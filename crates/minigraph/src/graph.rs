//! The undirected graph type.

/// An undirected simple graph over nodes `0..n`, with sorted adjacency
/// vectors (supporting O(log d) membership tests and O(d1 + d2) neighbor
/// intersection for triangle counting).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl Graph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Graph {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Add an (undirected) edge; parallel edges and self-loops are ignored.
    /// Returns whether the edge was inserted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        if u == v || self.has_edge(u, v) {
            return false;
        }
        let (u32u, u32v) = (u as u32, v as u32);
        let pos_u = self.adj[u].binary_search(&u32v).unwrap_err();
        self.adj[u].insert(pos_u, u32v);
        let pos_v = self.adj[v].binary_search(&u32u).unwrap_err();
        self.adj[v].insert(pos_v, u32u);
        self.edges += 1;
        true
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj
            .get(u)
            .is_some_and(|nbrs| nbrs.binary_search(&(v as u32)).is_ok())
    }

    /// Sorted neighbors of a node.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// Degree of a node.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Number of triangles through a node (NetworkX `triangles`).
    pub fn triangles(&self, u: usize) -> usize {
        let nbrs = &self.adj[u];
        let mut count = 0;
        for (i, &v) in nbrs.iter().enumerate() {
            // Count common neighbors of u and v that come after v,
            // avoiding double-counting each triangle.
            let vn = &self.adj[v as usize];
            let mut a = i + 1;
            let mut b = 0;
            while a < nbrs.len() && b < vn.len() {
                match nbrs[a].cmp(&vn[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
        count
    }

    /// Clustering coefficient of a node (NetworkX `clustering`): the
    /// fraction of possible triangles through the node that exist.
    pub fn clustering(&self, u: usize) -> f64 {
        let d = self.degree(u);
        if d < 2 {
            return 0.0;
        }
        let possible = d * (d - 1) / 2;
        self.triangles(u) as f64 / possible as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn add_edge_dedups_and_ignores_self_loops() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert!(!g.add_edge(2, 2));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = Graph::new(5);
        g.add_edge(2, 4);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        assert_eq!(g.neighbors(2), &[0, 3, 4]);
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn complete_graph_triangles() {
        let g = k4();
        // Each node of K4 is in C(3,2) = 3 triangles.
        for u in 0..4 {
            assert_eq!(g.triangles(u), 3);
            assert_eq!(g.clustering(u), 1.0);
        }
    }

    #[test]
    fn path_graph_has_no_triangles() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        for u in 0..4 {
            assert_eq!(g.triangles(u), 0);
            assert_eq!(g.clustering(u), 0.0);
        }
    }

    #[test]
    fn clustering_partial() {
        // Star with one cross edge: center 0 — leaves 1, 2, 3; edge 1-2.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(1, 2);
        assert_eq!(g.triangles(0), 1);
        assert!((g.clustering(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.clustering(1), 1.0);
        assert_eq!(g.clustering(3), 0.0); // degree 1
    }
}
