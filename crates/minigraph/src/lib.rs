//! # minigraph — a NetworkX-subset graph substrate
//!
//! The OMP4Py paper's *clustering coefficient* benchmark exercises full
//! Python-library support by calling NetworkX, which Numba/PyOMP cannot
//! compile. This crate rebuilds the slice of NetworkX that benchmark needs:
//! an undirected [`Graph`], seeded random generators, triangle counting,
//! per-node clustering coefficients, and BFS (used by the maze benchmark's
//! verification).
//!
//! # Examples
//!
//! ```
//! use minigraph::Graph;
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(0, 2);
//! g.add_edge(2, 3);
//! assert_eq!(g.triangles(2), 1);
//! assert!((g.clustering(0) - 1.0).abs() < 1e-12);
//! assert_eq!(g.clustering(3), 0.0);
//! ```

// Public API items carry doc comments; enum struct-variant fields are
// documented at the variant level.
#![warn(missing_docs)]
#![allow(missing_docs)]

pub mod algorithms;
pub mod generators;
pub mod graph;

pub use algorithms::{average_clustering, bfs_shortest_path_len, pagerank};
pub use generators::{maze_grid, random_graph, Maze};
pub use graph::Graph;
