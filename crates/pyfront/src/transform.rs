//! Directive-to-runtime AST transformation — the paper's *parser* (§III-A).
//!
//! `transform_function` rewrites an `@omp`-decorated function: every
//! `with omp("…"):` block and standalone `omp("…")` call is parsed, validated,
//! and replaced by calls into the `__omp` runtime module, reproducing the
//! code shapes of the paper's Figs. 2–3 (inner `__omp_parallel` functions
//! with `nonlocal` declarations, `__omp_`-prefixed private copies with
//! numeric suffixes, `for_bounds`/`for_init`/`for_next` loop driving with
//! the original `range`-based `for` preserved, reduction merges guarded by
//! `mutex_lock`/`mutex_unlock`).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use minipy::ast::*;
use minipy::error::{ErrKind, PyErr};
use omp4rs::directive::{Clause, DefaultKind, Directive, DirectiveKind, ReductionOp, ScheduleKind};
use omp4rs::reduction::{declare_reduction, DeclaredReduction};

use crate::scope::{assignment_counts, rename_names, used_names};
use crate::threadprivate;

/// Transform an `@omp`-decorated function definition.
///
/// # Errors
///
/// Returns a `SyntaxError` [`PyErr`] for invalid directives, malformed
/// directive placement (e.g. `for` not wrapping a `range` loop), or
/// `default(none)` violations — mirroring the paper's behaviour ("If any
/// errors are detected, a `SyntaxError` is raised").
pub fn transform_function(def: &FuncDef) -> Result<FuncDef, PyErr> {
    let mut t = Transformer {
        counter: 0,
        fn_name: def.name.clone(),
        fn_counts: assignment_counts(&def.body),
        fn_params: def.params.iter().map(|p| p.name.clone()).collect(),
    };
    let mut body = t.transform_block(&def.body)?;
    let tp_names = threadprivate::registered();
    if !tp_names.is_empty() {
        threadprivate::apply(&mut body, &tp_names)?;
    }
    Ok(FuncDef {
        name: def.name.clone(),
        params: def.params.clone(),
        body,
        // Decorators are stripped: the transformed function must not be
        // re-processed (paper §III-A).
        decorators: Vec::new(),
        line: def.line,
    })
}

/// Extract the directive text if `e` is a call `omp("…")`.
pub fn omp_directive_text(e: &Expr) -> Option<&str> {
    match e {
        Expr::Call { func, args, kwargs } if kwargs.is_empty() && args.len() == 1 => {
            match (&**func, &args[0]) {
                (Expr::Name(name), Expr::Str(text)) if name == "omp" => Some(text),
                _ => None,
            }
        }
        _ => None,
    }
}

fn syntax_err(msg: impl Into<String>, line: u32) -> PyErr {
    PyErr::at(ErrKind::Syntax, msg, line)
}

/// Stable loop-site id for one transformed `for` directive: an FNV-1a hash
/// of the enclosing function's name and the directive's source line. Every
/// transformed `for` directive bakes its id into the generated `for_init`
/// call; the runtime keys its adaptive `schedule(auto)` history on it
/// (`omp4rs::adaptive`), so repeated executions of the same source loop
/// share one feedback history — and because the id is derived from the
/// source rather than a process-global counter, re-transforming the same
/// code (a REPL re-`exec`, re-decorating a module) reuses the existing
/// history instead of orphaning it in the registry.
fn loop_site_id(fn_name: &str, line: u32) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fn_name.bytes().chain(line.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Keep clear of the sign bit and the runtime's interpreted-site tag bit
    // (bridge ORs `1 << 62` into every interpreted site key).
    (h & ((1 << 62) - 1)) as i64
}

/// `privatize` result: (prologue, epilogue, nonlocal names).
type PrivatizeParts = (Vec<Stmt>, Vec<Stmt>, Vec<String>);

struct Transformer {
    counter: u32,
    /// The enclosing function's name (half of each loop-site id).
    fn_name: String,
    /// Assignment-site counts over the whole enclosing function.
    fn_counts: HashMap<String, usize>,
    /// The enclosing function's parameters.
    fn_params: HashSet<String>,
}

/// Data-sharing info extracted from clauses for a region.
#[derive(Default)]
struct DataSharing {
    privates: Vec<String>,
    firstprivates: Vec<String>,
    lastprivates: Vec<String>,
    shared: Vec<String>,
    reductions: Vec<(ReductionOp, String)>,
    default: Option<DefaultKind>,
    copyin: Vec<String>,
}

impl DataSharing {
    fn from_clauses(clauses: &[Clause]) -> DataSharing {
        let mut ds = DataSharing::default();
        for clause in clauses {
            match clause {
                Clause::Private(v) => ds.privates.extend(v.iter().cloned()),
                Clause::Firstprivate(v) => ds.firstprivates.extend(v.iter().cloned()),
                Clause::Lastprivate(v) => ds.lastprivates.extend(v.iter().cloned()),
                Clause::Shared(v) => ds.shared.extend(v.iter().cloned()),
                Clause::Copyin(v) => ds.copyin.extend(v.iter().cloned()),
                Clause::Reduction { op, vars } => {
                    ds.reductions
                        .extend(vars.iter().map(|v| (op.clone(), v.clone())));
                }
                Clause::Default(k) => ds.default = Some(*k),
                _ => {}
            }
        }
        ds
    }

    fn clause_listed(&self) -> HashSet<&str> {
        let mut set: HashSet<&str> = HashSet::new();
        set.extend(self.privates.iter().map(String::as_str));
        set.extend(self.firstprivates.iter().map(String::as_str));
        set.extend(self.lastprivates.iter().map(String::as_str));
        set.extend(self.shared.iter().map(String::as_str));
        set.extend(self.copyin.iter().map(String::as_str));
        set.extend(self.reductions.iter().map(|(_, v)| v.as_str()));
        set
    }
}

// ---- small AST builders ---------------------------------------------------

fn omp_attr(name: &str) -> Expr {
    Expr::attr(Expr::name("__omp"), name)
}

fn omp_call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::call(omp_attr(name), args)
}

fn omp_call_stmt(name: &str, args: Vec<Expr>) -> Stmt {
    Stmt::synth(StmtKind::Expr(omp_call(name, args)))
}

fn assign(target: &str, value: Expr) -> Stmt {
    Stmt::synth(StmtKind::Assign {
        targets: vec![Expr::name(target)],
        value,
    })
}

fn str_lit(s: &str) -> Expr {
    Expr::Str(s.to_owned())
}

/// Parse clause expression text (e.g. a `num_threads` argument) as minipy.
fn parse_clause_expr(text: &str, line: u32) -> Result<Expr, PyErr> {
    minipy::parse_expr(text).map_err(|e| {
        syntax_err(
            format!("invalid clause expression '{text}': {}", e.msg),
            line,
        )
    })
}

impl Transformer {
    fn next_id(&mut self) -> u32 {
        self.counter += 1;
        self.counter
    }

    fn transform_block(&mut self, stmts: &[Stmt]) -> Result<Vec<Stmt>, PyErr> {
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.extend(self.transform_stmt(stmt)?);
        }
        Ok(out)
    }

    fn transform_stmt(&mut self, stmt: &Stmt) -> Result<Vec<Stmt>, PyErr> {
        let line = stmt.line;
        match &stmt.kind {
            StmtKind::With { items, body } => {
                let directive_text = items.first().and_then(|i| omp_directive_text(&i.context));
                if let Some(text) = directive_text {
                    if items.len() > 1 {
                        return Err(syntax_err(
                            "an omp() directive must be the only context manager",
                            line,
                        ));
                    }
                    let directive =
                        Directive::parse(text).map_err(|e| syntax_err(e.to_string(), line))?;
                    return self.handle_block_directive(directive, body, line);
                }
                // Ordinary with: recurse.
                let body = self.transform_block(body)?;
                Ok(vec![Stmt::new(
                    StmtKind::With {
                        items: items.clone(),
                        body,
                    },
                    line,
                )])
            }
            StmtKind::Expr(e) => {
                if let Some(text) = omp_directive_text(e) {
                    let directive =
                        Directive::parse(text).map_err(|err| syntax_err(err.to_string(), line))?;
                    return self.handle_standalone_directive(directive, line);
                }
                Ok(vec![stmt.clone()])
            }
            StmtKind::If { test, body, orelse } => {
                let body = self.transform_block(body)?;
                let orelse = self.transform_block(orelse)?;
                Ok(vec![Stmt::new(
                    StmtKind::If {
                        test: test.clone(),
                        body,
                        orelse,
                    },
                    line,
                )])
            }
            StmtKind::While { test, body } => {
                let body = self.transform_block(body)?;
                Ok(vec![Stmt::new(
                    StmtKind::While {
                        test: test.clone(),
                        body,
                    },
                    line,
                )])
            }
            StmtKind::For { target, iter, body } => {
                let body = self.transform_block(body)?;
                Ok(vec![Stmt::new(
                    StmtKind::For {
                        target: target.clone(),
                        iter: iter.clone(),
                        body,
                    },
                    line,
                )])
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                let body = self.transform_block(body)?;
                let mut new_handlers = Vec::with_capacity(handlers.len());
                for h in handlers {
                    new_handlers.push(ExceptHandler {
                        class_name: h.class_name.clone(),
                        alias: h.alias.clone(),
                        body: self.transform_block(&h.body)?,
                    });
                }
                let orelse = self.transform_block(orelse)?;
                let finalbody = self.transform_block(finalbody)?;
                Ok(vec![Stmt::new(
                    StmtKind::Try {
                        body,
                        handlers: new_handlers,
                        orelse,
                        finalbody,
                    },
                    line,
                )])
            }
            // Nested function definitions are separate scopes: they are only
            // transformed when their own @omp decorator runs (paper §III-A).
            _ => Ok(vec![stmt.clone()]),
        }
    }

    fn handle_standalone_directive(
        &mut self,
        directive: Directive,
        line: u32,
    ) -> Result<Vec<Stmt>, PyErr> {
        let if_text = directive.if_expr().map(str::to_owned);
        Ok(match directive.kind {
            DirectiveKind::Barrier => vec![omp_call_stmt("barrier", vec![])],
            DirectiveKind::Cancel(construct) => {
                // __omp.cancel("for"), guarded by the if clause when present
                // (the spec's cancel-if: the directive is ignored when false).
                let call = omp_call_stmt("cancel", vec![str_lit(construct.name())]);
                match if_text {
                    Some(text) => {
                        let test =
                            Expr::call(Expr::name("bool"), vec![parse_clause_expr(&text, line)?]);
                        vec![Stmt::new(
                            StmtKind::If {
                                test,
                                body: vec![call],
                                orelse: Vec::new(),
                            },
                            line,
                        )]
                    }
                    None => vec![call],
                }
            }
            DirectiveKind::CancellationPoint(construct) => {
                vec![omp_call_stmt(
                    "cancellation_point",
                    vec![str_lit(construct.name())],
                )]
            }
            DirectiveKind::Taskwait => vec![omp_call_stmt("task_wait", vec![])],
            DirectiveKind::Taskyield => vec![omp_call_stmt("task_yield", vec![])],
            DirectiveKind::Flush(_) => vec![omp_call_stmt("flush", vec![])],
            DirectiveKind::Threadprivate(vars) => {
                threadprivate::register(&vars);
                vec![Stmt::synth(StmtKind::Pass)]
            }
            DirectiveKind::DeclareReduction {
                name,
                combiner,
                initializer,
            } => {
                declare_reduction(
                    &name,
                    DeclaredReduction {
                        combiner: combiner.clone(),
                        initializer: initializer.clone(),
                    },
                );
                vec![Stmt::synth(StmtKind::Pass)]
            }
            other => {
                return Err(syntax_err(
                    format!("directive '{}' requires a structured block", other.name()),
                    line,
                ))
            }
        })
    }

    fn handle_block_directive(
        &mut self,
        directive: Directive,
        body: &[Stmt],
        line: u32,
    ) -> Result<Vec<Stmt>, PyErr> {
        match &directive.kind {
            DirectiveKind::Parallel => {
                let inner = self.transform_block(body)?;
                self.emit_parallel(&directive, inner, body, line)
            }
            DirectiveKind::ParallelFor => {
                // Split into parallel{ for{...} } as the specification
                // defines for combined constructs.
                let (for_clauses, par_clauses) = split_combined_clauses(&directive);
                let for_directive = Directive {
                    kind: DirectiveKind::For,
                    clauses: for_clauses,
                };
                let loop_stmts = self.handle_for(&for_directive, body, line)?;
                let par_directive = Directive {
                    kind: DirectiveKind::Parallel,
                    clauses: par_clauses,
                };
                self.emit_parallel(&par_directive, loop_stmts, body, line)
            }
            DirectiveKind::For => self.handle_for(&directive, body, line),
            DirectiveKind::Sections => self.handle_sections(&directive, body, line),
            DirectiveKind::ParallelSections => {
                let (sec_clauses, par_clauses) = split_combined_clauses(&directive);
                let sec_directive = Directive {
                    kind: DirectiveKind::Sections,
                    clauses: sec_clauses,
                };
                let sec_stmts = self.handle_sections(&sec_directive, body, line)?;
                let par_directive = Directive {
                    kind: DirectiveKind::Parallel,
                    clauses: par_clauses,
                };
                self.emit_parallel(&par_directive, sec_stmts, body, line)
            }
            DirectiveKind::Section => Err(syntax_err(
                "'section' directive outside a 'sections' block",
                line,
            )),
            DirectiveKind::Single => self.handle_single(&directive, body, line),
            DirectiveKind::Master => {
                let inner = self.transform_block(body)?;
                Ok(vec![Stmt::new(
                    StmtKind::If {
                        test: omp_call("is_master", vec![]),
                        body: inner,
                        orelse: Vec::new(),
                    },
                    line,
                )])
            }
            DirectiveKind::Critical(name) => {
                let inner = self.transform_block(body)?;
                let name_expr = str_lit(name.as_deref().unwrap_or(""));
                Ok(vec![
                    omp_call_stmt("critical_enter", vec![name_expr.clone()]),
                    Stmt::new(
                        StmtKind::Try {
                            body: inner,
                            handlers: Vec::new(),
                            orelse: Vec::new(),
                            finalbody: vec![omp_call_stmt("critical_exit", vec![name_expr])],
                        },
                        line,
                    ),
                ])
            }
            DirectiveKind::Atomic => {
                let inner = self.transform_block(body)?;
                if inner.len() != 1
                    || !matches!(
                        inner[0].kind,
                        StmtKind::Assign { .. } | StmtKind::AugAssign { .. }
                    )
                {
                    return Err(syntax_err(
                        "'atomic' requires a single assignment statement",
                        line,
                    ));
                }
                Ok(vec![
                    omp_call_stmt("atomic_enter", vec![]),
                    Stmt::new(
                        StmtKind::Try {
                            body: inner,
                            handlers: Vec::new(),
                            orelse: Vec::new(),
                            finalbody: vec![omp_call_stmt("atomic_exit", vec![])],
                        },
                        line,
                    ),
                ])
            }
            DirectiveKind::Ordered => {
                let inner = self.transform_block(body)?;
                Ok(vec![
                    omp_call_stmt("ordered_start", vec![]),
                    Stmt::new(
                        StmtKind::Try {
                            body: inner,
                            handlers: Vec::new(),
                            orelse: Vec::new(),
                            finalbody: vec![omp_call_stmt("ordered_end", vec![])],
                        },
                        line,
                    ),
                ])
            }
            DirectiveKind::Task => {
                let inner = self.transform_block(body)?;
                self.emit_task(&directive, inner, body, line)
            }
            DirectiveKind::Taskgroup => {
                // Critical-style shape: enter, then leave in a `finally` so
                // the group is closed even when the block raises (queued
                // members still execute; the end-wait is deadline-bounded).
                let inner = self.transform_block(body)?;
                Ok(vec![
                    omp_call_stmt("taskgroup_begin", vec![]),
                    Stmt::new(
                        StmtKind::Try {
                            body: inner,
                            handlers: Vec::new(),
                            orelse: Vec::new(),
                            finalbody: vec![omp_call_stmt("taskgroup_end", vec![])],
                        },
                        line,
                    ),
                ])
            }
            DirectiveKind::Taskloop => self.handle_taskloop(&directive, body, line),
            DirectiveKind::Barrier
            | DirectiveKind::Taskwait
            | DirectiveKind::Taskyield
            | DirectiveKind::Flush(_)
            | DirectiveKind::Threadprivate(_)
            | DirectiveKind::Cancel(_)
            | DirectiveKind::CancellationPoint(_)
            | DirectiveKind::DeclareReduction { .. } => Err(syntax_err(
                format!(
                    "directive '{}' does not take a structured block",
                    directive.kind.name()
                ),
                line,
            )),
        }
    }

    // ---- data sharing ----------------------------------------------------

    /// Apply privatization renames and compute the `nonlocal` set for a
    /// region body. Returns (prologue, epilogue, nonlocal names).
    fn privatize(
        &mut self,
        ds: &DataSharing,
        body: &mut [Stmt],
        original_body: &[Stmt],
        _is_loop: bool,
        bounds_name: Option<&str>,
        line: u32,
    ) -> Result<PrivatizeParts, PyErr> {
        let block_counts = assignment_counts(original_body);
        let globals_declared = declared_globals(original_body);

        // default(private|firstprivate): unlisted function-scope variables
        // used in the block become private/firstprivate (paper §V).
        let mut privates = ds.privates.clone();
        let mut firstprivates = ds.firstprivates.clone();
        match ds.default {
            Some(DefaultKind::Private) | Some(DefaultKind::Firstprivate) => {
                let listed = ds.clause_listed();
                let used = used_names(original_body);
                let mut unlisted: Vec<String> = used
                    .into_iter()
                    .filter(|n| {
                        !listed.contains(n.as_str())
                            && (self.fn_params.contains(n) || self.fn_counts.contains_key(n))
                            && !n.starts_with("__omp")
                            && n != "omp"
                    })
                    .collect();
                unlisted.sort();
                if ds.default == Some(DefaultKind::Private) {
                    privates.extend(unlisted);
                } else {
                    firstprivates.extend(unlisted);
                }
            }
            Some(DefaultKind::None) => {
                let listed = ds.clause_listed();
                for name in used_names(original_body) {
                    let fn_scoped = self.fn_params.contains(&name)
                        || (self.fn_counts.get(&name).copied().unwrap_or(0)
                            > block_counts.get(&name).copied().unwrap_or(0));
                    if fn_scoped && !listed.contains(name.as_str()) && !name.starts_with("__omp") {
                        return Err(syntax_err(
                            format!(
                                "variable '{name}' must be listed in a data-sharing clause \
                                 (default(none) is in effect)"
                            ),
                            line,
                        ));
                    }
                }
            }
            _ => {}
        }

        // Build the rename map for all privatized variables.
        let mut rename: HashMap<String, String> = HashMap::new();
        let mut prologue = Vec::new();
        let mut epilogue = Vec::new();
        for var in &privates {
            let new = format!("__omp_{var}_{}", self.next_id());
            rename.insert(var.clone(), new);
        }
        for var in &firstprivates {
            let new = format!("__omp_{var}_{}", self.next_id());
            prologue.push(assign(&new, Expr::name(var)));
            rename.insert(var.clone(), new);
        }
        for var in &ds.lastprivates {
            let new = rename
                .entry(var.clone())
                .or_insert_with(|| format!("__omp_{var}_{}", self.next_id()))
                .clone();
            let bounds = bounds_name.ok_or_else(|| {
                syntax_err("lastprivate requires a worksharing loop or sections", line)
            })?;
            epilogue.push(Stmt::synth(StmtKind::If {
                test: omp_call("for_is_last", vec![Expr::name(bounds)]),
                body: vec![assign(var, Expr::name(&new))],
                orelse: Vec::new(),
            }));
        }
        for (op, var) in &ds.reductions {
            let new = format!("__omp_{var}_{}", self.next_id());
            // __omp_x = __omp.reduce_init("+", x)
            prologue.push(assign(
                &new,
                omp_call("reduce_init", vec![str_lit(op.symbol()), Expr::name(var)]),
            ));
            rename.insert(var.clone(), new.clone());
            // Merge under the runtime mutex (paper Fig. 2, with try/finally).
            let merge_stmt = reduction_merge_stmt(op, var, &new);
            epilogue.push(omp_call_stmt("mutex_lock", vec![]));
            epilogue.push(Stmt::synth(StmtKind::Try {
                body: vec![merge_stmt],
                handlers: Vec::new(),
                orelse: Vec::new(),
                finalbody: vec![omp_call_stmt("mutex_unlock", vec![])],
            }));
        }

        if !rename.is_empty() {
            rename_names(body, &rename);
        }

        // nonlocal set: names assigned in the (original) block that are also
        // bound in the enclosing function outside the block, or parameters —
        // excluding privatized and `global`-declared names (paper §III-C).
        // Reduction and lastprivate variables stay in the set even though
        // their body occurrences were renamed: the generated merge epilogue
        // assigns the *original* name.
        let pure_private: HashSet<&String> = privates.iter().chain(firstprivates.iter()).collect();
        // threadprivate names are rewritten to tp_get/tp_set later; they
        // must not appear in nonlocal declarations.
        let tp_names = threadprivate::registered();
        let mut nonlocals: Vec<String> = block_counts
            .keys()
            .chain(ds.reductions.iter().map(|(_, v)| v))
            .chain(ds.lastprivates.iter())
            .filter(|name| {
                let assigned_outside = self.fn_counts.get(*name).copied().unwrap_or(0)
                    > block_counts.get(*name).copied().unwrap_or(0);
                let is_param = self.fn_params.contains(*name);
                (assigned_outside || is_param)
                    && !pure_private.contains(*name)
                    && !globals_declared.contains(*name)
                    && !tp_names.contains(*name)
            })
            .cloned()
            .collect();
        nonlocals.sort();
        nonlocals.dedup();

        Ok((prologue, epilogue, nonlocals))
    }

    // ---- parallel ----------------------------------------------------------

    fn emit_parallel(
        &mut self,
        directive: &Directive,
        mut inner_body: Vec<Stmt>,
        original_body: &[Stmt],
        line: u32,
    ) -> Result<Vec<Stmt>, PyErr> {
        let ds = DataSharing::from_clauses(&directive.clauses);
        let (prologue, epilogue, nonlocals) =
            self.privatize(&ds, &mut inner_body, original_body, false, None, line)?;

        let fname = format!("__omp_parallel_{}", self.next_id());
        let mut func_body = Vec::new();
        if !nonlocals.is_empty() {
            func_body.push(Stmt::synth(StmtKind::Nonlocal(nonlocals)));
        }
        // copyin: seed each thread's threadprivate copy from the master's.
        let mut before = Vec::new();
        for var in &ds.copyin {
            let cap = format!("__omp_copyin_{var}_{}", self.next_id());
            before.push(assign(&cap, omp_call("tp_get", vec![str_lit(var)])));
            func_body.push(omp_call_stmt(
                "tp_set",
                vec![str_lit(var), Expr::name(&cap)],
            ));
        }
        func_body.extend(prologue);
        func_body.extend(inner_body);
        func_body.extend(epilogue);

        let func_def = Arc::new(FuncDef {
            name: fname.clone(),
            params: Vec::new(),
            body: func_body,
            decorators: Vec::new(),
            line,
        });

        let num_threads = match directive.num_threads_expr() {
            Some(text) => parse_clause_expr(text, line)?,
            None => Expr::None,
        };
        let if_expr = match directive.if_expr() {
            Some(text) => Expr::call(Expr::name("bool"), vec![parse_clause_expr(text, line)?]),
            None => Expr::Bool(true),
        };

        let mut out = before;
        out.push(Stmt::new(StmtKind::FuncDef(func_def), line));
        out.push(omp_call_stmt(
            "parallel_run",
            vec![Expr::name(&fname), num_threads, if_expr],
        ));
        Ok(out)
    }

    // ---- task ---------------------------------------------------------------

    fn emit_task(
        &mut self,
        directive: &Directive,
        mut inner_body: Vec<Stmt>,
        original_body: &[Stmt],
        line: u32,
    ) -> Result<Vec<Stmt>, PyErr> {
        let ds = DataSharing::from_clauses(&directive.clauses);
        // For tasks, firstprivate must capture at *creation* time; we realize
        // that with default parameters (evaluated when the inner `def` runs,
        // i.e. at task creation), so the rename machinery is bypassed for
        // firstprivate here.
        let fp_params: Vec<Param> = ds
            .firstprivates
            .iter()
            .map(|var| Param {
                name: var.clone(),
                default: Some(Expr::name(var)),
            })
            .collect();
        let ds_no_fp = DataSharing {
            firstprivates: Vec::new(),
            ..clone_ds(&ds)
        };
        let (prologue, epilogue, mut nonlocals) =
            self.privatize(&ds_no_fp, &mut inner_body, original_body, false, None, line)?;
        // A firstprivate name is a parameter of the task function: it must
        // not also be declared nonlocal.
        nonlocals.retain(|n| !ds.firstprivates.contains(n));

        let fname = format!("__omp_task_{}", self.next_id());
        let mut func_body = Vec::new();
        if !nonlocals.is_empty() {
            func_body.push(Stmt::synth(StmtKind::Nonlocal(nonlocals)));
        }
        func_body.extend(prologue);
        func_body.extend(inner_body);
        func_body.extend(epilogue);

        let func_def = Arc::new(FuncDef {
            name: fname.clone(),
            params: fp_params,
            body: func_body,
            decorators: Vec::new(),
            line,
        });

        // deferred = bool(if_expr) and not bool(final_expr)
        let mut deferred = match directive.if_expr() {
            Some(text) => Expr::call(Expr::name("bool"), vec![parse_clause_expr(text, line)?]),
            None => Expr::Bool(true),
        };
        if let Some(final_text) = directive.find_clause(|c| match c {
            Clause::Final(e) => Some(e.clone()),
            _ => None,
        }) {
            let not_final = Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(Expr::call(
                    Expr::name("bool"),
                    vec![parse_clause_expr(&final_text, line)?],
                )),
            };
            deferred = Expr::BoolOp {
                op: BoolOpKind::And,
                values: vec![deferred, not_final],
            };
        }

        // depend/priority clauses route through `task_submit_ex`; the
        // dependence item expressions are evaluated at *creation* time (like
        // firstprivate captures) — the runtime hashes the resulting values
        // into storage keys, so two tasks naming equal values conflict.
        let depends = directive.depends();
        let priority_text = directive.priority_expr();
        let submit = if depends.is_empty() && priority_text.is_none() {
            omp_call_stmt("task_submit", vec![Expr::name(&fname), deferred])
        } else {
            use omp4rs::depgraph::DepKind;
            let mut ins = Vec::new();
            let mut outs = Vec::new();
            let mut inouts = Vec::new();
            for (kind, item) in depends {
                let e = parse_clause_expr(item, line)?;
                match kind {
                    DepKind::In => ins.push(e),
                    DepKind::Out => outs.push(e),
                    DepKind::Inout => inouts.push(e),
                }
            }
            let priority = match priority_text {
                Some(text) => parse_clause_expr(text, line)?,
                None => Expr::Int(0),
            };
            omp_call_stmt(
                "task_submit_ex",
                vec![
                    Expr::name(&fname),
                    deferred,
                    Expr::List(ins),
                    Expr::List(outs),
                    Expr::List(inouts),
                    priority,
                ],
            )
        };
        Ok(vec![Stmt::new(StmtKind::FuncDef(func_def), line), submit])
    }

    // ---- for -----------------------------------------------------------------

    fn handle_for(
        &mut self,
        directive: &Directive,
        body: &[Stmt],
        line: u32,
    ) -> Result<Vec<Stmt>, PyErr> {
        let collapse = directive.collapse() as usize;
        // Peel `collapse` nested for-range loops.
        let mut triplets: Vec<(Expr, Expr, Expr)> = Vec::new();
        let mut loop_vars: Vec<String> = Vec::new();
        let mut cursor: &[Stmt] = body;
        let mut innermost_body: &[Stmt] = &[];
        for depth in 0..collapse {
            if cursor.len() != 1 {
                return Err(syntax_err(
                    "the 'for' directive must wrap exactly one for loop",
                    line,
                ));
            }
            let (target, iter, loop_body) = match &cursor[0].kind {
                StmtKind::For { target, iter, body } => (target, iter, body),
                _ => return Err(syntax_err("the 'for' directive must wrap a for loop", line)),
            };
            let var = match target {
                Expr::Name(n) => n.clone(),
                _ => {
                    return Err(syntax_err(
                        "parallel loop variables must be simple names",
                        line,
                    ))
                }
            };
            let triplet = range_triplet(iter).ok_or_else(|| {
                syntax_err(
                    "the 'for' directive requires a range(...)-based loop \
                     (list comprehensions and other iterables are not supported)",
                    line,
                )
            })?;
            loop_vars.push(var);
            triplets.push(triplet);
            innermost_body = loop_body;
            cursor = loop_body;
            let _ = depth;
        }

        let mut inner = self.transform_block(innermost_body)?;

        let ds = DataSharing::from_clauses(&directive.clauses);
        let bounds = format!("__omp_bounds_{}", self.next_id());
        // Note: the `for` transform never moves the body into another
        // function, so no nonlocal declarations are needed here; an
        // enclosing `parallel` transform adds its own later.
        let (prologue, epilogue, _nonlocals) =
            self.privatize(&ds, &mut inner, innermost_body, true, Some(&bounds), line)?;

        // Loop variables are implicitly private: rename them if they are
        // bound elsewhere in the enclosing function.
        let mut var_rename = HashMap::new();
        for var in &mut loop_vars {
            let block_only =
                self.fn_counts.get(var).copied().unwrap_or(0) <= 1 && !self.fn_params.contains(var);
            if !block_only && !ds.lastprivates.contains(var) {
                let new = format!("__omp_{var}_{}", self.next_id());
                var_rename.insert(var.clone(), new.clone());
                *var = new;
            }
        }
        if !var_rename.is_empty() {
            rename_names(&mut inner, &var_rename);
        }

        let ordered = directive.has_ordered();
        let nowait = directive.has_nowait();
        let (sched_expr, chunk_expr) = match directive.schedule() {
            Some((kind, chunk)) => {
                let chunk = match chunk {
                    Some(text) => parse_clause_expr(text, line)?,
                    None => Expr::None,
                };
                (str_lit(kind.name()), chunk)
            }
            None => (Expr::None, Expr::None),
        };

        // __omp_bounds = __omp.for_bounds([s1, e1, st1, ...])
        let mut triplet_items = Vec::new();
        for (s, e, st) in &triplets {
            triplet_items.push(s.clone());
            triplet_items.push(e.clone());
            triplet_items.push(st.clone());
        }
        let mut out = Vec::new();
        out.push(Stmt::new(
            StmtKind::Assign {
                targets: vec![Expr::name(&bounds)],
                value: omp_call("for_bounds", vec![Expr::List(triplet_items)]),
            },
            line,
        ));
        // __omp.for_init(bounds, sched, chunk, nowait, ordered, site)
        out.push(omp_call_stmt(
            "for_init",
            vec![
                Expr::name(&bounds),
                sched_expr,
                chunk_expr,
                Expr::Bool(nowait),
                Expr::Bool(ordered),
                Expr::Int(loop_site_id(&self.fn_name, line)),
            ],
        ));
        out.extend(prologue);

        // Loop driving (paper Fig. 3), with the claimed chunk hoisted into
        // frame locals: `for_chunk` returns an immutable (lo, hi, step)
        // tuple unpacked once per chunk, so iterating the chunk touches no
        // shared (per-object-locked) container on the hot path.
        let chunk_id = self.next_id();
        let lo_name = format!("__omp_lo_{chunk_id}");
        let hi_name = format!("__omp_hi_{chunk_id}");
        let st_name = format!("__omp_st_{chunk_id}");
        let unpack_chunk = Stmt::synth(StmtKind::Assign {
            targets: vec![Expr::Tuple(vec![
                Expr::name(&lo_name),
                Expr::name(&hi_name),
                Expr::name(&st_name),
            ])],
            value: omp_call("for_chunk", vec![Expr::name(&bounds)]),
        });
        let loop_body = if collapse == 1 {
            let var = &loop_vars[0];
            let mut for_body = Vec::new();
            if ordered {
                for_body.push(omp_call_stmt(
                    "set_iter",
                    vec![Expr::name(&bounds), Expr::name(var)],
                ));
            }
            for_body.extend(inner);
            vec![
                unpack_chunk,
                Stmt::synth(StmtKind::For {
                    target: Expr::name(var),
                    iter: Expr::call(
                        Expr::name("range"),
                        vec![
                            Expr::name(&lo_name),
                            Expr::name(&hi_name),
                            Expr::name(&st_name),
                        ],
                    ),
                    body: for_body,
                }),
            ]
        } else {
            // Collapsed: iterate the flattened space, reconstruct variables.
            let flat = format!("__omp_flat_{}", self.next_id());
            let mut for_body = Vec::new();
            for (d, var) in loop_vars.iter().enumerate() {
                for_body.push(assign(
                    var,
                    omp_call(
                        "collapse_var",
                        vec![Expr::name(&bounds), Expr::name(&flat), Expr::Int(d as i64)],
                    ),
                ));
            }
            if ordered {
                for_body.push(omp_call_stmt(
                    "set_iter_flat",
                    vec![Expr::name(&bounds), Expr::name(&flat)],
                ));
            }
            for_body.extend(inner);
            vec![
                unpack_chunk,
                Stmt::synth(StmtKind::For {
                    target: Expr::name(&flat),
                    iter: Expr::call(
                        Expr::name("range"),
                        vec![Expr::name(&lo_name), Expr::name(&hi_name)],
                    ),
                    body: for_body,
                }),
            ]
        };

        out.push(Stmt::new(
            StmtKind::While {
                test: omp_call("for_next", vec![Expr::name(&bounds)]),
                body: loop_body,
            },
            line,
        ));
        out.extend(epilogue);
        out.push(omp_call_stmt(
            "for_end",
            vec![Expr::name(&bounds), Expr::Bool(nowait)],
        ));
        Ok(out)
    }

    // ---- taskloop ---------------------------------------------------------

    /// `taskloop`: the loop's iterations are packaged into tasks. Generated
    /// shape: an inner function over a chunk `(lo, hi, step)` containing the
    /// original `for`, submitted per chunk by `__omp.taskloop_run`.
    fn handle_taskloop(
        &mut self,
        directive: &Directive,
        body: &[Stmt],
        line: u32,
    ) -> Result<Vec<Stmt>, PyErr> {
        if body.len() != 1 {
            return Err(syntax_err(
                "'taskloop' must wrap exactly one for loop",
                line,
            ));
        }
        let (target, iter, loop_body) = match &body[0].kind {
            StmtKind::For { target, iter, body } => (target, iter, body),
            _ => return Err(syntax_err("'taskloop' must wrap a for loop", line)),
        };
        let var = match target {
            Expr::Name(n) => n.clone(),
            _ => return Err(syntax_err("taskloop variables must be simple names", line)),
        };
        let (start, stop, step) = range_triplet(iter)
            .ok_or_else(|| syntax_err("'taskloop' requires a range(...)-based loop", line))?;

        let mut inner = self.transform_block(loop_body)?;
        let ds = DataSharing::from_clauses(&directive.clauses);
        let fp_params: Vec<Param> = ds
            .firstprivates
            .iter()
            .map(|v| Param {
                name: v.clone(),
                default: Some(Expr::name(v)),
            })
            .collect();
        let ds_no_fp = DataSharing {
            firstprivates: Vec::new(),
            ..clone_ds(&ds)
        };
        let (prologue, epilogue, mut nonlocals) =
            self.privatize(&ds_no_fp, &mut inner, loop_body, false, None, line)?;
        nonlocals.retain(|n| !ds.firstprivates.contains(n) && n != &var);

        let id = self.next_id();
        let fname = format!("__omp_taskloop_{id}");
        let (lo_p, hi_p, st_p) = (
            format!("__omp_lo_{id}"),
            format!("__omp_hi_{id}"),
            format!("__omp_st_{id}"),
        );
        let mut func_body = Vec::new();
        if !nonlocals.is_empty() {
            func_body.push(Stmt::synth(StmtKind::Nonlocal(nonlocals)));
        }
        func_body.extend(prologue);
        let for_body = inner;
        func_body.push(Stmt::synth(StmtKind::For {
            target: Expr::name(&var),
            iter: Expr::call(
                Expr::name("range"),
                vec![Expr::name(&lo_p), Expr::name(&hi_p), Expr::name(&st_p)],
            ),
            body: for_body,
        }));
        func_body.extend(epilogue);

        let mut params = vec![
            Param {
                name: lo_p,
                default: None,
            },
            Param {
                name: hi_p,
                default: None,
            },
            Param {
                name: st_p,
                default: None,
            },
        ];
        params.extend(fp_params);

        let func_def = Arc::new(FuncDef {
            name: fname.clone(),
            params,
            body: func_body,
            decorators: Vec::new(),
            line,
        });

        let clause_expr = |pick: &dyn Fn(&Clause) -> Option<String>| -> Result<Expr, PyErr> {
            match directive.find_clause(pick) {
                Some(text) => parse_clause_expr(&text, line),
                None => Ok(Expr::None),
            }
        };
        let grainsize = clause_expr(&|c| match c {
            Clause::Grainsize(e) => Some(e.clone()),
            _ => None,
        })?;
        let num_tasks = clause_expr(&|c| match c {
            Clause::NumTasks(e) => Some(e.clone()),
            _ => None,
        })?;
        let nogroup = directive
            .clauses
            .iter()
            .any(|c| matches!(c, Clause::Nogroup));

        Ok(vec![
            Stmt::new(StmtKind::FuncDef(func_def), line),
            omp_call_stmt(
                "taskloop_run",
                vec![
                    Expr::name(&fname),
                    start,
                    stop,
                    step,
                    grainsize,
                    num_tasks,
                    Expr::Bool(nogroup),
                ],
            ),
        ])
    }

    // ---- sections --------------------------------------------------------------

    fn handle_sections(
        &mut self,
        directive: &Directive,
        body: &[Stmt],
        line: u32,
    ) -> Result<Vec<Stmt>, PyErr> {
        // The body must be a sequence of `with omp("section"):` blocks.
        let mut section_bodies: Vec<Vec<Stmt>> = Vec::new();
        for stmt in body {
            match &stmt.kind {
                StmtKind::With {
                    items,
                    body: section_body,
                } if items.len() == 1 => {
                    let text = omp_directive_text(&items[0].context).ok_or_else(|| {
                        syntax_err("'sections' may only contain 'section' blocks", stmt.line)
                    })?;
                    let d =
                        Directive::parse(text).map_err(|e| syntax_err(e.to_string(), stmt.line))?;
                    if d.kind != DirectiveKind::Section {
                        return Err(syntax_err(
                            "'sections' may only contain 'section' blocks",
                            stmt.line,
                        ));
                    }
                    section_bodies.push(self.transform_block(section_body)?);
                }
                StmtKind::Pass => {}
                _ => {
                    return Err(syntax_err(
                        "'sections' may only contain 'section' blocks",
                        stmt.line,
                    ))
                }
            }
        }
        if section_bodies.is_empty() {
            return Err(syntax_err(
                "'sections' requires at least one 'section'",
                line,
            ));
        }

        let nowait = directive.has_nowait();
        let handle = format!("__omp_sections_{}", self.next_id());
        let index = format!("__omp_section_i_{}", self.next_id());
        let n = section_bodies.len();

        // Dispatch chain: if i == 0: ... elif i == 1: ...
        let mut dispatch: Vec<Stmt> = Vec::new();
        for (i, sbody) in section_bodies.into_iter().enumerate().rev() {
            let test = Expr::Compare {
                left: Box::new(Expr::name(&index)),
                ops: vec![CmpOp::Eq],
                comparators: vec![Expr::Int(i as i64)],
            };
            dispatch = vec![Stmt::synth(StmtKind::If {
                test,
                body: sbody,
                orelse: dispatch,
            })];
        }

        let mut while_body = vec![
            assign(&index, omp_call("sections_next", vec![Expr::name(&handle)])),
            Stmt::synth(StmtKind::If {
                test: Expr::Compare {
                    left: Box::new(Expr::name(&index)),
                    ops: vec![CmpOp::Lt],
                    comparators: vec![Expr::Int(0)],
                },
                body: vec![Stmt::synth(StmtKind::Break)],
                orelse: Vec::new(),
            }),
        ];
        while_body.extend(dispatch);

        Ok(vec![
            assign(
                &handle,
                omp_call("sections_begin", vec![Expr::Int(n as i64)]),
            ),
            Stmt::new(
                StmtKind::While {
                    test: Expr::Bool(true),
                    body: while_body,
                },
                line,
            ),
            omp_call_stmt(
                "sections_end",
                vec![Expr::name(&handle), Expr::Bool(nowait)],
            ),
        ])
    }

    // ---- single -----------------------------------------------------------------

    fn handle_single(
        &mut self,
        directive: &Directive,
        body: &[Stmt],
        line: u32,
    ) -> Result<Vec<Stmt>, PyErr> {
        let mut inner = self.transform_block(body)?;
        let ds = DataSharing::from_clauses(&directive.clauses);
        let (prologue, epilogue, _nonlocals) =
            self.privatize(&ds, &mut inner, body, false, None, line)?;

        let copyprivate: Vec<String> = directive
            .clauses
            .iter()
            .filter_map(|c| match c {
                Clause::Copyprivate(v) => Some(v.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        let nowait = directive.has_nowait();

        let handle = format!("__omp_single_{}", self.next_id());
        let mut out = vec![assign(&handle, omp_call("single_begin", vec![]))];
        let mut if_body = prologue;
        if_body.extend(inner);
        if_body.extend(epilogue);
        if !copyprivate.is_empty() {
            // Winner publishes [x, y, ...].
            if_body.push(omp_call_stmt(
                "copyprivate_set",
                vec![
                    Expr::name(&handle),
                    Expr::List(copyprivate.iter().map(Expr::name).collect()),
                ],
            ));
        }
        out.push(Stmt::new(
            StmtKind::If {
                test: omp_call("single_claim", vec![Expr::name(&handle)]),
                body: if_body,
                orelse: Vec::new(),
            },
            line,
        ));
        if !copyprivate.is_empty() {
            let cp = format!("__omp_cp_{}", self.next_id());
            out.push(assign(
                &cp,
                omp_call("copyprivate_get", vec![Expr::name(&handle)]),
            ));
            for (i, var) in copyprivate.iter().enumerate() {
                out.push(assign(
                    var,
                    Expr::index(Expr::name(&cp), Expr::Int(i as i64)),
                ));
            }
        }
        out.push(omp_call_stmt(
            "single_end",
            vec![
                Expr::name(&handle),
                Expr::Bool(nowait && copyprivate.is_empty()),
            ],
        ));
        Ok(out)
    }
}

fn clone_ds(ds: &DataSharing) -> DataSharing {
    DataSharing {
        privates: ds.privates.clone(),
        firstprivates: ds.firstprivates.clone(),
        lastprivates: ds.lastprivates.clone(),
        shared: ds.shared.clone(),
        reductions: ds.reductions.clone(),
        default: ds.default,
        copyin: ds.copyin.clone(),
    }
}

/// Names declared `global` anywhere in a block.
fn declared_globals(stmts: &[Stmt]) -> HashSet<String> {
    let mut out = HashSet::new();
    fn walk(stmts: &[Stmt], out: &mut HashSet<String>) {
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::Global(names) => out.extend(names.iter().cloned()),
                StmtKind::If { body, orelse, .. } => {
                    walk(body, out);
                    walk(orelse, out);
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, out),
                StmtKind::With { body, .. } => walk(body, out),
                StmtKind::Try {
                    body,
                    handlers,
                    orelse,
                    finalbody,
                } => {
                    walk(body, out);
                    for h in handlers {
                        walk(&h.body, out);
                    }
                    walk(orelse, out);
                    walk(finalbody, out);
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

/// Emit the reduction merge statement (`x += __omp_x`, `x = min(x, __omp_x)`,
/// `x = x and __omp_x`, or a `reduce_combine` call for custom operators).
fn reduction_merge_stmt(op: &ReductionOp, var: &str, private: &str) -> Stmt {
    let aug = |bin: BinOp| {
        Stmt::synth(StmtKind::AugAssign {
            target: Expr::name(var),
            op: bin,
            value: Expr::name(private),
        })
    };
    let call_merge = |fname: &str| {
        Stmt::synth(StmtKind::Assign {
            targets: vec![Expr::name(var)],
            value: Expr::call(
                Expr::name(fname),
                vec![Expr::name(var), Expr::name(private)],
            ),
        })
    };
    match op {
        ReductionOp::Add | ReductionOp::Sub => aug(BinOp::Add),
        ReductionOp::Mul => aug(BinOp::Mul),
        ReductionOp::BitAnd => aug(BinOp::BitAnd),
        ReductionOp::BitOr => aug(BinOp::BitOr),
        ReductionOp::BitXor => aug(BinOp::BitXor),
        ReductionOp::Min => call_merge("min"),
        ReductionOp::Max => call_merge("max"),
        ReductionOp::LogicalAnd => Stmt::synth(StmtKind::Assign {
            targets: vec![Expr::name(var)],
            value: Expr::BoolOp {
                op: BoolOpKind::And,
                values: vec![Expr::name(var), Expr::name(private)],
            },
        }),
        ReductionOp::LogicalOr => Stmt::synth(StmtKind::Assign {
            targets: vec![Expr::name(var)],
            value: Expr::BoolOp {
                op: BoolOpKind::Or,
                values: vec![Expr::name(var), Expr::name(private)],
            },
        }),
        ReductionOp::Custom(name) => Stmt::synth(StmtKind::Assign {
            targets: vec![Expr::name(var)],
            value: omp_call(
                "reduce_combine",
                vec![str_lit(name), Expr::name(var), Expr::name(private)],
            ),
        }),
    }
}

/// Split combined `parallel for`/`parallel sections` clauses into
/// (worksharing clauses, parallel clauses).
fn split_combined_clauses(directive: &Directive) -> (Vec<Clause>, Vec<Clause>) {
    let mut ws = Vec::new();
    let mut par = Vec::new();
    for clause in &directive.clauses {
        match clause {
            Clause::Schedule { .. }
            | Clause::Collapse(_)
            | Clause::Ordered
            | Clause::Lastprivate(_) => ws.push(clause.clone()),
            _ => par.push(clause.clone()),
        }
    }
    (ws, par)
}

/// Extract `(start, stop, step)` expressions from a `range(...)` call.
fn range_triplet(iter: &Expr) -> Option<(Expr, Expr, Expr)> {
    match iter {
        Expr::Call { func, args, kwargs } if kwargs.is_empty() => match &**func {
            Expr::Name(name) if name == "range" => match args.len() {
                1 => Some((Expr::Int(0), args[0].clone(), Expr::Int(1))),
                2 => Some((args[0].clone(), args[1].clone(), Expr::Int(1))),
                3 => Some((args[0].clone(), args[1].clone(), args[2].clone())),
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

/// Map a schedule clause kind to its runtime string (used by tests).
pub fn schedule_name(kind: ScheduleKind) -> &'static str {
    kind.name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_site_ids_are_deterministic_and_tag_safe() {
        let id = loop_site_id("pi", 9);
        assert_eq!(id, loop_site_id("pi", 9));
        assert_ne!(id, loop_site_id("pi", 10));
        assert_ne!(id, loop_site_id("jacobi", 9));
        // Must stay below the interpreted-site tag bit (and the sign bit).
        assert!((0..(1 << 62)).contains(&id));
        assert!((0..(1 << 62)).contains(&loop_site_id("", 0)));
    }

    #[test]
    fn retransform_reuses_loop_site_ids() {
        let src = "\
def work(n):
    total = 0
    with omp(\"parallel for reduction(+:total)\"):
        for i in range(n):
            total += i
    return total
";
        let dump = || {
            let module = minipy::parse(src).expect("parse");
            let def = match &module.body[0].kind {
                StmtKind::FuncDef(def) => transform_function(def).expect("transform"),
                other => panic!("expected FuncDef, got {other:?}"),
            };
            minipy::print_module(&minipy::Module {
                body: vec![Stmt::synth(StmtKind::FuncDef(Arc::new(def)))],
            })
        };
        // Re-decorating the same source (REPL re-`exec`) must bake the same
        // site id into `for_init`, not a fresh one per transform.
        assert_eq!(dump(), dump());
    }

    /// The bytecode VM caches the callable each `__omp.<intrinsic>()` call
    /// site resolves to for the duration of a frame; that is sound only
    /// because generated code never rebinds `__omp`. Hold the transform to
    /// that invariant: no assignment-like construct in any generated
    /// function (or its nested bodies) may target the `__omp` name.
    #[test]
    fn generated_code_never_rebinds_the_runtime_binding() {
        fn check_target(e: &Expr) {
            if let Expr::Name(n) = e {
                assert_ne!(n, "__omp", "generated code rebinds __omp");
            }
            if let Expr::Tuple(items) | Expr::List(items) = e {
                items.iter().for_each(check_target);
            }
        }
        fn check_body(body: &[Stmt]) {
            for stmt in body {
                match &stmt.kind {
                    StmtKind::Assign { targets, .. } => targets.iter().for_each(check_target),
                    StmtKind::AugAssign { target, .. } => check_target(target),
                    StmtKind::For { target, body, .. } => {
                        check_target(target);
                        check_body(body);
                    }
                    StmtKind::Del(targets) => targets.iter().for_each(check_target),
                    StmtKind::FuncDef(def) => {
                        assert!(
                            def.params.iter().all(|p| p.name != "__omp"),
                            "generated function shadows __omp via a parameter"
                        );
                        check_body(&def.body);
                    }
                    StmtKind::If { body, orelse, .. } => {
                        check_body(body);
                        check_body(orelse);
                    }
                    StmtKind::While { body, .. } => check_body(body),
                    StmtKind::With { items, body } => {
                        for item in items {
                            assert!(
                                item.alias.as_deref() != Some("__omp"),
                                "generated code rebinds __omp via `with … as`"
                            );
                        }
                        check_body(body);
                    }
                    StmtKind::Try {
                        body,
                        handlers,
                        orelse,
                        finalbody,
                    } => {
                        check_body(body);
                        for h in handlers {
                            check_body(&h.body);
                        }
                        check_body(orelse);
                        check_body(finalbody);
                    }
                    _ => {}
                }
            }
        }
        for src in [
            "def pi(n):\n    pi_value = 0.0\n    w = 1.0 / n\n    with omp(\"parallel for reduction(+:pi_value)\"):\n        for i in range(n):\n            local = (i + 0.5) * w\n            pi_value += 4.0 / (1.0 + local * local)\n    return pi_value * w\n",
            "def count(n):\n    total = 0\n    with omp(\"parallel\"):\n        with omp(\"critical\"):\n            total += 1\n        omp(\"barrier\")\n    return total\n",
            "def tasks(n):\n    acc = []\n    with omp(\"parallel\"):\n        with omp(\"single\"):\n            for i in range(n):\n                with omp(\"task\"):\n                    acc.append(i)\n    return acc\n",
        ] {
            let module = minipy::parse(src).expect("parse");
            let def = match &module.body[0].kind {
                StmtKind::FuncDef(def) => transform_function(def).expect("transform"),
                other => panic!("expected FuncDef, got {other:?}"),
            };
            check_body(&def.body);
        }
    }
}
