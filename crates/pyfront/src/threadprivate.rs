//! `threadprivate` support: a program-wide registry of thread-private names
//! plus the AST pass that redirects their reads/writes through the runtime's
//! per-thread storage (`__omp.tp_get` / `__omp.tp_set`).

use std::collections::HashSet;
use std::sync::OnceLock;

use minipy::ast::{Expr, Stmt, StmtKind};
use minipy::error::{ErrKind, PyErr};
use parking_lot::RwLock;

fn registry() -> &'static RwLock<HashSet<String>> {
    static REGISTRY: OnceLock<RwLock<HashSet<String>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashSet::new()))
}

/// Register names declared `threadprivate`.
pub fn register(names: &[String]) {
    registry().write().extend(names.iter().cloned());
}

/// The currently registered thread-private names.
pub fn registered() -> HashSet<String> {
    registry().read().clone()
}

/// Clear the registry (tests).
pub fn reset() {
    registry().write().clear();
}

fn tp_get(name: &str) -> Expr {
    Expr::call(
        Expr::attr(Expr::name("__omp"), "tp_get"),
        vec![Expr::Str(name.to_owned())],
    )
}

fn tp_set_stmt(name: &str, value: Expr) -> Stmt {
    Stmt::synth(StmtKind::Expr(Expr::call(
        Expr::attr(Expr::name("__omp"), "tp_set"),
        vec![Expr::Str(name.to_owned()), value],
    )))
}

/// Rewrite a block so reads/writes of thread-private names go through the
/// runtime.
///
/// # Errors
///
/// Returns a `SyntaxError` for unsupported shapes (deleting a thread-private
/// name, unpacking into one).
pub fn apply(stmts: &mut Vec<Stmt>, names: &HashSet<String>) -> Result<(), PyErr> {
    let rewritten = std::mem::take(stmts)
        .into_iter()
        .map(|s| rewrite_stmt(s, names))
        .collect::<Result<Vec<Vec<Stmt>>, PyErr>>()?;
    *stmts = rewritten.into_iter().flatten().collect();
    Ok(())
}

fn is_tp_target(e: &Expr, names: &HashSet<String>) -> bool {
    matches!(e, Expr::Name(n) if names.contains(n))
}

fn rewrite_block(body: Vec<Stmt>, names: &HashSet<String>) -> Result<Vec<Stmt>, PyErr> {
    let mut out = Vec::with_capacity(body.len());
    for stmt in body {
        out.extend(rewrite_stmt(stmt, names)?);
    }
    Ok(out)
}

fn rewrite_stmt(stmt: Stmt, names: &HashSet<String>) -> Result<Vec<Stmt>, PyErr> {
    let line = stmt.line;
    let kind = match stmt.kind {
        StmtKind::Assign { targets, value } => {
            let value = subst(value, names);
            let any_tp = targets.iter().any(|t| is_tp_target(t, names));
            if !any_tp {
                let targets = targets
                    .into_iter()
                    .map(|t| subst_target(t, names))
                    .collect::<Vec<_>>();
                StmtKind::Assign { targets, value }
            } else if targets.len() == 1 {
                let name = match &targets[0] {
                    Expr::Name(n) => n.clone(),
                    _ => unreachable!("checked by is_tp_target"),
                };
                return Ok(vec![tp_set_stmt(&name, value)]);
            } else {
                // a = tp = expr : evaluate once, then store to each target.
                let tmp = "__omp_tp_tmp".to_owned();
                let mut out = vec![Stmt::new(
                    StmtKind::Assign {
                        targets: vec![Expr::name(&tmp)],
                        value,
                    },
                    line,
                )];
                for t in targets {
                    if let Expr::Name(n) = &t {
                        if names.contains(n) {
                            out.push(tp_set_stmt(n, Expr::name(&tmp)));
                            continue;
                        }
                    }
                    out.push(Stmt::new(
                        StmtKind::Assign {
                            targets: vec![subst_target(t, names)],
                            value: Expr::name(&tmp),
                        },
                        line,
                    ));
                }
                return Ok(out);
            }
        }
        StmtKind::AugAssign { target, op, value } => {
            let value = subst(value, names);
            if let Expr::Name(n) = &target {
                if names.contains(n) {
                    let combined = Expr::Binary {
                        op,
                        left: Box::new(tp_get(n)),
                        right: Box::new(value),
                    };
                    return Ok(vec![tp_set_stmt(n, combined)]);
                }
            }
            StmtKind::AugAssign {
                target: subst_target(target, names),
                op,
                value,
            }
        }
        StmtKind::Expr(e) => StmtKind::Expr(subst(e, names)),
        StmtKind::Return(v) => StmtKind::Return(v.map(|e| subst(e, names))),
        StmtKind::If { test, body, orelse } => StmtKind::If {
            test: subst(test, names),
            body: rewrite_block(body, names)?,
            orelse: rewrite_block(orelse, names)?,
        },
        StmtKind::While { test, body } => StmtKind::While {
            test: subst(test, names),
            body: rewrite_block(body, names)?,
        },
        StmtKind::For { target, iter, body } => {
            if is_tp_target(&target, names) {
                return Err(PyErr::at(
                    ErrKind::Syntax,
                    "a threadprivate variable cannot be a loop target",
                    line,
                ));
            }
            StmtKind::For {
                target,
                iter: subst(iter, names),
                body: rewrite_block(body, names)?,
            }
        }
        StmtKind::With { items, body } => StmtKind::With {
            items: items
                .into_iter()
                .map(|mut i| {
                    i.context = subst(i.context, names);
                    i
                })
                .collect(),
            body: rewrite_block(body, names)?,
        },
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => StmtKind::Try {
            body: rewrite_block(body, names)?,
            handlers: handlers
                .into_iter()
                .map(|mut h| {
                    h.body = rewrite_block(std::mem::take(&mut h.body), names)?;
                    Ok(h)
                })
                .collect::<Result<Vec<_>, PyErr>>()?,
            orelse: rewrite_block(orelse, names)?,
            finalbody: rewrite_block(finalbody, names)?,
        },
        StmtKind::Assert { test, msg } => StmtKind::Assert {
            test: subst(test, names),
            msg: msg.map(|m| subst(m, names)),
        },
        StmtKind::Raise(v) => StmtKind::Raise(v.map(|e| subst(e, names))),
        StmtKind::Del(targets) => {
            if targets.iter().any(|t| is_tp_target(t, names)) {
                return Err(PyErr::at(
                    ErrKind::Syntax,
                    "cannot delete a threadprivate variable",
                    line,
                ));
            }
            StmtKind::Del(targets)
        }
        StmtKind::FuncDef(def) => {
            // threadprivate names are program-global (like C file-scope
            // threadprivate variables): they are rewritten inside nested
            // functions too, unless shadowed by a parameter.
            let mut inner_names = names.clone();
            for p in &def.params {
                inner_names.remove(&p.name);
            }
            let mut def = (*def).clone();
            if !inner_names.is_empty() {
                def.body = rewrite_block(def.body, &inner_names)?;
            }
            StmtKind::FuncDef(std::sync::Arc::new(def))
        }
        other => other,
    };
    Ok(vec![Stmt::new(kind, line)])
}

/// Substitute reads of thread-private names with `tp_get` calls.
fn subst(e: Expr, names: &HashSet<String>) -> Expr {
    match e {
        Expr::Name(n) if names.contains(&n) => tp_get(&n),
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(subst(*left, names)),
            right: Box::new(subst(*right, names)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op,
            operand: Box::new(subst(*operand, names)),
        },
        Expr::BoolOp { op, values } => Expr::BoolOp {
            op,
            values: values.into_iter().map(|v| subst(v, names)).collect(),
        },
        Expr::Compare {
            left,
            ops,
            comparators,
        } => Expr::Compare {
            left: Box::new(subst(*left, names)),
            ops,
            comparators: comparators.into_iter().map(|c| subst(c, names)).collect(),
        },
        Expr::Call { func, args, kwargs } => Expr::Call {
            func: Box::new(subst(*func, names)),
            args: args.into_iter().map(|a| subst(a, names)).collect(),
            kwargs: kwargs
                .into_iter()
                .map(|(k, v)| (k, subst(v, names)))
                .collect(),
        },
        Expr::Attribute { value, attr } => Expr::Attribute {
            value: Box::new(subst(*value, names)),
            attr,
        },
        Expr::Index { value, index } => Expr::Index {
            value: Box::new(subst(*value, names)),
            index: Box::new(subst(*index, names)),
        },
        Expr::Slice { lower, upper, step } => Expr::Slice {
            lower: lower.map(|e| Box::new(subst(*e, names))),
            upper: upper.map(|e| Box::new(subst(*e, names))),
            step: step.map(|e| Box::new(subst(*e, names))),
        },
        Expr::List(items) => Expr::List(items.into_iter().map(|i| subst(i, names)).collect()),
        Expr::Tuple(items) => Expr::Tuple(items.into_iter().map(|i| subst(i, names)).collect()),
        Expr::Dict(items) => Expr::Dict(
            items
                .into_iter()
                .map(|(k, v)| (subst(k, names), subst(v, names)))
                .collect(),
        ),
        Expr::IfExp { test, body, orelse } => Expr::IfExp {
            test: Box::new(subst(*test, names)),
            body: Box::new(subst(*body, names)),
            orelse: Box::new(subst(*orelse, names)),
        },
        Expr::Lambda { params, body } => {
            let mut inner = names.clone();
            for p in &params {
                inner.remove(&p.name);
            }
            let body = Box::new(subst(*body, &inner));
            Expr::Lambda { params, body }
        }
        other => other,
    }
}

/// Substitute reads inside assignment targets (e.g. `d[tp_var] = x` reads
/// `tp_var`) without rewriting the target name itself.
fn subst_target(e: Expr, names: &HashSet<String>) -> Expr {
    match e {
        Expr::Name(n) => Expr::Name(n),
        Expr::Index { value, index } => Expr::Index {
            value: Box::new(subst(*value, names)),
            index: Box::new(subst(*index, names)),
        },
        Expr::Tuple(items) => {
            Expr::Tuple(items.into_iter().map(|i| subst_target(i, names)).collect())
        }
        Expr::List(items) => {
            Expr::List(items.into_iter().map(|i| subst_target(i, names)).collect())
        }
        other => other,
    }
}
