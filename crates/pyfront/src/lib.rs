//! # omp4rs-pyfront — the OMP4Py-style frontend
//!
//! This crate is the paper's *parser* (§III-A) plus its interpreter bridge:
//! it turns `@omp`-decorated minipy functions containing `with omp("…")`
//! directives into code that drives the [`omp4rs`] runtime, and exposes the
//! OpenMP API to interpreted programs.
//!
//! Execution modes (paper §III-B):
//!
//! * [`ExecMode::Pure`] — interpreted user code + mutex-based runtime
//!   internals (the pure-Python `runtime`).
//! * [`ExecMode::Hybrid`] — interpreted user code + atomics-based runtime
//!   internals (the Cython `cruntime`). The default.
//!
//! # Examples
//!
//! The paper's Fig. 1 π program, verbatim:
//!
//! ```
//! use minipy::Interp;
//! use omp4rs_pyfront::{install, ExecMode};
//!
//! # fn main() -> Result<(), minipy::PyErr> {
//! let interp = Interp::new();
//! install(&interp, ExecMode::Hybrid);
//! let src = r#"
//! from omp4py import *
//!
//! @omp
//! def pi(n):
//!     w = 1.0 / n
//!     pi_value = 0.0
//!     with omp("parallel for reduction(+:pi_value)"):
//!         for i in range(n):
//!             local = (i + 0.5) * w
//!             pi_value += 4.0 / (1.0 + local * local)
//!     return pi_value * w
//! "#;
//! interp.run(src)?;
//! let pi = interp.get_global("pi").unwrap();
//! let value = interp.call(&pi, vec![minipy::Value::Int(10_000)])?;
//! assert!((value.as_float()? - std::f64::consts::PI).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

// Public API items carry doc comments; enum struct-variant fields are
// documented at the variant level.
#![warn(missing_docs)]
#![allow(missing_docs)]

pub mod bridge;
pub mod scope;
pub mod threadprivate;
pub mod transform;

pub use bridge::{install, sync_interp_counters, ExecMode};
pub use transform::transform_function;

use minipy::error::PyErr;
use minipy::{Interp, Value};

/// Convenience runner: an interpreter with the OMP4Py bridge installed.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minipy::PyErr> {
/// let runner = omp4rs_pyfront::Runner::new(omp4rs_pyfront::ExecMode::Hybrid);
/// runner.run("from omp4py import *\nx = omp_get_num_procs()\n")?;
/// assert!(runner.interp().get_global("x").unwrap().as_int()? >= 1);
/// # Ok(())
/// # }
/// ```
pub struct Runner {
    interp: Interp,
    mode: ExecMode,
}

impl Runner {
    /// Create a runner in the given execution mode.
    pub fn new(mode: ExecMode) -> Runner {
        let interp = Interp::new();
        install(&interp, mode);
        Runner { interp, mode }
    }

    /// Create a runner around an existing interpreter (e.g. one with a
    /// GIL-enabled configuration or captured output).
    pub fn with_interp(interp: Interp, mode: ExecMode) -> Runner {
        install(&interp, mode);
        Runner { interp, mode }
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The underlying interpreter.
    pub fn interp(&self) -> &Interp {
        &self.interp
    }

    /// Run a source program.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn run(&self, src: &str) -> Result<(), PyErr> {
        self.interp.run(src)
    }

    /// Call a global function by name.
    ///
    /// # Errors
    ///
    /// `NameError` if the global does not exist; otherwise the call's error.
    pub fn call_global(&self, name: &str, args: Vec<Value>) -> Result<Value, PyErr> {
        let f = self
            .interp
            .get_global(name)
            .ok_or_else(|| minipy::error::name_err(name))?;
        self.interp.call(&f, args)
    }
}
