//! The `__omp` runtime module and the `omp4py` user-facing module.
//!
//! [`install`] wires a [`minipy::Interp`] to the `omp4rs` runtime:
//!
//! * binds `__omp` (the low-level intrinsics the transformer targets —
//!   `parallel_run`, `for_bounds`/`for_init`/`for_next`, `task_submit`, …);
//! * registers the importable `omp4py` module exporting the `omp`
//!   decorator/directive function and the OpenMP runtime API
//!   (`omp_get_num_threads`, `omp_set_nested`, …).
//!
//! The chosen [`ExecMode`] decides the synchronization backend of every team
//! the bridge creates: **Pure** → mutex internals, **Hybrid** → atomics,
//! exactly the paper's `runtime` vs `cruntime` split.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use minipy::builtins::ModuleObj;
use minipy::error::{ErrKind, PyErr};
use minipy::value::FuncValue;
use minipy::{Args, Interp, NativeFunc, Opaque, Value};
use omp4rs::context;
use omp4rs::depgraph::Dep;
use omp4rs::directive::{CancelConstruct, Directive, DirectiveKind, ScheduleKind};
use omp4rs::exec::ParallelConfig;
use omp4rs::locks::OmpLock;
use omp4rs::reduction::{declare_reduction, declared_reduction, DeclaredReduction};
use omp4rs::schedule::{ForBounds, LoopDims, ResolvedSchedule};
use omp4rs::sync::Backend;
use omp4rs::worksharing::WsInstance;
use parking_lot::Mutex;

use crate::threadprivate;
use crate::transform::transform_function;

/// Execution mode of interpreted code (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Interpreted user code + mutex runtime internals (paper *Pure*).
    Pure,
    /// Interpreted user code + atomic runtime internals (paper *Hybrid*).
    #[default]
    Hybrid,
}

impl ExecMode {
    /// The synchronization backend this mode uses.
    pub fn backend(self) -> Backend {
        match self {
            ExecMode::Pure => Backend::Mutex,
            ExecMode::Hybrid => Backend::Atomic,
        }
    }

    /// Paper name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Pure => "Pure",
            ExecMode::Hybrid => "Hybrid",
        }
    }
}

/// Panic payload used to carry interpreter errors out of task bodies.
struct TaskPyErr(PyErr);

/// High-bit tag mixed into transform-assigned loop-site ids so interpreted
/// loops can never collide with compiled-mode call-site hashes in the
/// adaptive schedule registry.
const INTERP_SITE_TAG: u64 = 1 << 62;

fn err(kind: ErrKind, msg: impl Into<String>) -> PyErr {
    PyErr::new(kind, msg)
}

fn runtime_err(msg: impl Into<String>) -> PyErr {
    err(ErrKind::Runtime, msg)
}

// ---- opaque state objects -------------------------------------------------

/// Loop state behind the `__omp_bounds` list (the paper's numeric array plus
/// its native scheduling state).
struct BoundsState {
    fb: Mutex<Option<ForBounds>>,
    triplets: Mutex<Vec<i64>>,
    seq: Mutex<Option<u64>>,
    instance: Mutex<Option<Arc<WsInstance>>>,
    rank: Mutex<usize>,
    ordered: Mutex<bool>,
}

impl std::fmt::Debug for BoundsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundsState").finish()
    }
}

impl Opaque for BoundsState {
    fn type_name(&self) -> &str {
        "omp_bounds"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// State behind `single`/`sections` handles.
struct RegionState {
    inst: Option<Arc<WsInstance>>,
    seq: Option<u64>,
    n_sections: u64,
    /// Whether this thread executed the final section (lastprivate).
    ran_last: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for RegionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionState").finish()
    }
}

impl Opaque for RegionState {
    fn type_name(&self) -> &str {
        "omp_region"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn downcast<'a, T: 'static>(v: &'a Value, what: &str) -> Result<&'a T, PyErr> {
    match v {
        Value::Opaque(o) => o
            .as_any()
            .downcast_ref::<T>()
            .ok_or_else(|| err(ErrKind::Type, format!("expected {what}"))),
        _ => Err(err(ErrKind::Type, format!("expected {what}"))),
    }
}

fn bounds_state(bounds: &Value) -> Result<Arc<dyn Opaque>, PyErr> {
    match bounds {
        // The modern shape: `for_bounds` hands back the state directly, so
        // intrinsics on the hot loop path take no per-object lock here.
        Value::Opaque(o) => Ok(Arc::clone(o)),
        // Legacy shape (pre-hoisting callers and hand-written code): a list
        // whose element 3 carries the state.
        Value::List(items) => {
            let items = items.read();
            match items.get(3) {
                Some(Value::Opaque(o)) => Ok(Arc::clone(o)),
                _ => Err(err(ErrKind::Type, "malformed __omp bounds object")),
            }
        }
        _ => Err(err(ErrKind::Type, "expected __omp bounds object")),
    }
}

fn with_bounds<R>(
    list: &Value,
    f: impl FnOnce(&BoundsState) -> Result<R, PyErr>,
) -> Result<R, PyErr> {
    let o = bounds_state(list)?;
    let state = o
        .as_any()
        .downcast_ref::<BoundsState>()
        .ok_or_else(|| err(ErrKind::Type, "malformed __omp bounds object"))?;
    f(state)
}

// ---- thread-private storage ------------------------------------------------

thread_local! {
    static TP_STORE: RefCell<HashMap<String, Value>> = RefCell::new(HashMap::new());
}

// ---- named enter/exit locks --------------------------------------------------

fn named_lock(name: &str) -> Arc<OmpLock> {
    static LOCKS: OnceLock<Mutex<HashMap<String, Arc<OmpLock>>>> = OnceLock::new();
    let registry = LOCKS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock();
    Arc::clone(map.entry(name.to_owned()).or_default())
}

// ---- helpers ---------------------------------------------------------------

fn current_team() -> Option<Arc<omp4rs::Team>> {
    context::current_frame().map(|f| Arc::clone(&f.team))
}

fn blocking<R>(interp: &Interp, f: impl FnOnce() -> R) -> R {
    interp.gil().allow_threads(f)
}

// ---- installation -------------------------------------------------------------

/// Wire an interpreter to the OpenMP runtime in the given mode.
///
/// Binds the `__omp` global and registers the `omp4py` module. Idempotent
/// per interpreter (later calls replace the mode).
pub fn install(interp: &Interp, mode: ExecMode) {
    // Mirror the `OMP4RS_MINIPY_VM` ICV into the interpreter's bytecode
    // tier. `Icvs` owns the env parse (and test overrides via
    // `Icvs::update`); the interpreter only sees the resolved mode.
    let icvs = omp4rs::Icvs::current();
    minipy::bytecode::set_mode(match icvs.minipy_vm {
        omp4rs::MinipyVm::Off => minipy::bytecode::VmMode::Off,
        omp4rs::MinipyVm::Auto => minipy::bytecode::VmMode::Auto,
        omp4rs::MinipyVm::On => minipy::bytecode::VmMode::On,
    });
    // Same mirror for the VM's quickening tier (`OMP4RS_MINIPY_QUICKEN`).
    minipy::bytecode::set_quicken_mode(match icvs.minipy_quicken {
        omp4rs::MinipyQuicken::Off => minipy::bytecode::QuickenMode::Off,
        omp4rs::MinipyQuicken::Auto => minipy::bytecode::QuickenMode::Auto,
        omp4rs::MinipyQuicken::On => minipy::bytecode::QuickenMode::On,
    });
    let runtime = build_runtime_module(mode);
    interp.set_global("__omp", runtime.clone());

    let omp4py = ModuleObj::new("omp4py");
    omp4py.set("omp", make_omp_callable(OmpOptions::default()));
    install_api(&omp4py);
    // `import omp4py; omp4py.omp(...)` needs the runtime reachable too.
    omp4py.set("_runtime", runtime);
    interp.register_module("omp4py", omp4py.into_value());

    // `omp4py.pure` forces Pure mode regardless of the installed default
    // (paper §III-F).
    let pure_runtime = build_runtime_module(ExecMode::Pure);
    let pure = ModuleObj::new("omp4py.pure");
    pure.set("omp", make_omp_callable(OmpOptions::default()));
    install_api(&pure);
    pure.set("_runtime", pure_runtime);
    interp.register_module("omp4py.pure", pure.into_value());
}

/// Decorator options (paper §III-F: `cache`, `dump`, `debug`, `compile`,
/// `force`, `options`). `cache`/`force`/`compile` are accepted for API
/// compatibility; in this reproduction compiled modes are the native Rust
/// APIs, and there is no bytecode cache.
#[derive(Debug, Clone, Copy, Default)]
struct OmpOptions {
    dump: bool,
    debug: bool,
}

/// The `omp` object: directive container, decorator, and decorator factory.
fn make_omp_callable(options: OmpOptions) -> Value {
    NativeFunc::new("omp", move |interp, args| {
        // Decorator factory: omp(dump=True) → configured decorator.
        if args.pos.is_empty() {
            let mut opts = options;
            for (k, v) in &args.kw {
                match k.as_str() {
                    "dump" => opts.dump = v.truthy(),
                    "debug" => opts.debug = v.truthy(),
                    "cache" | "force" | "compile" | "options" => {}
                    other => {
                        return Err(err(
                            ErrKind::Type,
                            format!("omp() got an unexpected keyword argument '{other}'"),
                        ))
                    }
                }
            }
            return Ok(make_omp_callable(opts));
        }
        match args.req(0)? {
            // Directive container: validate; register declarative directives.
            Value::Str(text) => {
                let d = Directive::parse(text)
                    .map_err(|e| PyErr::new(ErrKind::Syntax, e.to_string()))?;
                match d.kind {
                    DirectiveKind::DeclareReduction {
                        name,
                        combiner,
                        initializer,
                    } => {
                        declare_reduction(
                            &name,
                            DeclaredReduction {
                                combiner,
                                initializer,
                            },
                        );
                    }
                    DirectiveKind::Threadprivate(vars) => {
                        threadprivate::register(&vars);
                    }
                    _ => {}
                }
                Ok(Value::None)
            }
            // Decorator: transform the function.
            Value::Func(fv) => {
                let new_def = transform_function(&fv.def)?;
                if options.dump || options.debug {
                    let module = minipy::Module {
                        body: vec![minipy::ast::Stmt::synth(minipy::ast::StmtKind::FuncDef(
                            Arc::new(new_def.clone()),
                        ))],
                    };
                    interp.write_stdout(&minipy::print_module(&module));
                }
                let def = Arc::new(new_def);
                // `OMP4RS_MINIPY_VM=on`: compile the transformed function
                // and its generated parallel bodies at decoration time, so
                // no compile latency lands on the first parallel region and
                // fallback reasons surface immediately.
                if minipy::bytecode::mode() == minipy::bytecode::VmMode::On {
                    minipy::bytecode::precompile_def(&def);
                }
                Ok(Value::Func(Arc::new(FuncValue {
                    def,
                    closure: fv.closure.clone(),
                    name: fv.name.clone(),
                    defaults: fv.defaults.clone(),
                })))
            }
            other => Err(err(
                ErrKind::Type,
                format!(
                    "omp() expects a directive string or a function, got {}",
                    other.type_name()
                ),
            )),
        }
    })
}

/// Expose the OpenMP 3.0 runtime API to interpreted code.
fn install_api(module: &ModuleObj) {
    module.set(
        "omp_get_num_threads",
        NativeFunc::new("omp_get_num_threads", |_, _| {
            Ok(Value::Int(omp4rs::omp_get_num_threads() as i64))
        }),
    );
    module.set(
        "omp_get_thread_num",
        NativeFunc::new("omp_get_thread_num", |_, _| {
            Ok(Value::Int(omp4rs::omp_get_thread_num() as i64))
        }),
    );
    module.set(
        "omp_get_max_threads",
        NativeFunc::new("omp_get_max_threads", |_, _| {
            Ok(Value::Int(omp4rs::omp_get_max_threads() as i64))
        }),
    );
    module.set(
        "omp_set_num_threads",
        NativeFunc::new("omp_set_num_threads", |_, args: Args| {
            omp4rs::omp_set_num_threads(args.req(0)?.as_int()?.max(0) as usize);
            Ok(Value::None)
        }),
    );
    module.set(
        "omp_get_num_procs",
        NativeFunc::new("omp_get_num_procs", |_, _| {
            Ok(Value::Int(omp4rs::omp_get_num_procs() as i64))
        }),
    );
    module.set(
        "omp_in_parallel",
        NativeFunc::new("omp_in_parallel", |_, _| {
            Ok(Value::Bool(omp4rs::omp_in_parallel()))
        }),
    );
    module.set(
        "omp_set_nested",
        NativeFunc::new("omp_set_nested", |_, args: Args| {
            omp4rs::omp_set_nested(args.req(0)?.truthy());
            Ok(Value::None)
        }),
    );
    module.set(
        "omp_get_nested",
        NativeFunc::new("omp_get_nested", |_, _| {
            Ok(Value::Bool(omp4rs::omp_get_nested()))
        }),
    );
    module.set(
        "omp_set_dynamic",
        NativeFunc::new("omp_set_dynamic", |_, args: Args| {
            omp4rs::omp_set_dynamic(args.req(0)?.truthy());
            Ok(Value::None)
        }),
    );
    module.set(
        "omp_get_dynamic",
        NativeFunc::new("omp_get_dynamic", |_, _| {
            Ok(Value::Bool(omp4rs::omp_get_dynamic()))
        }),
    );
    module.set(
        "omp_get_level",
        NativeFunc::new("omp_get_level", |_, _| {
            Ok(Value::Int(omp4rs::omp_get_level() as i64))
        }),
    );
    module.set(
        "omp_get_active_level",
        NativeFunc::new("omp_get_active_level", |_, _| {
            Ok(Value::Int(omp4rs::omp_get_active_level() as i64))
        }),
    );
    module.set(
        "omp_get_ancestor_thread_num",
        NativeFunc::new("omp_get_ancestor_thread_num", |_, args: Args| {
            Ok(Value::Int(omp4rs::omp_get_ancestor_thread_num(
                args.req(0)?.as_int()?,
            )))
        }),
    );
    module.set(
        "omp_get_team_size",
        NativeFunc::new("omp_get_team_size", |_, args: Args| {
            Ok(Value::Int(omp4rs::omp_get_team_size(
                args.req(0)?.as_int()?,
            )))
        }),
    );
    module.set(
        "omp_get_wtime",
        NativeFunc::new("omp_get_wtime", |_, _| {
            Ok(Value::Float(omp4rs::omp_get_wtime()))
        }),
    );
    module.set(
        "omp_get_wtick",
        NativeFunc::new("omp_get_wtick", |_, _| {
            Ok(Value::Float(omp4rs::omp_get_wtick()))
        }),
    );
    module.set(
        "omp_set_schedule",
        NativeFunc::new("omp_set_schedule", |_, args: Args| {
            let kind = ScheduleKind::parse(args.req(0)?.as_str()?)
                .ok_or_else(|| err(ErrKind::Value, "invalid schedule kind"))?;
            let chunk = match args.opt(1) {
                Some(Value::None) | None => None,
                Some(v) => Some(v.as_int()?.max(1) as u64),
            };
            omp4rs::omp_set_schedule(kind, chunk);
            Ok(Value::None)
        }),
    );
    module.set(
        "omp_get_schedule",
        NativeFunc::new("omp_get_schedule", |_, _| {
            let (kind, chunk) = omp4rs::omp_get_schedule();
            Ok(Value::tuple(vec![
                Value::str(kind.name()),
                chunk.map(|c| Value::Int(c as i64)).unwrap_or(Value::None),
            ]))
        }),
    );
    module.set(
        "omp_get_thread_limit",
        NativeFunc::new("omp_get_thread_limit", |_, _| {
            let limit = omp4rs::omp_get_thread_limit();
            Ok(Value::Int(if limit == usize::MAX {
                i64::MAX
            } else {
                limit as i64
            }))
        }),
    );
    module.set(
        "omp_set_max_active_levels",
        NativeFunc::new("omp_set_max_active_levels", |_, args: Args| {
            omp4rs::omp_set_max_active_levels(args.req(0)?.as_int()?.max(0) as usize);
            Ok(Value::None)
        }),
    );
    module.set(
        "omp_get_max_active_levels",
        NativeFunc::new("omp_get_max_active_levels", |_, _| {
            let levels = omp4rs::omp_get_max_active_levels();
            Ok(Value::Int(if levels == usize::MAX {
                i64::MAX
            } else {
                levels as i64
            }))
        }),
    );

    // ---- profiling (OMPT-inspired, beyond the OpenMP 3.0 API) -------------
    module.set(
        "ompt_enabled",
        NativeFunc::new("ompt_enabled", |_, _| {
            Ok(Value::Bool(omp4rs::ompt::enabled()))
        }),
    );
    module.set(
        "ompt_counters",
        NativeFunc::new("ompt_counters", |interp, _| {
            sync_interp_counters(interp);
            let out = Value::dict();
            if let Value::Dict(map) = &out {
                let mut entries = map.write();
                for (name, value) in omp4rs::ompt::counters() {
                    entries.insert(
                        minipy::HKey::Str(Arc::new(name.to_string())),
                        Value::Int(value as i64),
                    );
                }
            }
            Ok(out)
        }),
    );
    module.set(
        "ompt_summary",
        NativeFunc::new("ompt_summary", |interp, _| {
            sync_interp_counters(interp);
            Ok(Value::str(omp4rs::ompt::summary()))
        }),
    );
    module.set(
        "ompt_reset",
        NativeFunc::new("ompt_reset", |_, _| {
            minipy::stats::reset();
            omp4rs::ompt::reset();
            Ok(Value::None)
        }),
    );
}

/// Publish the interpreter-side profiling counters into the
/// [`omp4rs::ompt`] counter registry, so GIL hold time and per-object lock
/// contention appear next to runtime metrics in summaries and Chrome traces.
///
/// Counter names: `minipy.gil.acquisitions`, `minipy.gil.hold_ns`,
/// `minipy.gil.switches`, `minipy.obj_lock.acquisitions`,
/// `minipy.obj_lock.contended`, `minipy.vm.compiles`,
/// `minipy.vm.compile_ns`, `minipy.vm.fallbacks`, `minipy.vm.frames`,
/// `minipy.vm.ops`, `minipy.vm.quicken.rewrites`,
/// `minipy.vm.quicken.deopts`, `minipy.vm.ic.hits`, `minipy.vm.ic.misses`,
/// and one `minipy.vm.fallback.<reason>` per observed fallback reason. See
/// [`minipy::stats`] for what each counts.
pub fn sync_interp_counters(interp: &Interp) {
    let stats = minipy::stats::snapshot();
    omp4rs::ompt::set_counter("minipy.gil.acquisitions", stats.gil_acquisitions);
    omp4rs::ompt::set_counter("minipy.gil.hold_ns", stats.gil_hold_ns);
    omp4rs::ompt::set_counter("minipy.gil.switches", interp.gil().switch_count());
    omp4rs::ompt::set_counter("minipy.obj_lock.acquisitions", stats.obj_lock_acquisitions);
    omp4rs::ompt::set_counter("minipy.obj_lock.contended", stats.obj_lock_contended);
    omp4rs::ompt::set_counter("minipy.vm.compiles", stats.vm_compiles);
    omp4rs::ompt::set_counter("minipy.vm.compile_ns", stats.vm_compile_ns);
    omp4rs::ompt::set_counter("minipy.vm.fallbacks", stats.vm_fallbacks);
    omp4rs::ompt::set_counter("minipy.vm.frames", stats.vm_frames);
    omp4rs::ompt::set_counter("minipy.vm.ops", stats.vm_ops);
    omp4rs::ompt::set_counter("minipy.vm.quicken.rewrites", stats.quicken_rewrites);
    omp4rs::ompt::set_counter("minipy.vm.quicken.deopts", stats.quicken_deopts);
    omp4rs::ompt::set_counter("minipy.vm.ic.hits", stats.ic_hits);
    omp4rs::ompt::set_counter("minipy.vm.ic.misses", stats.ic_misses);
    for (reason, count) in minipy::bytecode::fallback_reasons() {
        omp4rs::ompt::set_counter(vm_fallback_counter(reason), count);
    }
}

/// Intern `minipy.vm.fallback.<reason>` counter names: the `ompt` counter
/// registry wants `&'static str` keys, and the reason set is closed (one
/// leaked string per [`minipy::bytecode::FallbackReason`] spelling, ever).
fn vm_fallback_counter(reason: &'static str) -> &'static str {
    static NAMES: OnceLock<Mutex<HashMap<&'static str, &'static str>>> = OnceLock::new();
    let mut map = NAMES.get_or_init(|| Mutex::new(HashMap::new())).lock();
    map.entry(reason)
        .or_insert_with(|| Box::leak(format!("minipy.vm.fallback.{reason}").into_boxed_str()))
}

fn native(
    module: &ModuleObj,
    name: &'static str,
    f: impl Fn(&Interp, Args) -> Result<Value, PyErr> + Send + Sync + 'static,
) {
    module.set(name, NativeFunc::new(name, f));
}

/// Build the `__omp` intrinsics module for a mode.
fn build_runtime_module(mode: ExecMode) -> Value {
    let backend = mode.backend();
    let module = ModuleObj::new("__omp");

    // ---- parallel --------------------------------------------------------
    native(&module, "parallel_run", move |interp, args: Args| {
        // Arm interpreter-side counters (GIL hold time, per-object lock
        // contention) whenever the profiler is on, so the Pure-vs-Compiled
        // contrast shows up in `ompt` counters. Never disarms: tests may have
        // enabled stats programmatically without an OMP_TOOL session.
        omp4rs::ompt::ensure_env_init();
        if omp4rs::ompt::enabled() {
            minipy::stats::set_enabled(true);
        }
        let func = args.req(0)?.clone();
        let num_threads = match args.opt(1) {
            Some(Value::None) | None => None,
            Some(v) => Some(v.as_int()?.max(1) as usize),
        };
        let if_parallel = args.opt(2).map(Value::truthy).unwrap_or(true);
        let cfg = ParallelConfig {
            num_threads,
            if_parallel,
            backend,
        };
        let error_slot: Mutex<Option<PyErr>> = Mutex::new(None);
        let region = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            blocking(interp, || {
                omp4rs::parallel_region(&cfg, |_ctx| {
                    // Each team thread runs the region body function under
                    // its own GIL session.
                    if let Err(e) = interp.call(&func, vec![]) {
                        let mut slot = error_slot.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                });
            });
        }));
        if let Err(panic) = region {
            // Task bodies carry interpreter errors as TaskPyErr payloads.
            match panic.downcast::<TaskPyErr>() {
                Ok(task_err) => return Err(task_err.0),
                Err(other) => std::panic::resume_unwind(other),
            }
        }
        let first_error = error_slot.lock().take();
        match first_error {
            // Divergence from the paper (documented): instead of printing a
            // per-thread traceback and continuing, the first uncaught
            // exception of a team is re-raised once the region completes.
            Some(e) => Err(e),
            None => Ok(Value::None),
        }
    });

    // ---- worksharing loops -------------------------------------------------
    native(&module, "for_bounds", |_, args: Args| {
        let triplet_list = match args.req(0)? {
            Value::List(l) => l.read().clone(),
            other => {
                return Err(err(
                    ErrKind::Type,
                    format!("for_bounds expects a list, got {}", other.type_name()),
                ))
            }
        };
        if triplet_list.is_empty() || triplet_list.len() % 3 != 0 {
            return Err(err(
                ErrKind::Value,
                "for_bounds expects start/end/step triplets",
            ));
        }
        let mut triplets = Vec::with_capacity(triplet_list.len());
        for v in &triplet_list {
            triplets.push(v.as_int()?);
        }
        let state = BoundsState {
            fb: Mutex::new(None),
            triplets: Mutex::new(triplets),
            seq: Mutex::new(None),
            instance: Mutex::new(None),
            rank: Mutex::new(triplet_list.len() / 3),
            ordered: Mutex::new(false),
        };
        // Returned as a bare opaque handle: the generated code reads chunk
        // bounds through `for_chunk` (an immutable tuple), so the loop path
        // never round-trips through a lock-counted shared list.
        Ok(Value::Opaque(Arc::new(state)))
    });

    native(&module, "for_init", move |_, args: Args| {
        let bounds = args.req(0)?;
        let sched_clause = match args.opt(1) {
            Some(Value::Str(s)) => Some(
                ScheduleKind::parse(s).ok_or_else(|| err(ErrKind::Value, "bad schedule kind"))?,
            ),
            _ => None,
        };
        let chunk = match args.opt(2) {
            Some(Value::None) | None => None,
            Some(v) => Some(v.as_int()?.max(1) as u64),
        };
        let _nowait = args.opt(3).map(Value::truthy).unwrap_or(false);
        let ordered = args.opt(4).map(Value::truthy).unwrap_or(false);
        // Loop-site id baked in by the transform; keys the adaptive
        // schedule history. Absent for legacy/hand-written callers.
        let site = match args.opt(5) {
            Some(Value::None) | None => None,
            Some(v) => Some(v.as_int()? as u64),
        };

        with_bounds(bounds, |state| {
            let triplets = state.triplets.lock().clone();
            let dims_vec: Vec<(i64, i64, i64)> =
                triplets.chunks(3).map(|c| (c[0], c[1], c[2])).collect();
            let dims = LoopDims::new(&dims_vec).map_err(|e| err(ErrKind::Value, e.to_string()))?;
            let frame = context::current_frame();
            let (thread_num, nthreads) = match &frame {
                Some(f) => (f.thread_num, f.team.size()),
                None => (0, 1),
            };
            // Every in-team loop gets a work-share instance: dynamic/guided
            // schedules need its chunk counter, ordered needs its turnstile,
            // cancellation (`cancel("for")`, region poisoning) is observed
            // through it at each `for_next` chunk claim — and its adaptive
            // slot pins this team's schedule decision, so the instance must
            // exist before the schedule is resolved.
            let mut instance = None;
            if let Some(f) = &frame {
                let seq = f.next_ws_seq();
                let inst = f.team.worksharing().enter(seq);
                *state.seq.lock() = Some(seq);
                instance = Some(inst);
            }
            // Interpreted loops resolve adaptively when the transform gave
            // them a site id and a team instance exists (its slot shares the
            // decision across the team); `interpreted = true` biases the
            // first instance toward guided with an overhead-derived minimum
            // chunk.
            let (sched, adapt) = match (site, &instance) {
                (Some(site_id), Some(inst)) => omp4rs::adaptive::resolve(
                    sched_clause.map(|k| (k, chunk)),
                    INTERP_SITE_TAG | site_id,
                    dims.total(),
                    nthreads,
                    true,
                    inst.adaptive_slot(),
                ),
                _ => (
                    ResolvedSchedule::resolve(sched_clause.map(|k| (k, chunk))),
                    None,
                ),
            };
            if let (Some(f), Some(inst)) = (&frame, &instance) {
                f.set_current_instance(Some(Arc::clone(inst)));
            }
            *state.instance.lock() = instance.clone();
            *state.ordered.lock() = ordered;
            let mut fb = ForBounds::init(dims, sched, thread_num, nthreads, instance);
            if let Some(tracker) = adapt {
                fb.track_adaptive(tracker);
            }
            *state.fb.lock() = Some(fb);
            Ok(())
        })?;
        Ok(Value::None)
    });

    native(&module, "for_next", |_, args: Args| {
        let bounds = args.req(0)?;
        let (more, lo, hi, step) = with_bounds(bounds, |state| {
            let mut guard = state.fb.lock();
            let fb = guard
                .as_mut()
                .ok_or_else(|| runtime_err("for_next before for_init"))?;
            if fb.next() {
                let rank = *state.rank.lock();
                if rank == 1 {
                    let (v0, v1, st) = fb.dims.var_chunk(fb.lo, fb.hi);
                    Ok((true, v0, v1, st))
                } else {
                    Ok((true, fb.lo as i64, fb.hi as i64, 1))
                }
            } else {
                Ok((false, 0, 0, 1))
            }
        })?;
        if more {
            if let Value::List(items) = bounds {
                let mut items = items.write();
                items[0] = Value::Int(lo);
                items[1] = Value::Int(hi);
                items[2] = Value::Int(step);
            }
        }
        Ok(Value::Bool(more))
    });

    native(&module, "for_chunk", |_, args: Args| {
        let (lo, hi, step) = with_bounds(args.req(0)?, |state| {
            let guard = state.fb.lock();
            let fb = guard
                .as_ref()
                .ok_or_else(|| runtime_err("for_chunk before for_init"))?;
            let rank = *state.rank.lock();
            if rank == 1 {
                Ok(fb.dims.var_chunk(fb.lo, fb.hi))
            } else {
                Ok((fb.lo as i64, fb.hi as i64, 1))
            }
        })?;
        // An immutable tuple: unpacking it into frame locals takes no
        // per-object lock, unlike the legacy writeback into the bounds list.
        Ok(Value::tuple(vec![
            Value::Int(lo),
            Value::Int(hi),
            Value::Int(step),
        ]))
    });

    native(&module, "for_is_last", |_, args: Args| {
        let last = with_bounds(args.req(0)?, |state| {
            Ok(state
                .fb
                .lock()
                .as_ref()
                .map(|fb| fb.is_last)
                .unwrap_or(false))
        })?;
        Ok(Value::Bool(last))
    });

    native(&module, "for_end", |interp, args: Args| {
        let nowait = args.opt(1).map(Value::truthy).unwrap_or(false);
        with_bounds(args.req(0)?, |state| {
            let frame = context::current_frame();
            if let (Some(f), Some(seq)) = (&frame, *state.seq.lock()) {
                f.team.worksharing().leave(seq);
            }
            if let Some(f) = &frame {
                if *state.ordered.lock() {
                    f.set_current_iter(None);
                }
                f.set_current_instance(None);
            }
            Ok(())
        })?;
        if !nowait {
            if let Some(team) = current_team() {
                blocking(interp, || team.barrier());
            }
        }
        Ok(Value::None)
    });

    native(&module, "collapse_var", |_, args: Args| {
        let flat = args.req(1)?.as_int()?;
        let dim = args.req(2)?.as_int()? as usize;
        let value = with_bounds(args.req(0)?, |state| {
            let guard = state.fb.lock();
            let fb = guard
                .as_ref()
                .ok_or_else(|| runtime_err("collapse_var before for_init"))?;
            Ok(fb.dims.vars_of(flat as u64).get(dim).copied().unwrap_or(0))
        })?;
        Ok(Value::Int(value))
    });

    native(&module, "set_iter", |_, args: Args| {
        let var = args.req(1)?.as_int()?;
        with_bounds(args.req(0)?, |state| {
            let guard = state.fb.lock();
            let fb = guard
                .as_ref()
                .ok_or_else(|| runtime_err("set_iter before for_init"))?;
            let flat = fb.dims.flat_of_var(var);
            if let Some(f) = context::current_frame() {
                f.set_current_iter(Some(flat));
            }
            Ok(())
        })?;
        Ok(Value::None)
    });

    native(&module, "set_iter_flat", |_, args: Args| {
        let flat = args.req(1)?.as_int()?;
        if let Some(f) = context::current_frame() {
            f.set_current_iter(Some(flat as u64));
        }
        Ok(Value::None)
    });

    // ---- single / sections -------------------------------------------------
    native(&module, "single_begin", |_, _| {
        let frame = context::current_frame();
        let (inst, seq) = match &frame {
            Some(f) => {
                let seq = f.next_ws_seq();
                (Some(f.team.worksharing().enter(seq)), Some(seq))
            }
            None => (None, None),
        };
        Ok(Value::Opaque(Arc::new(RegionState {
            inst,
            seq,
            n_sections: 0,
            ran_last: std::sync::atomic::AtomicBool::new(false),
        })))
    });

    native(&module, "single_claim", |_, args: Args| {
        let state = downcast::<RegionState>(args.req(0)?, "single handle")?;
        let claimed = match &state.inst {
            Some(inst) => inst.claim.try_claim(),
            None => true,
        };
        Ok(Value::Bool(claimed))
    });

    native(&module, "single_end", |interp, args: Args| {
        let nowait = args.opt(1).map(Value::truthy).unwrap_or(false);
        {
            let state = downcast::<RegionState>(args.req(0)?, "single handle")?;
            if let (Some(f), Some(seq)) = (context::current_frame(), state.seq) {
                f.team.worksharing().leave(seq);
            }
        }
        if !nowait {
            if let Some(team) = current_team() {
                blocking(interp, || team.barrier());
            }
        }
        Ok(Value::None)
    });

    native(&module, "copyprivate_set", |_, args: Args| {
        let value = args.req(1)?.clone();
        let state = downcast::<RegionState>(args.req(0)?, "single handle")?;
        match &state.inst {
            Some(inst) => inst.copyprivate_publish(Box::new(value)),
            None => {
                // Serial execution: stash directly.
                state
                    .ran_last
                    .store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        Ok(Value::None)
    });

    native(&module, "copyprivate_get", |interp, args: Args| {
        let state = downcast::<RegionState>(args.req(0)?, "single handle")?;
        match &state.inst {
            Some(inst) => {
                let inst = Arc::clone(inst);
                Ok(blocking(interp, move || inst.copyprivate_read::<Value>()))
            }
            None => Err(runtime_err("copyprivate_get outside a parallel region")),
        }
    });

    native(&module, "sections_begin", |_, args: Args| {
        let n = args.req(0)?.as_int()?.max(0) as u64;
        let frame = context::current_frame();
        let (inst, seq) = match &frame {
            Some(f) => {
                let seq = f.next_ws_seq();
                (Some(f.team.worksharing().enter(seq)), Some(seq))
            }
            None => (None, None),
        };
        // Track the active instance so `cancel("sections")` can target it.
        if let (Some(f), Some(inst)) = (&frame, &inst) {
            f.set_current_instance(Some(Arc::clone(inst)));
        }
        Ok(Value::Opaque(Arc::new(RegionState {
            inst,
            seq,
            n_sections: n,
            ran_last: std::sync::atomic::AtomicBool::new(false),
        })))
    });

    native(&module, "sections_next", |_, args: Args| {
        let state = downcast::<RegionState>(args.req(0)?, "sections handle")?;
        let inst = match &state.inst {
            Some(inst) => inst,
            // Outside a parallel region: one thread runs all sections.
            None => return serial_sections_next(state),
        };
        if inst.is_cancelled() {
            return Ok(Value::Int(-1));
        }
        let i = inst.counter.fetch_add(1);
        if i < state.n_sections {
            if i == state.n_sections - 1 {
                state
                    .ran_last
                    .store(true, std::sync::atomic::Ordering::SeqCst);
            }
            Ok(Value::Int(i as i64))
        } else {
            Ok(Value::Int(-1))
        }
    });

    native(&module, "sections_end", |interp, args: Args| {
        let nowait = args.opt(1).map(Value::truthy).unwrap_or(false);
        {
            let state = downcast::<RegionState>(args.req(0)?, "sections handle")?;
            if let Some(f) = context::current_frame() {
                if let Some(seq) = state.seq {
                    f.team.worksharing().leave(seq);
                }
                f.set_current_instance(None);
            }
        }
        if !nowait {
            if let Some(team) = current_team() {
                blocking(interp, || team.barrier());
            }
        }
        Ok(Value::None)
    });

    // ---- synchronization ------------------------------------------------------
    native(&module, "barrier", |interp, _| {
        if let Some(team) = current_team() {
            // A user-written `barrier` directive is an *explicit* barrier in
            // profiler events, unlike the implicit end-of-worksharing ones.
            blocking(interp, || team.barrier_explicit());
        }
        Ok(Value::None)
    });

    native(&module, "is_master", |_, _| {
        Ok(Value::Bool(context::thread_num() == 0))
    });

    // ---- cancellation -----------------------------------------------------
    native(&module, "cancel", |_, args: Args| {
        let name = args.req(0)?.as_str()?.to_owned();
        let construct = CancelConstruct::parse(&name)
            .ok_or_else(|| err(ErrKind::Value, format!("invalid cancel construct '{name}'")))?;
        // User-requested cancellation is gated by the cancel-var ICV
        // (OMP_CANCELLATION); outside a team there is nothing to cancel.
        if !omp4rs::Icvs::current().cancellation {
            return Ok(Value::Bool(false));
        }
        let frame = match context::current_frame() {
            Some(f) => f,
            None => return Ok(Value::Bool(false)),
        };
        match construct {
            CancelConstruct::Parallel => frame.team.cancel_region(),
            CancelConstruct::For | CancelConstruct::Sections => {
                let inst = frame.current_instance().ok_or_else(|| {
                    runtime_err(format!("cancel({name}) outside a work-sharing region"))
                })?;
                inst.cancel();
            }
            CancelConstruct::Taskgroup => frame.team.tasks().cancel(),
        }
        Ok(Value::Bool(true))
    });

    native(&module, "cancellation_point", |_, args: Args| {
        let name = args.req(0)?.as_str()?.to_owned();
        let construct = CancelConstruct::parse(&name)
            .ok_or_else(|| err(ErrKind::Value, format!("invalid cancel construct '{name}'")))?;
        let frame = match context::current_frame() {
            Some(f) => f,
            None => return Ok(Value::Bool(false)),
        };
        // Observation is not ICV-gated: poisoning must be visible even when
        // user cancellation is disabled.
        let cancelled = match construct {
            CancelConstruct::Parallel => frame.team.is_cancelled(),
            CancelConstruct::For | CancelConstruct::Sections => frame
                .current_instance()
                .map(|inst| inst.is_cancelled())
                .unwrap_or_else(|| frame.team.is_cancelled()),
            CancelConstruct::Taskgroup => {
                frame.team.tasks().is_cancelled() || frame.team.is_cancelled()
            }
        };
        Ok(Value::Bool(cancelled))
    });

    native(&module, "critical_enter", |interp, args: Args| {
        let name = match args.opt(0) {
            Some(Value::Str(s)) if !s.is_empty() => format!("user:{s}"),
            _ => "user:".to_owned(),
        };
        let lock = named_lock(&name);
        blocking(interp, || lock.set());
        Ok(Value::None)
    });
    native(&module, "critical_exit", |_, args: Args| {
        let name = match args.opt(0) {
            Some(Value::Str(s)) if !s.is_empty() => format!("user:{s}"),
            _ => "user:".to_owned(),
        };
        named_lock(&name).unset();
        Ok(Value::None)
    });
    native(&module, "mutex_lock", |interp, _| {
        let lock = named_lock("\0reduction");
        blocking(interp, || lock.set());
        Ok(Value::None)
    });
    native(&module, "mutex_unlock", |_, _| {
        named_lock("\0reduction").unset();
        Ok(Value::None)
    });
    native(&module, "atomic_enter", |interp, _| {
        let lock = named_lock("\0atomic");
        blocking(interp, || lock.set());
        Ok(Value::None)
    });
    native(&module, "atomic_exit", |_, _| {
        named_lock("\0atomic").unset();
        Ok(Value::None)
    });

    native(&module, "ordered_start", |interp, _| {
        let frame = context::current_frame()
            .ok_or_else(|| runtime_err("'ordered' outside a parallel loop"))?;
        let inst = frame
            .current_instance()
            .ok_or_else(|| runtime_err("'ordered' requires a loop with the ordered clause"))?;
        let flat = frame
            .current_iter()
            .ok_or_else(|| runtime_err("'ordered' requires an active loop iteration"))?;
        blocking(interp, || inst.ordered_enter(flat));
        Ok(Value::None)
    });
    native(&module, "ordered_end", |_, _| {
        let frame = context::current_frame()
            .ok_or_else(|| runtime_err("'ordered' outside a parallel loop"))?;
        let inst = frame
            .current_instance()
            .ok_or_else(|| runtime_err("'ordered' requires a loop with the ordered clause"))?;
        let flat = frame
            .current_iter()
            .ok_or_else(|| runtime_err("'ordered' requires an active loop iteration"))?;
        inst.ordered_exit(flat);
        Ok(Value::None)
    });

    native(&module, "flush", |_, _| {
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        Ok(Value::None)
    });

    // ---- tasks -------------------------------------------------------------------
    native(&module, "task_submit", |interp, args: Args| {
        let func = args.req(0)?.clone();
        let deferred = args.opt(1).map(Value::truthy).unwrap_or(true);
        match current_team() {
            Some(team) => {
                let interp = interp.clone();
                let body = Box::new(move || {
                    if let Err(e) = interp.call(&func, vec![]) {
                        // Carried to parallel_run through the panic channel.
                        std::panic::panic_any(TaskPyErr(e));
                    }
                });
                team.submit_task(body, deferred);
            }
            None => {
                // Outside a parallel region tasks are undeferred.
                interp.call(&func, vec![])?;
            }
        }
        Ok(Value::None)
    });
    // `task depend(...)` / `task priority(n)`: the transform evaluates the
    // dependence item expressions at creation time and hands the resulting
    // *values* here; hashing them into storage keys makes two tasks naming
    // equal values conflict, mirroring same-address list items in compiled
    // mode. Signature: (func, deferred, in_items, out_items, inout_items,
    // priority).
    native(&module, "task_submit_ex", |interp, args: Args| {
        let func = args.req(0)?.clone();
        let deferred = args.opt(1).map(Value::truthy).unwrap_or(true);
        let mut deps = Vec::new();
        for (idx, make) in [
            (2usize, Dep::input as fn(u64) -> Dep),
            (3, Dep::output as fn(u64) -> Dep),
            (4, Dep::inout as fn(u64) -> Dep),
        ] {
            if let Some(Value::List(items)) = args.opt(idx) {
                for item in items.read().iter() {
                    deps.push(make(dep_key(item)?));
                }
            }
        }
        let priority = match args.opt(5) {
            Some(Value::None) | None => 0,
            Some(v) => v.as_int()?,
        };
        match current_team() {
            Some(team) => {
                let task_interp = interp.clone();
                let body = Box::new(move || {
                    if let Err(e) = task_interp.call(&func, vec![]) {
                        std::panic::panic_any(TaskPyErr(e));
                    }
                });
                if deferred || deps.is_empty() {
                    team.submit_task_ex(body, deferred, priority, deps);
                } else {
                    // An undeferred task with dependences waits for its
                    // predecessors; release the GIL while parked so other
                    // team threads can run the interpreted tasks it needs.
                    blocking(interp, || team.submit_task_ex(body, false, priority, deps));
                }
            }
            None => {
                // Outside a parallel region tasks run undeferred in program
                // order, which already satisfies every dependence.
                interp.call(&func, vec![])?;
            }
        }
        Ok(Value::None)
    });
    native(&module, "taskgroup_begin", |_, _| {
        if let Some(team) = current_team() {
            team.taskgroup_begin();
        }
        Ok(Value::None)
    });
    native(&module, "taskgroup_end", |interp, _| {
        if let Some(team) = current_team() {
            blocking(interp, || team.taskgroup_end());
        }
        Ok(Value::None)
    });
    native(&module, "taskloop_run", |interp, args: Args| {
        let func = args.req(0)?.clone();
        let start = args.req(1)?.as_int()?;
        let stop = args.req(2)?.as_int()?;
        let step = args.req(3)?.as_int()?;
        if step == 0 {
            return Err(err(ErrKind::Value, "taskloop step must not be zero"));
        }
        let grainsize = match args.opt(4) {
            Some(Value::None) | None => None,
            Some(v) => Some(v.as_int()?.max(1)),
        };
        let num_tasks = match args.opt(5) {
            Some(Value::None) | None => None,
            Some(v) => Some(v.as_int()?.max(1)),
        };
        let nogroup = args.opt(6).map(Value::truthy).unwrap_or(false);
        let total = if step > 0 {
            ((stop - start).max(0) + step - 1) / step
        } else {
            ((start - stop).max(0) + (-step) - 1) / (-step)
        };
        if total == 0 {
            return Ok(Value::None);
        }
        let team = current_team();
        let team_size = team.as_ref().map(|t| t.size()).unwrap_or(1) as i64;
        let grain = grainsize
            .unwrap_or_else(|| {
                let nt = num_tasks.unwrap_or(2 * team_size).max(1);
                (total + nt - 1) / nt
            })
            .max(1);
        let mut chunk_start = 0i64;
        while chunk_start < total {
            let chunk_end = (chunk_start + grain).min(total);
            let lo = start + chunk_start * step;
            let hi = start + chunk_end * step;
            match &team {
                Some(team) => {
                    let interp = interp.clone();
                    let func = func.clone();
                    team.submit_task(
                        Box::new(move || {
                            if let Err(e) = interp.call(
                                &func,
                                vec![Value::Int(lo), Value::Int(hi), Value::Int(step)],
                            ) {
                                std::panic::panic_any(TaskPyErr(e));
                            }
                        }),
                        true,
                    );
                }
                None => {
                    interp.call(
                        &func,
                        vec![Value::Int(lo), Value::Int(hi), Value::Int(step)],
                    )?;
                }
            }
            chunk_start = chunk_end;
        }
        if !nogroup {
            if let Some(team) = &team {
                blocking(interp, || team.taskwait());
            }
        }
        Ok(Value::None)
    });
    native(&module, "task_wait", |interp, _| {
        if let Some(team) = current_team() {
            blocking(interp, || team.taskwait());
        }
        Ok(Value::None)
    });
    native(&module, "task_yield", |interp, _| {
        if let Some(team) = current_team() {
            blocking(interp, || team.taskyield());
        }
        Ok(Value::None)
    });

    // ---- reductions -----------------------------------------------------------------
    native(&module, "reduce_init", |interp, args: Args| {
        let op = args.req(0)?.as_str()?.to_owned();
        let current = args.req(1)?;
        reduce_identity_value(interp, &op, current)
    });

    native(&module, "reduce_combine", |interp, args: Args| {
        let name = args.req(0)?.as_str()?.to_owned();
        let a = args.req(1)?.clone();
        let b = args.req(2)?.clone();
        let decl = declared_reduction(&name).ok_or_else(|| {
            err(
                ErrKind::Name,
                format!("reduction '{name}' has not been declared"),
            )
        })?;
        eval_reduction_expr(interp, &decl.combiner, Some((&a, &b)))
    });

    // ---- threadprivate -----------------------------------------------------------------
    native(&module, "tp_get", |interp, args: Args| {
        let name = args.req(0)?.as_str()?.to_owned();
        let local = TP_STORE.with(|s| s.borrow().get(&name).cloned());
        match local {
            Some(v) => Ok(v),
            None => {
                // First touch on this thread: initialize from the global.
                let initial = interp.get_global(&name).unwrap_or(Value::None);
                TP_STORE.with(|s| s.borrow_mut().insert(name, initial.clone()));
                Ok(initial)
            }
        }
    });
    native(&module, "tp_set", |_, args: Args| {
        let name = args.req(0)?.as_str()?.to_owned();
        let value = args.req(1)?.clone();
        TP_STORE.with(|s| s.borrow_mut().insert(name, value));
        Ok(Value::None)
    });

    // Mode introspection for tests and harnesses.
    native(&module, "mode", move |_, _| Ok(Value::str(mode.name())));

    Value::Opaque(Arc::new(module))
}

/// Hash a `depend` list-item value into a dependence-graph storage key
/// (FNV-1a over a type tag and the value's bytes; tuples/lists fold their
/// elements). Equal values — ints, floats, bools, strings, and nestings of
/// those — produce equal keys, so two tasks naming the same item conflict
/// exactly like same-address list items do in compiled mode.
fn dep_key(v: &Value) -> Result<u64, PyErr> {
    fn mix(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn go(v: &Value, h: &mut u64) -> Result<(), PyErr> {
        match v {
            Value::Int(i) => {
                mix(h, b"i");
                mix(h, &i.to_le_bytes());
            }
            Value::Bool(b) => {
                mix(h, b"b");
                mix(h, &[u8::from(*b)]);
            }
            Value::Float(f) => {
                mix(h, b"f");
                mix(h, &f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                mix(h, b"s");
                mix(h, s.as_bytes());
                mix(h, &[0xff]);
            }
            Value::Tuple(items) => {
                mix(h, b"t");
                for item in items.iter() {
                    go(item, h)?;
                }
                mix(h, &[0xfe]);
            }
            Value::List(items) => {
                mix(h, b"t");
                for item in items.read().iter() {
                    go(item, h)?;
                }
                mix(h, &[0xfe]);
            }
            other => {
                return Err(err(
                    ErrKind::Type,
                    format!(
                        "depend item of type {} cannot be used as a storage key",
                        other.type_name()
                    ),
                ))
            }
        }
        Ok(())
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    go(v, &mut h)?;
    Ok(h)
}

/// Serial (no-team) `sections_next`: iterate sections with a per-handle
/// cursor stored in a side table keyed by pointer identity.
fn serial_sections_next(state: &RegionState) -> Result<Value, PyErr> {
    static CURSORS: OnceLock<Mutex<HashMap<usize, u64>>> = OnceLock::new();
    let cursors = CURSORS.get_or_init(|| Mutex::new(HashMap::new()));
    let key = state as *const _ as usize;
    let mut map = cursors.lock();
    let cursor = map.entry(key).or_insert(0);
    if *cursor < state.n_sections {
        let i = *cursor;
        *cursor += 1;
        Ok(Value::Int(i as i64))
    } else {
        map.remove(&key);
        Ok(Value::Int(-1))
    }
}

/// Identity value for a reduction, typed against the variable's current
/// value (paper: private reduction copies start at the operator identity).
fn reduce_identity_value(interp: &Interp, op: &str, current: &Value) -> Result<Value, PyErr> {
    let is_float = matches!(current, Value::Float(_));
    Ok(match op {
        "+" | "-" => {
            if is_float {
                Value::Float(0.0)
            } else {
                Value::Int(0)
            }
        }
        "*" => {
            if is_float {
                Value::Float(1.0)
            } else {
                Value::Int(1)
            }
        }
        "min" => Value::Float(f64::INFINITY),
        "max" => Value::Float(f64::NEG_INFINITY),
        "&&" => Value::Bool(true),
        "||" => Value::Bool(false),
        "&" => Value::Int(-1),
        "|" | "^" => Value::Int(0),
        custom => {
            let decl = declared_reduction(custom).ok_or_else(|| {
                err(
                    ErrKind::Name,
                    format!("reduction '{custom}' has not been declared"),
                )
            })?;
            match &decl.initializer {
                Some(init) => eval_reduction_expr(interp, init, None)?,
                None => {
                    return Err(err(
                        ErrKind::Value,
                        format!("custom reduction '{custom}' requires an initializer(...) clause"),
                    ))
                }
            }
        }
    })
}

/// Evaluate a `declare reduction` combiner/initializer expression. The
/// combiner sees the accumulated value as `a`/`omp_out` and the incoming
/// value as `b`/`omp_in`.
fn eval_reduction_expr(
    interp: &Interp,
    text: &str,
    operands: Option<(&Value, &Value)>,
) -> Result<Value, PyErr> {
    let expr = minipy::parse_expr(text).map_err(|e| {
        err(
            ErrKind::Syntax,
            format!("invalid reduction expression '{text}': {}", e.msg),
        )
    })?;
    let env = interp.globals().child();
    if let Some((a, b)) = operands {
        env.define("a", a.clone());
        env.define("b", b.clone());
        env.define("omp_out", a.clone());
        env.define("omp_in", b.clone());
    }
    interp.eval(&expr, &env)
}
