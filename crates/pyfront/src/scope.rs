//! Variable usage analysis for directive transformation.
//!
//! The paper (§III-C): the body of a `parallel`/`task` directive moves into
//! an inner function; variables it *assigns* that are defined in the
//! enclosing function must be declared `nonlocal` there, while variables
//! assigned only inside the block stay thread-local. Clause-privatized
//! variables are instead *renamed* to `__omp_`-prefixed copies.

use std::collections::{HashMap, HashSet};

use minipy::ast::{Expr, Stmt, StmtKind};

/// Count assignment sites per name in a statement block.
///
/// Covers `=`/`op=` targets, `for` targets, `with … as`, `except … as`,
/// `def` names, `import` bindings, and `del`. Does **not** descend into
/// nested function bodies (those are separate Python scopes).
pub fn assignment_counts(stmts: &[Stmt]) -> HashMap<String, usize> {
    let mut counts = HashMap::new();
    count_block(stmts, &mut counts);
    counts
}

/// The set of names with at least one assignment site in the block.
pub fn assigned_names(stmts: &[Stmt]) -> HashSet<String> {
    assignment_counts(stmts).into_keys().collect()
}

fn bump(counts: &mut HashMap<String, usize>, name: &str) {
    *counts.entry(name.to_owned()).or_insert(0) += 1;
}

fn count_target(e: &Expr, counts: &mut HashMap<String, usize>) {
    match e {
        Expr::Name(n) => bump(counts, n),
        Expr::Tuple(items) | Expr::List(items) => {
            for item in items {
                count_target(item, counts);
            }
        }
        // Subscript/attribute targets mutate an object, not a binding.
        _ => {}
    }
}

fn count_block(stmts: &[Stmt], counts: &mut HashMap<String, usize>) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Assign { targets, .. } => {
                for t in targets {
                    count_target(t, counts);
                }
            }
            StmtKind::AugAssign { target, .. } => count_target(target, counts),
            StmtKind::For { target, body, .. } => {
                count_target(target, counts);
                count_block(body, counts);
            }
            StmtKind::If { body, orelse, .. } => {
                count_block(body, counts);
                count_block(orelse, counts);
            }
            StmtKind::While { body, .. } => count_block(body, counts),
            StmtKind::With { items, body } => {
                for item in items {
                    if let Some(alias) = &item.alias {
                        bump(counts, alias);
                    }
                }
                count_block(body, counts);
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                count_block(body, counts);
                for h in handlers {
                    if let Some(alias) = &h.alias {
                        bump(counts, alias);
                    }
                    count_block(&h.body, counts);
                }
                count_block(orelse, counts);
                count_block(finalbody, counts);
            }
            StmtKind::FuncDef(def) => bump(counts, &def.name),
            StmtKind::Import { module, alias } => {
                let bind = alias
                    .as_deref()
                    .unwrap_or_else(|| module.split('.').next().unwrap_or(module));
                bump(counts, bind);
            }
            StmtKind::FromImport { names, .. } => {
                for (name, alias) in names {
                    bump(counts, alias.as_deref().unwrap_or(name));
                }
            }
            StmtKind::Del(targets) => {
                for t in targets {
                    count_target(t, counts);
                }
            }
            _ => {}
        }
    }
}

/// All names *read* anywhere in a block (including nested expressions), used
/// to enforce `default(none)`.
pub fn used_names(stmts: &[Stmt]) -> HashSet<String> {
    let mut names = HashSet::new();
    for stmt in stmts {
        used_in_stmt(stmt, &mut names);
    }
    names
}

fn used_in_stmt(stmt: &Stmt, names: &mut HashSet<String>) {
    match &stmt.kind {
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) | StmtKind::Raise(Some(e)) => {
            used_in_expr(e, names)
        }
        StmtKind::Assign { targets, value } => {
            for t in targets {
                used_in_expr(t, names);
            }
            used_in_expr(value, names);
        }
        StmtKind::AugAssign { target, value, .. } => {
            used_in_expr(target, names);
            used_in_expr(value, names);
        }
        StmtKind::If { test, body, orelse } => {
            used_in_expr(test, names);
            for s in body.iter().chain(orelse) {
                used_in_stmt(s, names);
            }
        }
        StmtKind::While { test, body } => {
            used_in_expr(test, names);
            for s in body {
                used_in_stmt(s, names);
            }
        }
        StmtKind::For { target, iter, body } => {
            used_in_expr(target, names);
            used_in_expr(iter, names);
            for s in body {
                used_in_stmt(s, names);
            }
        }
        StmtKind::With { items, body } => {
            for item in items {
                used_in_expr(&item.context, names);
            }
            for s in body {
                used_in_stmt(s, names);
            }
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            for s in body.iter().chain(orelse).chain(finalbody) {
                used_in_stmt(s, names);
            }
            for h in handlers {
                for s in &h.body {
                    used_in_stmt(s, names);
                }
            }
        }
        StmtKind::Assert { test, msg } => {
            used_in_expr(test, names);
            if let Some(m) = msg {
                used_in_expr(m, names);
            }
        }
        StmtKind::Del(targets) => {
            for t in targets {
                used_in_expr(t, names);
            }
        }
        StmtKind::FuncDef(def) => {
            // A nested def's free variables count as uses in this scope.
            for s in &def.body {
                used_in_stmt(s, names);
            }
        }
        _ => {}
    }
}

fn used_in_expr(e: &Expr, names: &mut HashSet<String>) {
    match e {
        Expr::Name(n) => {
            names.insert(n.clone());
        }
        Expr::Binary { left, right, .. } => {
            used_in_expr(left, names);
            used_in_expr(right, names);
        }
        Expr::Unary { operand, .. } => used_in_expr(operand, names),
        Expr::BoolOp { values, .. } => {
            for v in values {
                used_in_expr(v, names);
            }
        }
        Expr::Compare {
            left, comparators, ..
        } => {
            used_in_expr(left, names);
            for c in comparators {
                used_in_expr(c, names);
            }
        }
        Expr::Call { func, args, kwargs } => {
            used_in_expr(func, names);
            for a in args {
                used_in_expr(a, names);
            }
            for (_, v) in kwargs {
                used_in_expr(v, names);
            }
        }
        Expr::Attribute { value, .. } => used_in_expr(value, names),
        Expr::Index { value, index } => {
            used_in_expr(value, names);
            used_in_expr(index, names);
        }
        Expr::Slice { lower, upper, step } => {
            for part in [lower, upper, step].into_iter().flatten() {
                used_in_expr(part, names);
            }
        }
        Expr::List(items) | Expr::Tuple(items) => {
            for item in items {
                used_in_expr(item, names);
            }
        }
        Expr::Dict(items) => {
            for (k, v) in items {
                used_in_expr(k, names);
                used_in_expr(v, names);
            }
        }
        Expr::IfExp { test, body, orelse } => {
            used_in_expr(test, names);
            used_in_expr(body, names);
            used_in_expr(orelse, names);
        }
        Expr::Lambda { body, .. } => used_in_expr(body, names),
        _ => {}
    }
}

/// Rename all occurrences of the mapped names in a block (both reads and
/// assignment targets) — the paper's privatization-by-renaming.
pub fn rename_names(stmts: &mut [Stmt], map: &HashMap<String, String>) {
    for stmt in stmts {
        rename_stmt(stmt, map);
    }
}

fn rename_stmt(stmt: &mut Stmt, map: &HashMap<String, String>) {
    match &mut stmt.kind {
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) | StmtKind::Raise(Some(e)) => {
            rename_expr(e, map)
        }
        StmtKind::Assign { targets, value } => {
            for t in targets {
                rename_expr(t, map);
            }
            rename_expr(value, map);
        }
        StmtKind::AugAssign { target, value, .. } => {
            rename_expr(target, map);
            rename_expr(value, map);
        }
        StmtKind::If { test, body, orelse } => {
            rename_expr(test, map);
            rename_names(body, map);
            rename_names(orelse, map);
        }
        StmtKind::While { test, body } => {
            rename_expr(test, map);
            rename_names(body, map);
        }
        StmtKind::For { target, iter, body } => {
            rename_expr(target, map);
            rename_expr(iter, map);
            rename_names(body, map);
        }
        StmtKind::With { items, body } => {
            for item in items {
                rename_expr(&mut item.context, map);
            }
            rename_names(body, map);
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            rename_names(body, map);
            for h in handlers {
                rename_names(&mut h.body, map);
            }
            rename_names(orelse, map);
            rename_names(finalbody, map);
        }
        StmtKind::Assert { test, msg } => {
            rename_expr(test, map);
            if let Some(m) = msg {
                rename_expr(m, map);
            }
        }
        StmtKind::Del(targets) => {
            for t in targets {
                rename_expr(t, map);
            }
        }
        StmtKind::Global(names) | StmtKind::Nonlocal(names) => {
            for n in names {
                if let Some(new) = map.get(n) {
                    *n = new.clone();
                }
            }
        }
        StmtKind::FuncDef(def) => {
            // Rename free-variable uses inside nested defs, except where the
            // nested function rebinds the name (param or local assignment).
            let def_mut = std::sync::Arc::make_mut(def);
            let mut inner_map = map.clone();
            for p in &def_mut.params {
                inner_map.remove(&p.name);
            }
            for local in assigned_names(&def_mut.body) {
                inner_map.remove(&local);
            }
            if !inner_map.is_empty() {
                rename_names(&mut def_mut.body, &inner_map);
            }
        }
        _ => {}
    }
}

fn rename_expr(e: &mut Expr, map: &HashMap<String, String>) {
    match e {
        Expr::Name(n) => {
            if let Some(new) = map.get(n) {
                *n = new.clone();
            }
        }
        Expr::Binary { left, right, .. } => {
            rename_expr(left, map);
            rename_expr(right, map);
        }
        Expr::Unary { operand, .. } => rename_expr(operand, map),
        Expr::BoolOp { values, .. } => {
            for v in values {
                rename_expr(v, map);
            }
        }
        Expr::Compare {
            left, comparators, ..
        } => {
            rename_expr(left, map);
            for c in comparators {
                rename_expr(c, map);
            }
        }
        Expr::Call { func, args, kwargs } => {
            rename_expr(func, map);
            for a in args {
                rename_expr(a, map);
            }
            for (_, v) in kwargs {
                rename_expr(v, map);
            }
        }
        Expr::Attribute { value, .. } => rename_expr(value, map),
        Expr::Index { value, index } => {
            rename_expr(value, map);
            rename_expr(index, map);
        }
        Expr::Slice { lower, upper, step } => {
            for part in [lower, upper, step].into_iter().flatten() {
                rename_expr(part, map);
            }
        }
        Expr::List(items) | Expr::Tuple(items) => {
            for item in items {
                rename_expr(item, map);
            }
        }
        Expr::Dict(items) => {
            for (k, v) in items {
                rename_expr(k, map);
                rename_expr(v, map);
            }
        }
        Expr::IfExp { test, body, orelse } => {
            rename_expr(test, map);
            rename_expr(body, map);
            rename_expr(orelse, map);
        }
        Expr::Lambda { params, body } => {
            let mut inner = map.clone();
            for p in params {
                inner.remove(&p.name);
            }
            rename_expr(body, &inner);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::parse;

    fn counts_of(src: &str) -> HashMap<String, usize> {
        assignment_counts(&parse(src).unwrap().body)
    }

    #[test]
    fn counts_simple_assignments() {
        let c = counts_of("x = 1\nx = 2\ny += 1\n");
        assert_eq!(c["x"], 2);
        assert_eq!(c["y"], 1);
    }

    #[test]
    fn counts_for_and_with_targets() {
        let c = counts_of("for i in r:\n    pass\nwith c as h:\n    pass\n");
        assert_eq!(c["i"], 1);
        assert_eq!(c["h"], 1);
    }

    #[test]
    fn counts_tuple_targets() {
        let c = counts_of("a, b = 1, 2\n");
        assert_eq!(c["a"], 1);
        assert_eq!(c["b"], 1);
    }

    #[test]
    fn subscript_targets_not_counted() {
        let c = counts_of("d[0] = 1\no.attr = 2\n");
        assert!(c.is_empty());
    }

    #[test]
    fn nested_defs_not_descended() {
        let c = counts_of("def f():\n    inner_var = 1\n");
        assert_eq!(c.get("f"), Some(&1));
        assert!(!c.contains_key("inner_var"));
    }

    #[test]
    fn used_names_cover_reads() {
        let u = used_names(&parse("z = x + y[i]\nprint(w)\n").unwrap().body);
        for name in ["x", "y", "i", "w", "print", "z"] {
            assert!(u.contains(name), "{name}");
        }
    }

    #[test]
    fn rename_changes_reads_and_writes() {
        let mut m = parse("acc = acc + x\nfor x in r:\n    acc += x\n").unwrap();
        let map = HashMap::from([
            ("acc".to_owned(), "__omp_acc_1".to_owned()),
            ("x".to_owned(), "__omp_x_2".to_owned()),
        ]);
        rename_names(&mut m.body, &map);
        let printed = minipy::print_module(&m);
        assert!(!printed.contains("acc ="), "{printed}");
        assert!(printed.contains("__omp_acc_1"));
        assert!(printed.contains("for __omp_x_2 in r"));
    }

    #[test]
    fn rename_respects_nested_scope_shadowing() {
        let mut m = parse("def g(x):\n    return x + y\n").unwrap();
        let map = HashMap::from([
            ("x".to_owned(), "__omp_x".to_owned()),
            ("y".to_owned(), "__omp_y".to_owned()),
        ]);
        rename_names(&mut m.body, &map);
        let printed = minipy::print_module(&m);
        // x is a parameter of g: not renamed inside; y is free: renamed.
        assert!(printed.contains("def g(x):"));
        assert!(printed.contains("(x + __omp_y)"));
    }

    #[test]
    fn rename_respects_lambda_params() {
        let mut m = parse("f = lambda x: x + y\n").unwrap();
        let map = HashMap::from([
            ("x".to_owned(), "X".to_owned()),
            ("y".to_owned(), "Y".to_owned()),
        ]);
        rename_names(&mut m.body, &map);
        let printed = minipy::print_module(&m);
        assert!(printed.contains("lambda x: (x + Y)"), "{printed}");
    }
}
