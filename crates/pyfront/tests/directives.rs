//! End-to-end directive tests: minipy programs with `@omp` run through the
//! transformer, bridge, and runtime in both Pure and Hybrid modes.

use minipy::{Interp, Value};
use omp4rs_pyfront::{ExecMode, Runner};

fn both_modes() -> [ExecMode; 2] {
    [ExecMode::Pure, ExecMode::Hybrid]
}

fn run_and_call(mode: ExecMode, src: &str, func: &str, args: Vec<Value>) -> Value {
    let runner = Runner::new(mode);
    runner
        .run(src)
        .unwrap_or_else(|e| panic!("{mode:?}: error running program: {e}"));
    runner
        .call_global(func, args)
        .unwrap_or_else(|e| panic!("{mode:?}: error calling {func}: {e}"))
}

#[test]
fn paper_figure1_pi() {
    let src = r#"
from omp4py import *

@omp
def pi(n):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "pi", vec![Value::Int(50_000)]);
        let pi = v.as_float().unwrap();
        assert!((pi - std::f64::consts::PI).abs() < 1e-6, "{mode:?}: {pi}");
    }
}

#[test]
fn parallel_with_num_threads_and_thread_ids() {
    let src = r#"
from omp4py import *

@omp
def ids():
    seen = []
    with omp("parallel num_threads(4)"):
        with omp("critical"):
            seen.append(omp_get_thread_num())
    return sorted(seen)
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "ids", vec![]);
        assert_eq!(v.repr(), "[0, 1, 2, 3]", "{mode:?}");
    }
}

#[test]
fn parallel_if_clause_serializes() {
    let src = r#"
from omp4py import *

@omp
def count(cond):
    n = 0
    with omp("parallel num_threads(4) if(cond)"):
        with omp("critical"):
            n += 1
    return n
"#;
    for mode in both_modes() {
        assert_eq!(
            run_and_call(mode, src, "count", vec![Value::Bool(false)])
                .as_int()
                .unwrap(),
            1
        );
        assert_eq!(
            run_and_call(mode, src, "count", vec![Value::Bool(true)])
                .as_int()
                .unwrap(),
            4
        );
    }
}

#[test]
fn worksharing_for_all_schedules() {
    for sched in [
        "",
        "schedule(static)",
        "schedule(static, 3)",
        "schedule(dynamic, 2)",
        "schedule(guided)",
        "schedule(auto)",
    ] {
        let src = format!(
            r#"
from omp4py import *

@omp
def total(n):
    acc = 0
    with omp("parallel num_threads(4)"):
        local = 0
        with omp("for {sched}"):
            for i in range(n):
                local += i
        with omp("critical"):
            acc += local
    return acc
"#
        );
        for mode in both_modes() {
            let v = run_and_call(mode, &src, "total", vec![Value::Int(100)]);
            assert_eq!(v.as_int().unwrap(), 4950, "{mode:?} {sched}");
        }
    }
}

#[test]
fn for_with_step_and_negative_ranges() {
    let src = r#"
from omp4py import *

@omp
def stepped():
    acc = 0
    with omp("parallel for reduction(+:acc) num_threads(3)"):
        for i in range(1, 20, 3):
            acc += i
    return acc
"#;
    // 1+4+7+10+13+16+19 = 70
    for mode in both_modes() {
        assert_eq!(
            run_and_call(mode, src, "stepped", vec![]).as_int().unwrap(),
            70
        );
    }
}

#[test]
fn collapse_two_loops() {
    let src = r#"
from omp4py import *

@omp
def grid(n, m):
    acc = 0
    with omp("parallel num_threads(4)"):
        local = 0
        with omp("for schedule(dynamic, 3) collapse(2)"):
            for i in range(n):
                for j in range(m):
                    local += i * 100 + j
        with omp("critical"):
            acc += local
    return acc
"#;
    let mut expected = 0i64;
    for i in 0..5 {
        for j in 0..7 {
            expected += i * 100 + j;
        }
    }
    for mode in both_modes() {
        let v = run_and_call(mode, src, "grid", vec![Value::Int(5), Value::Int(7)]);
        assert_eq!(v.as_int().unwrap(), expected, "{mode:?}");
    }
}

#[test]
fn reduction_operators() {
    let src = r#"
from omp4py import *

@omp
def reds(n):
    s = 0
    p = 1
    lo = 1000000.0
    hi = -1000000.0
    with omp("parallel num_threads(3)"):
        with omp("for reduction(+:s) reduction(min:lo) reduction(max:hi)"):
            for i in range(n):
                s += i
                lo = min(lo, i)
                hi = max(hi, i)
        with omp("for reduction(*:p)"):
            for i in range(1, 6):
                p *= i
    return [s, p, lo, hi]
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "reds", vec![Value::Int(50)]);
        // Python's min/max return the winning operand object: ints here.
        assert_eq!(v.repr(), "[1225, 120, 0, 49]", "{mode:?}");
    }
}

#[test]
fn declare_reduction_custom() {
    let src = r#"
from omp4py import *

omp("declare reduction(listcat : a + b) initializer([])")

@omp
def gather(n):
    out = []
    with omp("parallel for reduction(listcat: out) num_threads(3)"):
        for i in range(n):
            out = out + [i]
    return sorted(out)
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "gather", vec![Value::Int(10)]);
        assert_eq!(v.repr(), "[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]", "{mode:?}");
    }
}

#[test]
fn private_and_firstprivate() {
    let src = r#"
from omp4py import *

@omp
def priv():
    x = 10
    results = []
    with omp("parallel num_threads(3) firstprivate(x)"):
        x = x + omp_get_thread_num()
        with omp("critical"):
            results.append(x)
    return [x, sorted(results)]
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "priv", vec![]);
        // x unchanged outside; each thread saw 10 + tid.
        assert_eq!(v.repr(), "[10, [10, 11, 12]]", "{mode:?}");
    }
}

#[test]
fn private_variable_is_uninitialized_copy() {
    let src = r#"
from omp4py import *

@omp
def priv2():
    y = 5
    with omp("parallel num_threads(2) private(y)"):
        y = omp_get_thread_num()
    return y
"#;
    for mode in both_modes() {
        // The private copies are discarded; outer y unchanged.
        assert_eq!(
            run_and_call(mode, src, "priv2", vec![]).as_int().unwrap(),
            5
        );
    }
}

#[test]
fn lastprivate_takes_final_iteration() {
    let src = r#"
from omp4py import *

@omp
def lastp(n):
    v = -1
    with omp("parallel num_threads(4)"):
        with omp("for schedule(dynamic, 1) lastprivate(v)"):
            for i in range(n):
                v = i * 10
    return v
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "lastp", vec![Value::Int(13)]);
        assert_eq!(v.as_int().unwrap(), 120, "{mode:?}");
    }
}

#[test]
fn single_and_master() {
    let src = r#"
from omp4py import *

@omp
def regions():
    singles = []
    masters = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            singles.append(omp_get_thread_num())
        with omp("master"):
            masters.append(omp_get_thread_num())
        omp("barrier")
    return [len(singles), masters]
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "regions", vec![]);
        assert_eq!(v.repr(), "[1, [0]]", "{mode:?}");
    }
}

#[test]
fn single_copyprivate_broadcasts() {
    let src = r#"
from omp4py import *

@omp
def bcast():
    seen = []
    token = 0
    with omp("parallel num_threads(4)"):
        with omp("single copyprivate(token)"):
            token = 42
        with omp("critical"):
            seen.append(token)
    return seen
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "bcast", vec![]);
        assert_eq!(v.repr(), "[42, 42, 42, 42]", "{mode:?}");
    }
}

#[test]
fn sections_distribute_blocks() {
    let src = r#"
from omp4py import *

@omp
def secs():
    results = []
    with omp("parallel num_threads(2)"):
        with omp("sections"):
            with omp("section"):
                with omp("critical"):
                    results.append("a")
            with omp("section"):
                with omp("critical"):
                    results.append("b")
            with omp("section"):
                with omp("critical"):
                    results.append("c")
    return sorted(results)
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "secs", vec![]);
        assert_eq!(v.repr(), "['a', 'b', 'c']", "{mode:?}");
    }
}

#[test]
fn atomic_update() {
    let src = r#"
from omp4py import *

@omp
def counting(n):
    c = 0
    with omp("parallel num_threads(4)"):
        with omp("for"):
            for i in range(n):
                with omp("atomic"):
                    c += 1
    return c
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "counting", vec![Value::Int(400)]);
        assert_eq!(v.as_int().unwrap(), 400, "{mode:?}");
    }
}

#[test]
fn ordered_loop() {
    let src = r#"
from omp4py import *

@omp
def ordered_out(n):
    out = []
    with omp("parallel num_threads(4)"):
        with omp("for schedule(dynamic, 1) ordered"):
            for i in range(n):
                x = i * i
                with omp("ordered"):
                    out.append(i)
    return out
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "ordered_out", vec![Value::Int(12)]);
        assert_eq!(
            v.repr(),
            "[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]",
            "{mode:?}"
        );
    }
}

#[test]
fn paper_figure4_fibonacci_tasks() {
    let src = r#"
from omp4py import *

@omp
def fibonacci(n):
    if n <= 1:
        return n
    fib1 = 0
    fib2 = 0
    with omp("task"):
        fib1 = fibonacci(n - 1)
    with omp("task"):
        fib2 = fibonacci(n - 2)
    omp("taskwait")
    return fib1 + fib2

@omp
def run(n):
    result = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            result.append(fibonacci(n))
    return result[0]
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "run", vec![Value::Int(10)]);
        assert_eq!(v.as_int().unwrap(), 55, "{mode:?}");
    }
}

#[test]
fn task_if_clause_cutoff() {
    let src = r#"
from omp4py import *

@omp
def tree(n, depth):
    if n <= 0:
        return 1
    left = 0
    right = 0
    with omp("task if(depth < 2)"):
        left = tree(n - 1, depth + 1)
    with omp("task if(depth < 2)"):
        right = tree(n - 1, depth + 1)
    omp("taskwait")
    return left + right

@omp
def run(n):
    out = []
    with omp("parallel num_threads(3)"):
        with omp("single"):
            out.append(tree(n, 0))
    return out[0]
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "run", vec![Value::Int(8)]);
        assert_eq!(v.as_int().unwrap(), 256, "{mode:?}");
    }
}

#[test]
fn task_firstprivate_captures_at_creation() {
    let src = r#"
from omp4py import *

@omp
def spawner(n):
    got = []
    with omp("parallel num_threads(2)"):
        with omp("single"):
            for i in range(n):
                with omp("task firstprivate(i)"):
                    with omp("critical"):
                        got.append(i)
    return sorted(got)
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "spawner", vec![Value::Int(6)]);
        assert_eq!(v.repr(), "[0, 1, 2, 3, 4, 5]", "{mode:?}");
    }
}

#[test]
fn barrier_and_api_functions() {
    let src = r#"
from omp4py import *

@omp
def info():
    sizes = []
    with omp("parallel num_threads(3)"):
        with omp("critical"):
            sizes.append(omp_get_num_threads())
        omp("barrier")
        with omp("single"):
            sizes.append(omp_in_parallel())
    outside = omp_get_num_threads()
    return [sizes[0], sizes[3], outside, omp_in_parallel()]
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "info", vec![]);
        assert_eq!(v.repr(), "[3, True, 1, False]", "{mode:?}");
    }
}

#[test]
fn nested_parallel_when_enabled() {
    let src = r#"
from omp4py import *

@omp
def nested():
    omp_set_nested(True)
    counts = []
    with omp("parallel num_threads(2)"):
        with omp("parallel num_threads(2)"):
            with omp("critical"):
                counts.append(1)
    omp_set_nested(False)
    return len(counts)
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "nested", vec![]);
        assert_eq!(v.as_int().unwrap(), 4, "{mode:?}");
    }
}

#[test]
fn exceptions_in_region_are_reported() {
    let src = r#"
from omp4py import *

@omp
def boom():
    with omp("parallel num_threads(2)"):
        raise ValueError("inside region")
"#;
    for mode in both_modes() {
        let runner = Runner::new(mode);
        runner.run(src).unwrap();
        let err = runner.call_global("boom", vec![]).unwrap_err();
        assert_eq!(err.kind, minipy::ErrKind::Value, "{mode:?}");
        assert!(err.msg.contains("inside region"));
    }
}

#[test]
fn threadprivate_with_copyin() {
    let src = r#"
from omp4py import *

omp("threadprivate(counter)")
counter = 100

@omp
def tp():
    out = []
    counter = 7
    with omp("parallel num_threads(3) copyin(counter)"):
        counter = counter + omp_get_thread_num()
        with omp("critical"):
            out.append(counter)
    return sorted(out)
"#;
    for mode in both_modes() {
        let runner = Runner::new(mode);
        omp4rs_pyfront::threadprivate::reset();
        runner.run(src).unwrap();
        let v = runner.call_global("tp", vec![]).unwrap();
        assert_eq!(v.repr(), "[7, 8, 9]", "{mode:?}");
        omp4rs_pyfront::threadprivate::reset();
    }
}

#[test]
fn schedule_runtime_uses_api_setting() {
    let src = r#"
from omp4py import *

@omp
def rt(n):
    omp_set_schedule("dynamic", 2)
    acc = 0
    with omp("parallel for reduction(+:acc) num_threads(3) schedule(runtime)"):
        for i in range(n):
            acc += 1
    return acc
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "rt", vec![Value::Int(30)]);
        assert_eq!(v.as_int().unwrap(), 30, "{mode:?}");
    }
}

#[test]
fn nowait_loops() {
    let src = r#"
from omp4py import *

@omp
def nw(n):
    acc = 0
    with omp("parallel num_threads(4)"):
        local = 0
        with omp("for schedule(dynamic, 1) nowait"):
            for i in range(n):
                local += 1
        with omp("for schedule(dynamic, 1) nowait"):
            for i in range(n):
                local += 1
        with omp("critical"):
            acc += local
    return acc
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "nw", vec![Value::Int(40)]);
        assert_eq!(v.as_int().unwrap(), 80, "{mode:?}");
    }
}

#[test]
fn default_none_rejects_unlisted() {
    let src = r#"
from omp4py import *

@omp
def bad():
    x = 1
    with omp("parallel default(none)"):
        y = x
    return 0
"#;
    let runner = Runner::new(ExecMode::Hybrid);
    let err = runner.run(src).unwrap_err();
    assert_eq!(err.kind, minipy::ErrKind::Syntax);
    assert!(err.msg.contains('x'), "{}", err.msg);
}

#[test]
fn default_shared_allows_unlisted() {
    let src = r#"
from omp4py import *

@omp
def ok():
    x = 5
    total = []
    with omp("parallel default(shared) num_threads(2)"):
        with omp("critical"):
            total.append(x)
    return len(total)
"#;
    assert_eq!(
        run_and_call(ExecMode::Hybrid, src, "ok", vec![])
            .as_int()
            .unwrap(),
        2
    );
}

#[test]
fn for_requires_range_loop() {
    let src = r#"
from omp4py import *

@omp
def bad(items):
    with omp("parallel for"):
        for x in items:
            pass
"#;
    let runner = Runner::new(ExecMode::Hybrid);
    let err = runner.run(src).unwrap_err();
    assert_eq!(err.kind, minipy::ErrKind::Syntax);
    assert!(err.msg.contains("range"), "{}", err.msg);
}

#[test]
fn invalid_directive_is_syntax_error() {
    let src = r#"
from omp4py import *

@omp
def bad():
    with omp("paralel"):
        pass
"#;
    let runner = Runner::new(ExecMode::Hybrid);
    let err = runner.run(src).unwrap_err();
    assert_eq!(err.kind, minipy::ErrKind::Syntax);
}

#[test]
fn undecorated_directives_are_noops() {
    // Without @omp, omp(...) calls do nothing and the with-body runs inline.
    let src = r#"
from omp4py import *

def plain(n):
    acc = 0
    with omp("parallel for reduction(+:acc)"):
        for i in range(n):
            acc += i
    return acc
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "plain", vec![Value::Int(10)]);
        assert_eq!(v.as_int().unwrap(), 45, "{mode:?}");
    }
}

#[test]
fn dump_option_prints_transformed_source() {
    let src = r#"
from omp4py import *

@omp(dump=True)
def f(n):
    total = 0
    with omp("parallel for reduction(+:total)"):
        for i in range(n):
            total += i
    return total
"#;
    let interp = Interp::new().capture_output();
    omp4rs_pyfront::install(&interp, ExecMode::Hybrid);
    interp.run(src).unwrap();
    let out = interp.output().unwrap();
    assert!(out.contains("__omp_parallel_"), "dump output: {out}");
    assert!(out.contains("for_bounds"), "dump output: {out}");
    assert!(out.contains("nonlocal total"), "dump output: {out}");
    // And the function still works.
    let f = interp.get_global("f").unwrap();
    assert_eq!(
        interp
            .call(&f, vec![Value::Int(10)])
            .unwrap()
            .as_int()
            .unwrap(),
        45
    );
}

#[test]
fn orphaned_worksharing_outside_parallel() {
    // A worksharing loop outside a parallel region runs serially.
    let src = r#"
from omp4py import *

@omp
def orphan(n):
    acc = 0
    with omp("for reduction(+:acc)"):
        for i in range(n):
            acc += i
    return acc
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "orphan", vec![Value::Int(10)]);
        assert_eq!(v.as_int().unwrap(), 45, "{mode:?}");
    }
}

#[test]
fn taskloop_distributes_iterations() {
    // §V extension: taskloop packages loop iterations into tasks.
    let src = r#"
from omp4py import *

@omp
def tl(n):
    acc = 0
    out = []
    with omp("parallel num_threads(3)"):
        with omp("single"):
            with omp("taskloop grainsize(4)"):
                for i in range(n):
                    with omp("critical"):
                        out.append(i)
    return sorted(out)
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "tl", vec![Value::Int(20)]);
        let expect: Vec<String> = (0..20).map(|i| i.to_string()).collect();
        assert_eq!(v.repr(), format!("[{}]", expect.join(", ")), "{mode:?}");
    }
}

#[test]
fn taskloop_num_tasks_and_nogroup() {
    let src = r#"
from omp4py import *

@omp
def tl(n):
    acc = [0]
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("taskloop num_tasks(5) nogroup"):
                for i in range(n):
                    with omp("atomic"):
                        acc[0] += i
            omp("taskwait")
    return acc[0]
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "tl", vec![Value::Int(30)]);
        assert_eq!(v.as_int().unwrap(), 435, "{mode:?}");
    }
}

#[test]
fn mode_visible_to_interpreted_code() {
    for (mode, expect) in [(ExecMode::Pure, "Pure"), (ExecMode::Hybrid, "Hybrid")] {
        let runner = Runner::new(mode);
        runner.run("m = __omp.mode()\n").unwrap();
        assert_eq!(
            runner.interp().get_global("m").unwrap().as_str().unwrap(),
            expect
        );
    }
}

#[test]
fn task_depend_chain_orders_siblings() {
    // An inout chain on one key serializes the tasks in submission order
    // even with a 4-thread team racing to steal them.
    let src = r#"
from omp4py import *

@omp
def chain(n):
    order = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            for i in range(n):
                with omp("task depend(inout: 0) firstprivate(i)"):
                    order.append(i)
    return order
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "chain", vec![Value::Int(12)]);
        let Value::List(items) = v else {
            panic!("{mode:?}: expected list")
        };
        let got: Vec<i64> = items.read().iter().map(|x| x.as_int().unwrap()).collect();
        assert_eq!(got, (0..12).collect::<Vec<_>>(), "{mode:?}");
    }
}

#[test]
fn taskgroup_waits_and_depend_takes_tuple_keys() {
    // A diamond ordered by tuple dependence keys inside a taskgroup: the
    // append after the group must observe all four members done.
    let src = r#"
from omp4py import *

@omp
def diamond():
    log = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            with omp("taskgroup"):
                with omp("task depend(out: (0, 0))"):
                    log.append("a")
                with omp("task depend(in: (0, 0)) depend(out: (0, 1))"):
                    log.append("b")
                with omp("task depend(in: (0, 0)) depend(out: (1, 0))"):
                    log.append("c")
                with omp("task depend(in: (0, 1), (1, 0))"):
                    log.append("d")
            log.append("end")
    return log
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "diamond", vec![]);
        let Value::List(items) = v else {
            panic!("{mode:?}: expected list")
        };
        let got: Vec<String> = items
            .read()
            .iter()
            .map(|x| x.as_str().unwrap().to_string())
            .collect();
        assert_eq!(got.len(), 5, "{mode:?}: {got:?}");
        assert_eq!(got[0], "a", "{mode:?}: {got:?}");
        let mut mid = [got[1].clone(), got[2].clone()];
        mid.sort();
        assert_eq!(mid, ["b", "c"], "{mode:?}: {got:?}");
        assert_eq!(got[3], "d", "{mode:?}: {got:?}");
        assert_eq!(got[4], "end", "{mode:?}: {got:?}");
    }
}

#[test]
fn task_priority_clause_is_honored() {
    // One thread: every task defers into the priority heap while the
    // single block runs, then drains highest-priority-first.
    let src = r#"
from omp4py import *

@omp
def prio():
    order = []
    with omp("parallel num_threads(1)"):
        with omp("single"):
            for p in [1, 3, 2, 5, 4]:
                with omp("task priority(p) firstprivate(p)"):
                    order.append(p)
    return order
"#;
    for mode in both_modes() {
        let v = run_and_call(mode, src, "prio", vec![]);
        let Value::List(items) = v else {
            panic!("{mode:?}: expected list")
        };
        let got: Vec<i64> = items.read().iter().map(|x| x.as_int().unwrap()).collect();
        assert_eq!(got, vec![5, 4, 3, 2, 1], "{mode:?}");
    }
}
