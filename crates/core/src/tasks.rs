//! Explicit tasking (`task`, `taskwait`, `taskyield`).
//!
//! Follows §III-E of the paper: tasks are packaged into nodes carrying an
//! execution state (*free* → *in-progress* → *completed*) and a completion
//! event, and are placed in a team-wide shared queue. Idle threads — and
//! threads waiting at implicit barriers — pull tasks from this queue.
//! Enqueueing uses a mutex in the [`Backend::Mutex`] runtime and lock-free
//! operations in the [`Backend::Atomic`] runtime.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::faults::{self, FaultSite};
use crate::ompt;
use crate::sync::{Backend, CancelFlag, Notifier, OmpEvent, WorkBag};

/// Lifecycle state of a task node (paper: free / in-progress / completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Submitted, not yet claimed by a thread.
    Free,
    /// A thread is executing it.
    InProgress,
    /// Finished.
    Completed,
}

const STATE_FREE: u8 = 0;
const STATE_IN_PROGRESS: u8 = 1;
const STATE_COMPLETED: u8 = 2;

/// A queued unit of work.
pub struct TaskNode {
    state: AtomicU8,
    done: OmpEvent,
    body: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl std::fmt::Debug for TaskNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskNode")
            .field("state", &self.state())
            .finish()
    }
}

impl TaskNode {
    fn new(backend: Backend, body: Box<dyn FnOnce() + Send>) -> Arc<TaskNode> {
        Arc::new(TaskNode {
            state: AtomicU8::new(STATE_FREE),
            done: OmpEvent::new(backend),
            body: Mutex::new(Some(body)),
        })
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        match self.state.load(Ordering::Acquire) {
            STATE_FREE => TaskState::Free,
            STATE_IN_PROGRESS => TaskState::InProgress,
            _ => TaskState::Completed,
        }
    }

    /// Whether the task has completed.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }

    /// Block until the task completes.
    pub fn wait_done(&self) {
        self.done.wait();
    }

    /// Atomically claim the task for execution on the calling thread.
    ///
    /// Returns the body if this caller won the claim (Free → InProgress).
    /// Used both by queue pops and by `taskwait` executing its own children
    /// inline (which bounds stack growth to the task-tree depth instead of
    /// the task count).
    pub fn try_claim(&self) -> Option<Box<dyn FnOnce() + Send>> {
        if self
            .state
            .compare_exchange(
                STATE_FREE,
                STATE_IN_PROGRESS,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            self.body.lock().take()
        } else {
            None
        }
    }

    /// Mark a claimed task finished, running its body.
    ///
    /// Panics in the body are caught and returned (not propagated): per the
    /// OpenMP rule the paper cites, exceptions must not escape a task. The
    /// node is still marked completed so barriers and `taskwait` release.
    fn finish(
        &self,
        body: Option<Box<dyn FnOnce() + Send>>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        let panic = match body {
            Some(body) => {
                ompt::record_here(ompt::EventKind::TaskSchedule);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // Inside the catch: an injected task fault is recorded
                    // like any user panic instead of unwinding the executor.
                    faults::on_event(FaultSite::TaskExecute);
                    body();
                }))
                .err()
            }
            None => None,
        };
        self.state.store(STATE_COMPLETED, Ordering::Release);
        self.done.set();
        ompt::record_here(ompt::EventKind::TaskComplete);
        panic
    }
}

/// The team-shared task queue.
pub struct TaskQueue {
    bag: WorkBag<Arc<TaskNode>>,
    outstanding: AtomicUsize,
    wake: Arc<Notifier>,
    backend: Backend,
    panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Latched by `cancel taskgroup` / region cancellation: queued tasks are
    /// discarded (marked complete without running) so barriers and
    /// `taskwait` release.
    cancelled: CancelFlag,
}

impl std::fmt::Debug for TaskQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskQueue")
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

impl TaskQueue {
    /// Create a queue whose submissions/completions signal `wake` (shared
    /// with the team barrier, so barrier waiters learn about new tasks —
    /// the paper's "threads waiting at the barrier are reawakened to execute
    /// the work").
    pub fn new(backend: Backend, wake: Arc<Notifier>) -> TaskQueue {
        TaskQueue {
            bag: WorkBag::new(backend),
            outstanding: AtomicUsize::new(0),
            wake,
            backend,
            panic_slot: Mutex::new(None),
            cancelled: CancelFlag::new(backend),
        }
    }

    /// Whether the queue has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.is_set()
    }

    /// Cancel the queue (`cancel taskgroup` semantics): tasks that have not
    /// started are discarded — marked complete without executing, so every
    /// waiter (barrier task-drain, `taskwait`, `wait_done`) releases.
    /// Already-running tasks finish normally.
    pub fn cancel(&self) {
        self.cancelled.set();
        while let Some(node) = self.bag.pop() {
            self.discard(&node);
        }
        self.wake.notify_all();
    }

    /// Discard one queued node if it has not started (claim it, drop the
    /// body, mark complete).
    fn discard(&self, node: &TaskNode) {
        if let Some(body) = node.try_claim() {
            drop(body);
            let _ = node.finish(None);
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Take the first panic payload captured from a task body, if any.
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic_slot.lock().take()
    }

    fn record_panic(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic_slot.lock();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
    }

    /// Number of submitted-but-not-completed tasks (queued or in-progress).
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Enqueue a deferred task; returns its node (for child tracking).
    ///
    /// Submissions to a cancelled queue are discarded immediately (the node
    /// is returned already complete, never counted as outstanding).
    pub fn submit(&self, body: Box<dyn FnOnce() + Send>) -> Arc<TaskNode> {
        ompt::record_here(ompt::EventKind::TaskCreate { deferred: true });
        let node = TaskNode::new(self.backend, body);
        if self.cancelled.is_set() {
            if let Some(body) = node.try_claim() {
                drop(body);
                let _ = node.finish(None);
            }
            return node;
        }
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        self.bag.push(Arc::clone(&node));
        // Submit/cancel race: the drain in `cancel` may already have run.
        // Discard here so the node cannot linger outstanding forever.
        if self.cancelled.is_set() {
            self.discard(&node);
        }
        self.wake.notify_all();
        node
    }

    /// Execute an *undeferred* task (an `if(false)` task) immediately on the
    /// calling thread, off the queue, as required by the spec.
    pub fn run_undeferred(&self, body: Box<dyn FnOnce() + Send>) -> Arc<TaskNode> {
        ompt::record_here(ompt::EventKind::TaskCreate { deferred: false });
        let node = TaskNode::new(self.backend, body);
        let body = node.try_claim();
        self.record_panic(node.finish(body));
        node
    }

    /// Execute a specific claimed node (used by `taskwait` child inlining).
    /// The caller must have obtained `body` from [`TaskNode::try_claim`].
    pub fn execute_claimed(&self, node: &TaskNode, body: Box<dyn FnOnce() + Send>) {
        self.record_panic(node.finish(Some(body)));
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
        self.wake.notify_all();
    }

    /// Pop and execute one task, if any is available. Returns whether a task
    /// was run. Nodes already claimed inline by `taskwait` are skipped.
    pub fn run_one(&self) -> bool {
        while let Some(node) = self.bag.pop() {
            if self.cancelled.is_set() {
                self.discard(&node);
                continue;
            }
            if let Some(body) = node.try_claim() {
                self.record_panic(node.finish(Some(body)));
                self.outstanding.fetch_sub(1, Ordering::AcqRel);
                self.wake.notify_all();
                return true;
            }
            // Claimed elsewhere: its executor handles the bookkeeping.
        }
        false
    }

    /// Whether the queue currently holds no runnable tasks (advisory).
    pub fn is_empty(&self) -> bool {
        self.bag.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn both() -> [Backend; 2] {
        [Backend::Mutex, Backend::Atomic]
    }

    #[test]
    fn submit_and_run_one() {
        for backend in both() {
            let q = TaskQueue::new(backend, Arc::new(Notifier::new()));
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            let node = q.submit(Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }));
            assert_eq!(node.state(), TaskState::Free);
            assert_eq!(q.outstanding(), 1);
            assert!(q.run_one());
            assert!(!q.run_one());
            assert_eq!(hits.load(Ordering::SeqCst), 1);
            assert_eq!(q.outstanding(), 0);
            assert_eq!(node.state(), TaskState::Completed);
            assert!(node.is_done());
        }
    }

    #[test]
    fn undeferred_runs_inline() {
        for backend in both() {
            let q = TaskQueue::new(backend, Arc::new(Notifier::new()));
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            let node = q.run_undeferred(Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }));
            assert_eq!(hits.load(Ordering::SeqCst), 1);
            assert!(node.is_done());
            assert_eq!(q.outstanding(), 0);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn tasks_run_by_other_threads() {
        for backend in both() {
            let q = Arc::new(TaskQueue::new(backend, Arc::new(Notifier::new())));
            let hits = Arc::new(AtomicUsize::new(0));
            let mut nodes = Vec::new();
            for _ in 0..100 {
                let h = Arc::clone(&hits);
                nodes.push(q.submit(Box::new(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                })));
            }
            let mut workers = Vec::new();
            for _ in 0..4 {
                let q = Arc::clone(&q);
                workers.push(std::thread::spawn(move || while q.run_one() {}));
            }
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(hits.load(Ordering::SeqCst), 100);
            assert!(nodes.iter().all(|n| n.is_done()));
        }
    }

    #[test]
    fn wait_done_blocks_until_executed() {
        for backend in both() {
            let q = Arc::new(TaskQueue::new(backend, Arc::new(Notifier::new())));
            let node = q.submit(Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }));
            let runner = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.run_one())
            };
            node.wait_done();
            assert!(node.is_done());
            assert!(runner.join().unwrap());
        }
    }
}
