//! Explicit tasking (`task`, `taskwait`, `taskyield`).
//!
//! Follows §III-E of the paper: tasks are packaged into nodes carrying an
//! execution state (*free* → *in-progress* → *completed*) and a completion
//! event. Placement is **work-stealing**: each team thread owns a bounded
//! [`WorkDeque`] it pushes to and pops from LIFO, while idle threads — and
//! threads waiting at implicit barriers — first drain their own deque, then
//! the shared overflow queue, then steal FIFO from the other threads'
//! deques. The shared queue (a mutex-guarded list in the [`Backend::Mutex`]
//! runtime, lock-free in [`Backend::Atomic`]) doubles as the overflow
//! target when a deque fills and as the home for submissions made without a
//! thread affinity. Deques are sized from the recorded high-water mark of
//! outstanding tasks (override: `OMP4RS_STEAL_CAP`).

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::depgraph::{Dep, DepGraph, RetireGuard};
use crate::faults::{self, FaultSite};
use crate::icv::Icvs;
use crate::ompt;
use crate::sync::{Backend, CancelFlag, Notifier, OmpEvent, WorkBag, WorkDeque};

/// Process-wide high-water mark of simultaneously outstanding tasks,
/// updated on every submission. New queues size their per-thread steal
/// deques from it, so capacity tracks how task-heavy the program actually
/// is instead of guessing. Each sizing read *decays* the mark (see
/// `deque_capacity`), so one task-heavy region raises capacity for the
/// teams that follow it without inflating every later, unrelated team
/// forever.
static QUEUE_HWM: AtomicUsize = AtomicUsize::new(0);

/// Hard ceiling on any steal-deque capacity, including the
/// `OMP4RS_STEAL_CAP` override: deques are preallocated per thread on every
/// team creation, so an absurd environment value must not translate into
/// large buffers on every team.
const DEQUE_CAP_CEILING: usize = 1024;

/// Steal-deque capacity for a team of `nthreads`: the `OMP4RS_STEAL_CAP`
/// ICV when set (clamped to `[1, DEQUE_CAP_CEILING]`), otherwise the
/// recorded high-water mark split across the team, clamped to `[8, 256]`.
fn deque_capacity(nthreads: usize) -> usize {
    if let Some(cap) = Icvs::current().steal_cap {
        return cap.clamp(1, DEQUE_CAP_CEILING);
    }
    // Consume-with-decay: each read shrinks the recorded mark by a quarter.
    // A sustained task-heavy phase keeps re-raising it on submission; a
    // one-off spike fades over the next few team creations.
    let hwm = QUEUE_HWM
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| Some(h - h / 4))
        .unwrap_or(0);
    hwm_capacity(hwm, nthreads)
}

/// Pure sizing rule: a recorded high-water mark split across the team.
fn hwm_capacity(hwm: usize, nthreads: usize) -> usize {
    hwm.div_ceil(nthreads.max(1)).clamp(8, 256)
}

/// Lifecycle state of a task node (paper: free / in-progress / completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Submitted, not yet claimed by a thread.
    Free,
    /// A thread is executing it.
    InProgress,
    /// Finished.
    Completed,
}

const STATE_FREE: u8 = 0;
const STATE_IN_PROGRESS: u8 = 1;
const STATE_COMPLETED: u8 = 2;

/// A queued unit of work.
pub struct TaskNode {
    state: AtomicU8,
    done: OmpEvent,
    body: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    /// Set while the task waits on unretired `depend` predecessors: a held
    /// node refuses claims (from queue pops *and* `taskwait` inlining)
    /// until the dependence graph's release path clears the flag.
    held: AtomicBool,
}

impl std::fmt::Debug for TaskNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskNode")
            .field("state", &self.state())
            .finish()
    }
}

impl TaskNode {
    pub(crate) fn new(backend: Backend, body: Box<dyn FnOnce() + Send>) -> Arc<TaskNode> {
        Arc::new(TaskNode {
            state: AtomicU8::new(STATE_FREE),
            done: OmpEvent::new(backend),
            body: Mutex::new(Some(body)),
            held: AtomicBool::new(false),
        })
    }

    /// Bar claims until [`TaskNode::release_hold`] (dependence hold).
    pub(crate) fn hold(&self) {
        self.held.store(true, Ordering::Release);
    }

    /// Clear the dependence hold: the node is claimable again.
    pub(crate) fn release_hold(&self) {
        self.held.store(false, Ordering::Release);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        match self.state.load(Ordering::Acquire) {
            STATE_FREE => TaskState::Free,
            STATE_IN_PROGRESS => TaskState::InProgress,
            _ => TaskState::Completed,
        }
    }

    /// Whether the task has completed.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }

    /// Block until the task completes.
    pub fn wait_done(&self) {
        self.done.wait();
    }

    /// Block until the task completes or `deadline` passes; returns whether
    /// the task completed. Callers pair a `false` return with
    /// `Team::trip_deadline`-style region poisoning — this method itself
    /// only bounds the wait.
    pub fn wait_done_deadline(&self, deadline: std::time::Instant) -> bool {
        self.done.wait_deadline(deadline)
    }

    /// Atomically claim the task for execution on the calling thread.
    ///
    /// Returns the body if this caller won the claim (Free → InProgress).
    /// Used both by queue pops and by `taskwait` executing its own children
    /// inline (which bounds stack growth to the task-tree depth instead of
    /// the task count).
    pub fn try_claim(&self) -> Option<Box<dyn FnOnce() + Send>> {
        if self.held.load(Ordering::Acquire) {
            return None;
        }
        if self
            .state
            .compare_exchange(
                STATE_FREE,
                STATE_IN_PROGRESS,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            self.body.lock().take()
        } else {
            None
        }
    }

    /// Mark a claimed task finished, running its body.
    ///
    /// Panics in the body are caught and returned (not propagated): per the
    /// OpenMP rule the paper cites, exceptions must not escape a task. The
    /// node is still marked completed so barriers and `taskwait` release.
    fn finish(
        &self,
        body: Option<Box<dyn FnOnce() + Send>>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        let panic = match body {
            Some(body) => {
                ompt::record_here(ompt::EventKind::TaskSchedule);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // Inside the catch: an injected task fault is recorded
                    // like any user panic instead of unwinding the executor.
                    faults::on_event(FaultSite::TaskExecute);
                    body();
                }))
                .err()
            }
            None => None,
        };
        self.state.store(STATE_COMPLETED, Ordering::Release);
        self.done.set();
        ompt::record_here(ompt::EventKind::TaskComplete);
        panic
    }
}

/// A `priority(n)` task awaiting execution: max-heap by priority, FIFO
/// (submission sequence) among equals.
struct PrioEntry {
    priority: i64,
    seq: u64,
    node: Arc<TaskNode>,
}

impl PartialEq for PrioEntry {
    fn eq(&self, other: &PrioEntry) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for PrioEntry {}

impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &PrioEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PrioEntry {
    fn cmp(&self, other: &PrioEntry) -> std::cmp::Ordering {
        // Reversed seq: among equal priorities the max-heap yields the
        // earliest submission first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The team-shared task queue: per-thread steal deques over a shared
/// overflow bag.
pub struct TaskQueue {
    /// Shared overflow/fallback queue (submissions without a thread
    /// affinity, and spill from full deques).
    bag: WorkBag<Arc<TaskNode>>,
    /// One bounded deque per team thread (empty for affinity-less queues).
    deques: Vec<WorkDeque<Arc<TaskNode>>>,
    /// Tasks claimed out of another thread's deque.
    steals: AtomicU64,
    outstanding: AtomicUsize,
    wake: Arc<Notifier>,
    backend: Backend,
    panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Latched by `cancel taskgroup` / region cancellation: queued tasks are
    /// discarded (marked complete without running) so barriers and
    /// `taskwait` release.
    cancelled: CancelFlag,
    /// `depend` tracking; held tasks live here until predecessors retire.
    dep: Arc<DepGraph>,
    /// `priority(n)` submissions, drained ahead of the deques.
    prio: Mutex<BinaryHeap<PrioEntry>>,
    /// Fast-path mirror of `prio.len()`.
    prio_len: AtomicUsize,
    /// FIFO tie-break for equal priorities.
    prio_seq: AtomicU64,
}

impl std::fmt::Debug for TaskQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskQueue")
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

impl TaskQueue {
    /// Create a queue whose submissions/completions signal `wake` (shared
    /// with the team barrier, so barrier waiters learn about new tasks —
    /// the paper's "threads waiting at the barrier are reawakened to execute
    /// the work"). No per-thread deques: every task goes through the shared
    /// queue. Teams use [`TaskQueue::with_threads`] instead.
    pub fn new(backend: Backend, wake: Arc<Notifier>) -> TaskQueue {
        TaskQueue::with_threads(backend, wake, 0)
    }

    /// Create a queue with one steal deque per team thread, sized from the
    /// recorded task high-water mark (see `deque_capacity`).
    pub fn with_threads(backend: Backend, wake: Arc<Notifier>, nthreads: usize) -> TaskQueue {
        let cap = deque_capacity(nthreads);
        TaskQueue {
            bag: WorkBag::new(backend),
            deques: (0..nthreads).map(|_| WorkDeque::new(cap)).collect(),
            steals: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
            dep: Arc::new(DepGraph::new(Arc::clone(&wake))),
            wake,
            backend,
            panic_slot: Mutex::new(None),
            cancelled: CancelFlag::new(backend),
            prio: Mutex::new(BinaryHeap::new()),
            prio_len: AtomicUsize::new(0),
            prio_seq: AtomicU64::new(0),
        }
    }

    /// Number of tasks this queue's threads claimed from another thread's
    /// deque.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Capacity of each per-thread steal deque (0 when the queue has none).
    pub fn steal_deque_capacity(&self) -> usize {
        self.deques.first().map_or(0, WorkDeque::capacity)
    }

    /// Whether the queue has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.is_set()
    }

    /// Cancel the queue (`cancel taskgroup` semantics): tasks that have not
    /// started are discarded — marked complete without executing, so every
    /// waiter (barrier task-drain, `taskwait`, `wait_done`) releases.
    /// Already-running tasks finish normally.
    pub fn cancel(&self) {
        self.cancelled.set();
        while let Some(node) = self.bag.pop() {
            self.discard(&node);
        }
        for deque in &self.deques {
            while let Some(node) = deque.steal() {
                self.discard(&node);
            }
        }
        while let Some(entry) = self.pop_prio() {
            self.discard(&entry.node);
        }
        // A cancelled graph releases — not strands — its successors: every
        // held task is handed back and discarded like any queued one.
        self.drain_dep_cancelled();
        self.wake.notify_all();
    }

    /// Drain and discard everything the dependence graph still holds (the
    /// cancel path, and the submit/cancel race re-check).
    fn drain_dep_cancelled(&self) {
        for r in self.dep.cancel_all() {
            r.node.release_hold();
            self.discard(&r.node);
        }
    }

    /// Pop the highest-priority queued `priority(n)` task, if any.
    fn pop_prio(&self) -> Option<PrioEntry> {
        if self.prio_len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let entry = self.prio.lock().pop();
        if entry.is_some() {
            self.prio_len.fetch_sub(1, Ordering::AcqRel);
        }
        entry
    }

    /// Discard one queued node if it has not started (claim it, drop the
    /// body, mark complete).
    fn discard(&self, node: &TaskNode) {
        if let Some(body) = node.try_claim() {
            drop(body);
            let _ = node.finish(None);
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
            // Dropping the body retires the task, which may have released
            // dependence-held successors — wake parked threads to admit them.
            self.wake.notify_all();
        }
    }

    /// Take the first panic payload captured from a task body, if any.
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic_slot.lock().take()
    }

    fn record_panic(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic_slot.lock();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
    }

    /// Number of submitted-but-not-completed tasks (queued or in-progress).
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Enqueue a deferred task; returns its node (for child tracking).
    /// Equivalent to [`TaskQueue::submit_from`] with no thread affinity.
    ///
    /// Submissions to a cancelled queue are discarded immediately (the node
    /// is returned already complete, never counted as outstanding).
    pub fn submit(&self, body: Box<dyn FnOnce() + Send>) -> Arc<TaskNode> {
        self.submit_from(body, None)
    }

    /// Enqueue a deferred task, preferring the submitting thread's own
    /// deque: `owner` is the submitter's team-thread number, so the task
    /// runs LIFO on the thread that created it unless someone steals it.
    /// Tasks overflow to the shared queue when the deque is full (or when
    /// `owner` is `None` / out of range).
    pub fn submit_from(
        &self,
        body: Box<dyn FnOnce() + Send>,
        owner: Option<usize>,
    ) -> Arc<TaskNode> {
        self.submit_with(body, owner, 0)
    }

    /// [`TaskQueue::submit_from`] with a `priority(n)` hint: non-zero
    /// priorities go to a shared max-heap drained ahead of the deques
    /// (highest first, FIFO among equals) instead of the LIFO deque path.
    pub fn submit_with(
        &self,
        body: Box<dyn FnOnce() + Send>,
        owner: Option<usize>,
        priority: i64,
    ) -> Arc<TaskNode> {
        ompt::record_here(ompt::EventKind::TaskCreate { deferred: true });
        let node = TaskNode::new(self.backend, body);
        if self.cancelled.is_set() {
            if let Some(body) = node.try_claim() {
                drop(body);
                let _ = node.finish(None);
            }
            return node;
        }
        let outstanding = self.outstanding.fetch_add(1, Ordering::AcqRel) + 1;
        QUEUE_HWM.fetch_max(outstanding, Ordering::Relaxed);
        self.place(&node, owner, priority);
        node
    }

    /// Submit a task ordered by `depend` items: it runs only after every
    /// live predecessor (per the in/out/inout rules in [`crate::depgraph`])
    /// has retired. Held tasks still count as outstanding — region
    /// barriers, deadlines, and the watchdog all see them — but cannot be
    /// claimed until released. With an empty `deps` list this is
    /// [`TaskQueue::submit_with`].
    pub fn submit_depend(
        &self,
        body: Box<dyn FnOnce() + Send>,
        owner: Option<usize>,
        priority: i64,
        deps: &[Dep],
    ) -> Arc<TaskNode> {
        if deps.is_empty() {
            return self.submit_with(body, owner, priority);
        }
        ompt::record_here(ompt::EventKind::TaskCreate { deferred: true });
        let id = self.dep.alloc_id();
        // The guard lives in the closure's environment (not its body), so
        // retirement fires on *every* exit: body ran, body unwound, or the
        // body was dropped unrun by cancellation's discard.
        let guard = RetireGuard::new(Arc::clone(&self.dep), id);
        let node = TaskNode::new(
            self.backend,
            Box::new(move || {
                let _retire = guard;
                body();
            }),
        );
        if self.cancelled.is_set() {
            if let Some(body) = node.try_claim() {
                drop(body);
                let _ = node.finish(None);
            }
            return node;
        }
        let outstanding = self.outstanding.fetch_add(1, Ordering::AcqRel) + 1;
        QUEUE_HWM.fetch_max(outstanding, Ordering::Relaxed);
        if !self.dep.insert(id, &node, owner, priority, deps) {
            self.place(&node, owner, priority);
        } else if self.cancelled.is_set() {
            // Submit/cancel race: `cancel` may have drained the graph
            // before this insert landed — drain again so nothing strands.
            self.drain_dep_cancelled();
        }
        node
    }

    /// Place an outstanding node on the queue (priority heap, owner deque,
    /// or shared bag) and re-check the submit/cancel race.
    fn place(&self, node: &Arc<TaskNode>, owner: Option<usize>, priority: i64) {
        if priority != 0 {
            let seq = self.prio_seq.fetch_add(1, Ordering::Relaxed);
            self.prio.lock().push(PrioEntry {
                priority,
                seq,
                node: Arc::clone(node),
            });
            self.prio_len.fetch_add(1, Ordering::AcqRel);
        } else {
            match owner.and_then(|t| self.deques.get(t)) {
                Some(deque) => {
                    if let Err(node) = deque.push(Arc::clone(node)) {
                        self.bag.push(node);
                    }
                }
                None => self.bag.push(Arc::clone(node)),
            }
        }
        // Submit/cancel race: the drain in `cancel` may already have run.
        // Discard here so the node cannot linger outstanding forever.
        if self.cancelled.is_set() {
            self.discard(node);
        }
        self.wake.notify_all();
    }

    /// Execute an *undeferred* task (an `if(false)` task) immediately on the
    /// calling thread, off the queue, as required by the spec.
    pub fn run_undeferred(&self, body: Box<dyn FnOnce() + Send>) -> Arc<TaskNode> {
        ompt::record_here(ompt::EventKind::TaskCreate { deferred: false });
        let node = TaskNode::new(self.backend, body);
        let body = node.try_claim();
        self.record_panic(node.finish(body));
        node
    }

    /// Execute a specific claimed node (used by `taskwait` child inlining).
    /// The caller must have obtained `body` from [`TaskNode::try_claim`].
    pub fn execute_claimed(&self, node: &TaskNode, body: Box<dyn FnOnce() + Send>) {
        self.record_panic(node.finish(Some(body)));
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
        self.wake.notify_all();
    }

    /// Pop and execute one task, if any is available, with no thread
    /// affinity. Equivalent to [`TaskQueue::run_one_from`] with `None`.
    pub fn run_one(&self) -> bool {
        self.run_one_from(None)
    }

    /// Pop and execute one task, if any is available. Returns whether a task
    /// was run. Nodes already claimed inline by `taskwait` are skipped.
    ///
    /// Search order for team thread `me`: dependence releases admitted
    /// first, then the priority heap (highest first), then the own deque
    /// (LIFO, cache-warm), then the shared overflow queue (FIFO), then the
    /// other threads' deques (FIFO steals, rotating victim order so
    /// thieves spread out).
    pub fn run_one_from(&self, me: Option<usize>) -> bool {
        if self.dep.ready_len() > 0 {
            self.admit_released();
        }
        while let Some(entry) = self.pop_prio() {
            if self.try_execute(&entry.node, false) {
                return true;
            }
        }
        if let Some(deque) = me.and_then(|t| self.deques.get(t)) {
            while let Some(node) = deque.pop() {
                if self.try_execute(&node, false) {
                    return true;
                }
            }
        }
        while let Some(node) = self.bag.pop() {
            if self.try_execute(&node, false) {
                return true;
            }
        }
        let n = self.deques.len();
        if n > 0 {
            let start = me.map_or(0, |t| t + 1);
            for i in 0..n {
                let victim = (start + i) % n;
                if Some(victim) == me {
                    continue;
                }
                while let Some(node) = self.deques[victim].steal() {
                    if self.try_execute(&node, true) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Claim and run one dequeued node; `stolen` marks a cross-thread deque
    /// claim. Returns `false` when the node was discarded (cancellation) or
    /// already claimed elsewhere (its executor handles the bookkeeping).
    fn try_execute(&self, node: &Arc<TaskNode>, stolen: bool) -> bool {
        if self.cancelled.is_set() {
            self.discard(node);
            return false;
        }
        if let Some(body) = node.try_claim() {
            if stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
                ompt::record_here(ompt::EventKind::TaskSteal);
            }
            self.record_panic(node.finish(Some(body)));
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
            self.wake.notify_all();
            true
        } else {
            false
        }
    }

    /// The single held→runnable funnel: move every dependence-released
    /// task onto the queue proper. Carries the `dep-release` fault site —
    /// an injected panic here is recorded like a task panic and the
    /// affected successor is *discarded*, which retires it and cascades
    /// the release to its own successors instead of stranding them.
    fn admit_released(&self) {
        // Loop until the ready list is drained: discarding a faulted
        // successor retires it, which can release *its* successors into the
        // ready list mid-funnel — those must be admitted in the same pass,
        // not stranded until another thread happens to look.
        loop {
            let batch = self.dep.take_ready();
            if batch.is_empty() {
                break;
            }
            for r in batch {
                let fault =
                    std::panic::catch_unwind(|| faults::on_event(FaultSite::DepRelease)).err();
                r.node.release_hold();
                match fault {
                    None => self.place(&r.node, r.owner, r.priority),
                    Some(p) => {
                        self.record_panic(Some(p));
                        self.discard(&r.node);
                    }
                }
            }
        }
    }

    /// Tasks currently held on unretired `depend` predecessors.
    pub fn dep_held(&self) -> usize {
        self.dep.held_len()
    }

    /// Whether the queue currently holds no runnable tasks (advisory; a
    /// dependence-held task is not runnable and does not count).
    pub fn is_empty(&self) -> bool {
        self.bag.is_empty()
            && self.deques.iter().all(WorkDeque::is_empty)
            && self.prio_len.load(Ordering::Acquire) == 0
            && self.dep.ready_len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn both() -> [Backend; 2] {
        [Backend::Mutex, Backend::Atomic]
    }

    #[test]
    fn submit_and_run_one() {
        for backend in both() {
            let q = TaskQueue::new(backend, Arc::new(Notifier::new()));
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            let node = q.submit(Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }));
            assert_eq!(node.state(), TaskState::Free);
            assert_eq!(q.outstanding(), 1);
            assert!(q.run_one());
            assert!(!q.run_one());
            assert_eq!(hits.load(Ordering::SeqCst), 1);
            assert_eq!(q.outstanding(), 0);
            assert_eq!(node.state(), TaskState::Completed);
            assert!(node.is_done());
        }
    }

    #[test]
    fn undeferred_runs_inline() {
        for backend in both() {
            let q = TaskQueue::new(backend, Arc::new(Notifier::new()));
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            let node = q.run_undeferred(Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }));
            assert_eq!(hits.load(Ordering::SeqCst), 1);
            assert!(node.is_done());
            assert_eq!(q.outstanding(), 0);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn tasks_run_by_other_threads() {
        for backend in both() {
            let q = Arc::new(TaskQueue::new(backend, Arc::new(Notifier::new())));
            let hits = Arc::new(AtomicUsize::new(0));
            let mut nodes = Vec::new();
            for _ in 0..100 {
                let h = Arc::clone(&hits);
                nodes.push(q.submit(Box::new(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                })));
            }
            let mut workers = Vec::new();
            for _ in 0..4 {
                let q = Arc::clone(&q);
                workers.push(std::thread::spawn(move || while q.run_one() {}));
            }
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(hits.load(Ordering::SeqCst), 100);
            assert!(nodes.iter().all(|n| n.is_done()));
        }
    }

    #[test]
    fn own_deque_runs_lifo_before_overflow() {
        for backend in both() {
            let q = TaskQueue::with_threads(backend, Arc::new(Notifier::new()), 2);
            let order = Arc::new(Mutex::new(Vec::new()));
            for i in 0..3 {
                let order = Arc::clone(&order);
                q.submit_from(Box::new(move || order.lock().push(i)), Some(0));
            }
            while q.run_one_from(Some(0)) {}
            assert_eq!(
                *order.lock(),
                vec![2, 1, 0],
                "owner pops its own deque LIFO"
            );
            assert_eq!(q.steals(), 0, "running own work is not a steal");
        }
    }

    #[test]
    fn idle_thread_steals_from_loaded_deque() {
        for backend in both() {
            let q = TaskQueue::with_threads(backend, Arc::new(Notifier::new()), 2);
            // Stay within deque capacity so nothing spills to the overflow
            // queue (spilled tasks would not count as steals).
            let n = q.steal_deque_capacity().min(5);
            let hits = Arc::new(AtomicUsize::new(0));
            for _ in 0..n {
                let h = Arc::clone(&hits);
                q.submit_from(
                    Box::new(move || {
                        h.fetch_add(1, Ordering::SeqCst);
                    }),
                    Some(0),
                );
            }
            // Thread 1 has nothing of its own and the overflow queue is
            // empty: all its work comes from stealing thread 0's deque.
            while q.run_one_from(Some(1)) {}
            assert_eq!(hits.load(Ordering::SeqCst), n);
            assert_eq!(q.steals(), n as u64, "every execution was a steal");
            assert_eq!(q.outstanding(), 0);
        }
    }

    #[test]
    fn full_deque_spills_to_shared_overflow() {
        for backend in both() {
            let q = TaskQueue::with_threads(backend, Arc::new(Notifier::new()), 1);
            let cap = q.steal_deque_capacity();
            assert!(cap >= 1);
            let hits = Arc::new(AtomicUsize::new(0));
            for _ in 0..cap + 3 {
                let h = Arc::clone(&hits);
                q.submit_from(
                    Box::new(move || {
                        h.fetch_add(1, Ordering::SeqCst);
                    }),
                    Some(0),
                );
            }
            assert!(
                !q.bag.is_empty(),
                "submissions beyond deque capacity spill to the shared queue"
            );
            while q.run_one_from(Some(0)) {}
            assert_eq!(hits.load(Ordering::SeqCst), cap + 3, "no task lost");
            assert_eq!(q.outstanding(), 0);
        }
    }

    #[test]
    fn steal_cap_icv_overrides_deque_sizing() {
        // Mutates the process-global ICVs: hold the shared test guard so a
        // concurrently constructed TaskQueue in another test cannot pick up
        // the override.
        let _guard = crate::icv::test_guard();
        let before = Icvs::current();
        Icvs::update(|i| i.steal_cap = Some(3));
        let q = TaskQueue::with_threads(Backend::Atomic, Arc::new(Notifier::new()), 4);
        assert_eq!(q.steal_deque_capacity(), 3);
        // Absurd overrides are clamped instead of preallocated verbatim.
        Icvs::update(|i| i.steal_cap = Some(1 << 30));
        let q = TaskQueue::with_threads(Backend::Atomic, Arc::new(Notifier::new()), 4);
        assert_eq!(q.steal_deque_capacity(), DEQUE_CAP_CEILING);
        Icvs::reset(before);
    }

    #[test]
    fn hwm_sizing_is_clamped() {
        assert_eq!(hwm_capacity(0, 4), 8, "floor");
        assert_eq!(hwm_capacity(64, 4), 16, "split across the team");
        assert_eq!(hwm_capacity(1_000_000, 4), 256, "ceiling");
        assert_eq!(hwm_capacity(10, 0), 10, "teamless sizing still works");
    }

    #[test]
    fn queue_hwm_decays_across_sizings() {
        // A one-off spike must not pin capacity at the clamp forever: each
        // sizing read decays the mark by a quarter. Other tests submit at
        // most ~100 concurrent tasks, so after enough reads the capacity is
        // well under the 256 ceiling even with concurrent re-raising. Holds
        // the ICV guard so no concurrent steal-cap override hides the
        // HWM-derived sizing.
        let _guard = crate::icv::test_guard();
        QUEUE_HWM.fetch_max(100_000, Ordering::Relaxed);
        let wake = Arc::new(Notifier::new());
        let mut cap = usize::MAX;
        for _ in 0..200 {
            cap = TaskQueue::with_threads(Backend::Atomic, Arc::clone(&wake), 4)
                .steal_deque_capacity();
        }
        assert!(cap < 256, "spike did not decay (capacity {cap})");
    }

    #[test]
    fn cancel_drains_deques_and_overflow() {
        for backend in both() {
            let q = TaskQueue::with_threads(backend, Arc::new(Notifier::new()), 2);
            let hits = Arc::new(AtomicUsize::new(0));
            let mut nodes = Vec::new();
            for t in [Some(0), Some(1), None] {
                let h = Arc::clone(&hits);
                nodes.push(q.submit_from(
                    Box::new(move || {
                        h.fetch_add(1, Ordering::SeqCst);
                    }),
                    t,
                ));
            }
            q.cancel();
            assert!(q.is_cancelled());
            assert_eq!(hits.load(Ordering::SeqCst), 0, "no cancelled task ran");
            assert!(
                nodes.iter().all(|n| n.is_done()),
                "discarded tasks still complete so waiters release"
            );
            assert_eq!(q.outstanding(), 0);
            assert!(q.is_empty());
            assert!(!q.run_one_from(Some(0)));
        }
    }

    #[test]
    fn priority_order_is_observable_single_thread() {
        for backend in both() {
            let q = TaskQueue::with_threads(backend, Arc::new(Notifier::new()), 1);
            let order = Arc::new(Mutex::new(Vec::new()));
            for (label, prio) in [("p1", 1i64), ("p3a", 3), ("p2", 2), ("p3b", 3), ("p0", 0)] {
                let order = Arc::clone(&order);
                q.submit_with(Box::new(move || order.lock().push(label)), Some(0), prio);
            }
            while q.run_one_from(Some(0)) {}
            assert_eq!(
                *order.lock(),
                vec!["p3a", "p3b", "p2", "p1", "p0"],
                "highest priority first, FIFO among equals, deque last"
            );
            assert_eq!(q.outstanding(), 0);
        }
    }

    #[test]
    fn depend_chain_overrides_lifo_order() {
        for backend in both() {
            let q = TaskQueue::with_threads(backend, Arc::new(Notifier::new()), 1);
            let order = Arc::new(Mutex::new(Vec::new()));
            let mut nodes = Vec::new();
            for i in 0..4 {
                let order = Arc::clone(&order);
                nodes.push(q.submit_depend(
                    Box::new(move || order.lock().push(i)),
                    Some(0),
                    0,
                    &[Dep::inout(7)],
                ));
            }
            assert_eq!(q.dep_held(), 3, "everything after the head is held");
            assert_eq!(q.outstanding(), 4, "held tasks still count");
            while q.run_one_from(Some(0)) {}
            assert_eq!(
                *order.lock(),
                vec![0, 1, 2, 3],
                "inout chain serializes in submission order, not deque LIFO"
            );
            assert!(nodes.iter().all(|n| n.is_done()));
            assert_eq!(q.outstanding(), 0);
            assert_eq!(q.dep_held(), 0);
        }
    }

    #[test]
    fn cancel_releases_held_dependents() {
        for backend in both() {
            let q = TaskQueue::with_threads(backend, Arc::new(Notifier::new()), 1);
            let hits = Arc::new(AtomicUsize::new(0));
            let mut nodes = Vec::new();
            for _ in 0..4 {
                let h = Arc::clone(&hits);
                nodes.push(q.submit_depend(
                    Box::new(move || {
                        h.fetch_add(1, Ordering::SeqCst);
                    }),
                    Some(0),
                    0,
                    &[Dep::inout(11)],
                ));
            }
            assert_eq!(q.dep_held(), 3);
            q.cancel();
            assert_eq!(hits.load(Ordering::SeqCst), 0, "no cancelled task ran");
            assert!(
                nodes.iter().all(|n| n.is_done()),
                "held successors are released and discarded, not stranded"
            );
            assert_eq!(q.outstanding(), 0);
            assert_eq!(q.dep_held(), 0);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn wait_done_blocks_until_executed() {
        for backend in both() {
            let q = Arc::new(TaskQueue::new(backend, Arc::new(Notifier::new())));
            let node = q.submit(Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }));
            let runner = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.run_one())
            };
            node.wait_done();
            assert!(node.is_done());
            assert!(runner.join().unwrap());
        }
    }
}
