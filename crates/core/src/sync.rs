//! Dual-backend synchronization primitives.
//!
//! The OMP4Py paper's central design is a *dual runtime*: a pure-Python
//! runtime whose shared state is coordinated with **mutexes**, and a
//! Cython-generated native runtime (`cruntime`) that replaces those mutexes
//! with **atomic operations** (`fetch_add` for loop-scheduling counters,
//! `compare_exchange` for task enqueueing, direct `PyEvent` signaling).
//!
//! [`Backend`] selects between the two faithful analogues here:
//!
//! * [`Backend::Mutex`] — every shared counter/flag/event update takes a
//!   `parking_lot::Mutex` (the paper's `runtime`, i.e. **Pure** mode).
//! * [`Backend::Atomic`] — lock-free `fetch_add`/CAS paths (the paper's
//!   `cruntime`, i.e. **Hybrid**/**Compiled** modes).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// What a thread does while it waits (the `OMP_WAIT_POLICY` ICV).
///
/// OpenMP 4.0 §4.8: *active* threads should consume processor cycles while
/// waiting (spin), *passive* threads should not (sleep). Here the policy
/// resolves to a bounded spin-iteration budget ([`WaitPolicy::default_spin`],
/// overridable via `OMP4RS_SPIN`) that every runtime wait burns before
/// parking on a signaled [`Notifier`]/[`OmpEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WaitPolicy {
    /// Spin a large bounded budget before parking — lowest wakeup latency,
    /// burns CPU; right when threads ≤ cores.
    Active,
    /// Park after a token spin — frees the core for whoever must produce
    /// the awaited state change; right when oversubscribed (the default:
    /// this runtime targets small hosts where regions oversubscribe cores).
    #[default]
    Passive,
}

impl WaitPolicy {
    /// Parse an `OMP_WAIT_POLICY` value (case-insensitive `active`/`passive`).
    pub fn parse(s: &str) -> Option<WaitPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "active" => Some(WaitPolicy::Active),
            "passive" => Some(WaitPolicy::Passive),
            _ => None,
        }
    }

    /// The spin budget this policy implies when `OMP4RS_SPIN` is unset.
    ///
    /// Passive parks immediately: on the oversubscribed hosts this runtime
    /// targets, measured region-entry and barrier latency are *lowest* with
    /// no speculative spinning at all (every spin iteration delays the
    /// thread that must produce the awaited state change).
    pub fn default_spin(self) -> u32 {
        match self {
            WaitPolicy::Active => 10_000,
            WaitPolicy::Passive => 0,
        }
    }
}

/// Cached spin budget derived from the current ICVs; read on every wait, so
/// it lives outside the ICV lock. Defaults to the passive budget until the
/// ICV store first publishes.
static SPIN_LIMIT: AtomicU32 = AtomicU32::new(0);

/// Runtime-wide count of untimed parks (exported as `omp4rs.pool.park`).
static PARKS: AtomicU64 = AtomicU64::new(0);
/// Runtime-wide count of waits satisfied within their spin budget, without
/// parking (exported as `omp4rs.pool.spin_exit`).
static SPIN_EXITS: AtomicU64 = AtomicU64::new(0);

/// Install the effective spin budget for the current ICVs. Called by the
/// `icv` module whenever the store is initialized, updated, or reset.
pub(crate) fn refresh_wait_config(policy: WaitPolicy, spin: Option<u32>) {
    let limit = spin.unwrap_or_else(|| policy.default_spin());
    SPIN_LIMIT.store(limit, Ordering::Relaxed);
}

/// The spin budget a wait burns before parking (ICV-derived, cached).
pub fn spin_iters() -> u32 {
    SPIN_LIMIT.load(Ordering::Relaxed)
}

/// Total untimed parks performed by runtime waits since process start.
pub fn park_count() -> u64 {
    PARKS.load(Ordering::Relaxed)
}

/// Total waits satisfied during their bounded spin phase (no park needed).
pub fn spin_exit_count() -> u64 {
    SPIN_EXITS.load(Ordering::Relaxed)
}

pub(crate) fn note_park() {
    PARKS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_spin_exit() {
    SPIN_EXITS.fetch_add(1, Ordering::Relaxed);
}

/// One bounded-spin iteration: mostly scheduler yields with CPU relax hints
/// between them. Yield-dominated spinning is deliberate: on oversubscribed
/// (or single-core) hosts a yield donates the rest of the quantum to the
/// thread that must produce the awaited state change, so a team can
/// round-robin through a barrier with no futex traffic at all, while pure
/// `spin_loop` burning would stall exactly that thread.
pub fn spin_hint(remaining: u32) {
    if remaining.is_multiple_of(4) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// Spin-then-park until `pred()` returns `true`.
///
/// The spin budget comes from the cached `OMP_WAIT_POLICY`/`OMP4RS_SPIN`
/// configuration ([`spin_iters`]); once exhausted the thread parks on
/// `notifier` and wakes on the next [`Notifier::notify_all`]. Correctness
/// contract: every state transition that can flip `pred` must be followed
/// by a `notify_all` on the same notifier.
pub fn wait_until(notifier: &Notifier, mut pred: impl FnMut() -> bool) {
    let mut spins = spin_iters();
    let mut spun = false;
    let mut parked = false;
    loop {
        // Epoch first, predicate second: a notification that lands between
        // the two invalidates the snapshot and the park falls through.
        let epoch = notifier.epoch();
        if pred() {
            if spun && !parked {
                note_spin_exit();
            }
            return;
        }
        if spins > 0 {
            spins -= 1;
            spun = true;
            spin_hint(spins);
            continue;
        }
        notifier.park(epoch);
        parked = true;
    }
}

/// [`wait_until`] with a deadline: spin-then-park until `pred()` returns
/// `true` or `deadline` passes.
///
/// Returns `true` when the predicate was satisfied, `false` on deadline
/// expiry (the predicate may of course become true immediately after — the
/// caller decides what a timeout means). The untimed [`wait_until`] remains
/// the zero-overhead path when no region deadline is armed.
///
/// Besides barriers and locks, this is how the trace pipeline's `block`
/// overflow policy waits for ring space ([`crate::ompt`]): sliced waits on
/// the ring's `space` notifier, bounded by the region deadline when one is
/// armed — the same primitive everywhere means the "no unbounded parking"
/// audit has a single choke point.
pub fn wait_until_deadline(
    notifier: &Notifier,
    deadline: Instant,
    mut pred: impl FnMut() -> bool,
) -> bool {
    let mut spins = spin_iters();
    let mut spun = false;
    let mut parked = false;
    loop {
        let epoch = notifier.epoch();
        if pred() {
            if spun && !parked {
                note_spin_exit();
            }
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        if spins > 0 {
            spins -= 1;
            spun = true;
            spin_hint(spins);
            continue;
        }
        notifier.park_until(epoch, deadline);
        parked = true;
    }
}

/// Which synchronization implementation a team uses.
///
/// Mirrors the paper's `runtime` (mutex-based, Pure mode) vs `cruntime`
/// (atomics-based, Hybrid/Compiled modes) split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Mutex-coordinated shared state (the pure-Python runtime analogue).
    Mutex,
    /// Atomic `fetch_add`/CAS shared state (the Cython cruntime analogue).
    #[default]
    Atomic,
}

/// A shared monotone counter used by dynamic/guided scheduling, `sections`,
/// and `single` claims.
///
/// The paper (§III-D): *"In the `runtime`, this coordination relies on a
/// shared mutex … In contrast, cruntime uses atomic operations, where counter
/// creation is done with an atomic swap, and updates are performed using a
/// `fetch_add` operation."*
#[derive(Debug)]
pub struct SharedCounter {
    backend: Backend,
    atomic: AtomicU64,
    mutex: Mutex<u64>,
}

impl SharedCounter {
    /// Create a counter starting at `0`.
    pub fn new(backend: Backend) -> SharedCounter {
        SharedCounter {
            backend,
            atomic: AtomicU64::new(0),
            mutex: Mutex::new(0),
        }
    }

    /// The backend this counter uses.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Atomically add `n`, returning the previous value.
    pub fn fetch_add(&self, n: u64) -> u64 {
        match self.backend {
            Backend::Atomic => self.atomic.fetch_add(n, Ordering::AcqRel),
            Backend::Mutex => {
                let mut guard = self.mutex.lock();
                let prev = *guard;
                *guard += n;
                prev
            }
        }
    }

    /// Read the current value.
    pub fn load(&self) -> u64 {
        match self.backend {
            Backend::Atomic => self.atomic.load(Ordering::Acquire),
            Backend::Mutex => *self.mutex.lock(),
        }
    }

    /// CAS-style update: `f` maps the current value to `Some(new)` to commit
    /// or `None` to abort. Returns `Ok(previous)` on commit, `Err(current)`
    /// on abort. Guided scheduling's decreasing-chunk claims use this.
    pub fn fetch_update(&self, mut f: impl FnMut(u64) -> Option<u64>) -> Result<u64, u64> {
        match self.backend {
            Backend::Atomic => {
                self.atomic
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, &mut f)
            }
            Backend::Mutex => {
                let mut guard = self.mutex.lock();
                match f(*guard) {
                    Some(new) => {
                        let prev = *guard;
                        *guard = new;
                        Ok(prev)
                    }
                    None => Err(*guard),
                }
            }
        }
    }
}

/// A one-shot claim flag (`single` regions, copyprivate publication).
///
/// `try_claim` returns `true` for exactly one caller.
#[derive(Debug)]
pub struct ClaimFlag {
    backend: Backend,
    atomic: AtomicBool,
    mutex: Mutex<bool>,
}

impl ClaimFlag {
    /// Create an unclaimed flag.
    pub fn new(backend: Backend) -> ClaimFlag {
        ClaimFlag {
            backend,
            atomic: AtomicBool::new(false),
            mutex: Mutex::new(false),
        }
    }

    /// Attempt the claim; exactly one caller ever receives `true`.
    ///
    /// The atomic backend performs the paper's "atomic swap"; the mutex
    /// backend locks.
    pub fn try_claim(&self) -> bool {
        match self.backend {
            Backend::Atomic => !self.atomic.swap(true, Ordering::AcqRel),
            Backend::Mutex => {
                let mut guard = self.mutex.lock();
                let claimed = *guard;
                *guard = true;
                !claimed
            }
        }
    }

    /// Whether the flag has been claimed.
    pub fn is_claimed(&self) -> bool {
        match self.backend {
            Backend::Atomic => self.atomic.load(Ordering::Acquire),
            Backend::Mutex => *self.mutex.lock(),
        }
    }
}

/// A latching cancellation flag (`cancel` directives, team poisoning).
///
/// Once set it stays set: teams are created fresh per parallel region, so a
/// cancelled team's residual barrier state never leaks into another region.
/// Like every shared primitive here it honours both backends: the atomic
/// backend uses a swap/load, the mutex backend takes a lock.
#[derive(Debug)]
pub struct CancelFlag {
    backend: Backend,
    atomic: AtomicBool,
    mutex: Mutex<bool>,
}

impl CancelFlag {
    /// Create an unset flag.
    pub fn new(backend: Backend) -> CancelFlag {
        CancelFlag {
            backend,
            atomic: AtomicBool::new(false),
            mutex: Mutex::new(false),
        }
    }

    /// Latch the flag. Returns `true` if this call performed the transition
    /// (exactly one caller observes `true`).
    pub fn set(&self) -> bool {
        match self.backend {
            Backend::Atomic => !self.atomic.swap(true, Ordering::AcqRel),
            Backend::Mutex => {
                let mut guard = self.mutex.lock();
                let was = *guard;
                *guard = true;
                !was
            }
        }
    }

    /// Whether the flag has been latched.
    pub fn is_set(&self) -> bool {
        match self.backend {
            Backend::Atomic => self.atomic.load(Ordering::Acquire),
            Backend::Mutex => *self.mutex.lock(),
        }
    }
}

/// An epoch-based eventcount: the wait/notify hub for barriers, task
/// queues, worksharing hand-offs, and locks.
///
/// The protocol is the classic eventcount three-step that makes **untimed**
/// parking race-free:
///
/// 1. the waiter snapshots [`epoch`](Notifier::epoch),
/// 2. re-checks its wait predicate,
/// 3. calls [`park`](Notifier::park) with the snapshot — which returns
///    immediately if any notification arrived after step 1.
///
/// [`notify_all`](Notifier::notify_all) bumps the epoch *before* waking, so
/// a notification racing with steps 1–3 is never lost. Waiters therefore
/// sleep indefinitely instead of tick-polling and wake the instant they are
/// signaled — this is what un-quantizes barrier release latency from the
/// historical 500µs tick. Timed waits ([`wait_tick`](Notifier::wait_tick) /
/// [`wait_timeout`](Notifier::wait_timeout)) remain for callers polling
/// external state with no notification edge.
#[derive(Debug, Default)]
pub struct Notifier {
    epoch: AtomicU64,
    waiters: AtomicU64,
    mutex: Mutex<()>,
    condvar: Condvar,
}

impl Notifier {
    /// Granularity of the timed fallback wait.
    pub const DEFAULT_TICK: Duration = Duration::from_micros(500);

    /// Create a notifier.
    pub fn new() -> Notifier {
        Notifier::default()
    }

    /// Current notification epoch. Snapshot this *before* checking the wait
    /// predicate, then hand the snapshot to [`park`](Notifier::park).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Wake all current waiters and invalidate in-flight epoch snapshots.
    pub fn notify_all(&self) {
        // SeqCst on both the epoch bump and the waiter-count read pairs with
        // the reverse-order SeqCst accesses in `park` (Dekker pattern): at
        // least one side always observes the other, so the waiter-count==0
        // fast path can never skip a waiter that would then sleep forever.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.mutex.lock();
            self.condvar.notify_all();
        }
    }

    /// Park until the epoch advances past `observed` (returns immediately if
    /// it already has). Any notification between the [`epoch`](Notifier::epoch)
    /// snapshot and this call bumps the epoch, so the park falls through
    /// rather than missing the wakeup.
    pub fn park(&self, observed: u64) {
        let mut guard = self.mutex.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut slept = false;
        while self.epoch.load(Ordering::SeqCst) == observed {
            slept = true;
            self.condvar.wait(&mut guard);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        if slept {
            note_park();
        }
    }

    /// [`park`](Notifier::park) bounded by a deadline: sleep until the epoch
    /// advances past `observed` **or** `deadline` passes, whichever is
    /// first. Returns `true` if the deadline had passed when the call
    /// returned (the epoch may have advanced too — callers re-check their
    /// predicate first, exactly as with the untimed park).
    pub fn park_until(&self, observed: u64, deadline: Instant) -> bool {
        let mut guard = self.mutex.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut slept = false;
        while self.epoch.load(Ordering::SeqCst) == observed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            slept = true;
            let timed_out = self
                .condvar
                .wait_for(&mut guard, deadline - now)
                .timed_out();
            if timed_out {
                break;
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        if slept {
            note_park();
        }
        Instant::now() >= deadline
    }

    /// Block until notified or the default tick elapses.
    pub fn wait_tick(&self) {
        self.wait_timeout(Notifier::DEFAULT_TICK);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) {
        let observed = self.epoch();
        let mut guard = self.mutex.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        if self.epoch.load(Ordering::SeqCst) == observed {
            let _ = self.condvar.wait_for(&mut guard, timeout);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A settable completion event (the analogue of `threading.Event` /
/// CPython's internal `PyEvent`).
///
/// The paper (§III-E): the pure runtime waits on `threading.Event` objects,
/// while the cruntime *"bypasses Python code entirely by interfacing directly
/// with `PyEvent`"*. Here the mutex backend keeps the flag under a lock and
/// the atomic backend reads an `AtomicBool` fast path before parking.
#[derive(Debug)]
pub struct OmpEvent {
    backend: Backend,
    atomic: AtomicBool,
    state: Mutex<bool>,
    condvar: Condvar,
}

impl OmpEvent {
    /// Create an unset event.
    pub fn new(backend: Backend) -> OmpEvent {
        OmpEvent {
            backend,
            atomic: AtomicBool::new(false),
            state: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Set the event, waking all waiters. Idempotent.
    pub fn set(&self) {
        match self.backend {
            Backend::Atomic => {
                self.atomic.store(true, Ordering::Release);
                let _guard = self.state.lock();
                self.condvar.notify_all();
            }
            Backend::Mutex => {
                let mut guard = self.state.lock();
                *guard = true;
                self.condvar.notify_all();
            }
        }
    }

    /// Whether the event is set.
    pub fn is_set(&self) -> bool {
        match self.backend {
            Backend::Atomic => self.atomic.load(Ordering::Acquire),
            Backend::Mutex => *self.state.lock(),
        }
    }

    /// Block until the event is set.
    ///
    /// Honors the wait policy: a bounded spin first ([`spin_iters`]), then an
    /// **untimed** park. Untimed is safe because [`set`](OmpEvent::set)
    /// notifies while holding the state lock, so a waiter that observed the
    /// flag unset under that lock is guaranteed to receive the notification.
    ///
    /// When the [`crate::ompt`] profiler is enabled, a blocking wait records
    /// a [`crate::ompt::EventKind::SyncWait`] with the measured duration
    /// (already-set events return without recording anything).
    pub fn wait(&self) {
        // Lock-free spin phase, identical for both backends (`is_set` does
        // the backend-appropriate read).
        let mut spins = spin_iters();
        let mut spun = false;
        while spins > 0 {
            if self.is_set() {
                if spun {
                    note_spin_exit();
                }
                return;
            }
            spins -= 1;
            spun = true;
            spin_hint(spins);
        }
        match self.backend {
            Backend::Atomic => {
                // Fast path without the lock.
                if self.atomic.load(Ordering::Acquire) {
                    return;
                }
                let probe = crate::ompt::enabled().then(std::time::Instant::now);
                let mut guard = self.state.lock();
                while !self.atomic.load(Ordering::Acquire) {
                    note_park();
                    self.condvar.wait(&mut guard);
                }
                drop(guard);
                Self::record_wait(probe);
            }
            Backend::Mutex => {
                let mut guard = self.state.lock();
                if *guard {
                    return;
                }
                let probe = crate::ompt::enabled().then(std::time::Instant::now);
                while !*guard {
                    note_park();
                    self.condvar.wait(&mut guard);
                }
                drop(guard);
                Self::record_wait(probe);
            }
        }
    }

    /// [`wait`](OmpEvent::wait) bounded by a deadline.
    ///
    /// Returns `true` if the event was observed set, `false` on deadline
    /// expiry. Taskwait and task-group joins use this when a region
    /// deadline is armed, so a task that never completes cannot strand its
    /// joiner forever.
    pub fn wait_deadline(&self, deadline: Instant) -> bool {
        let mut spins = spin_iters();
        let mut spun = false;
        while spins > 0 {
            if self.is_set() {
                if spun {
                    note_spin_exit();
                }
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            spins -= 1;
            spun = true;
            spin_hint(spins);
        }
        let probe = crate::ompt::enabled().then(Instant::now);
        let mut guard = self.state.lock();
        loop {
            let set = match self.backend {
                Backend::Atomic => self.atomic.load(Ordering::Acquire),
                Backend::Mutex => *guard,
            };
            if set {
                drop(guard);
                Self::record_wait(probe);
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            note_park();
            let _ = self.condvar.wait_for(&mut guard, deadline - now);
        }
    }

    fn record_wait(probe: Option<std::time::Instant>) {
        if let Some(start) = probe {
            crate::ompt::record_here(crate::ompt::EventKind::SyncWait {
                ns: start.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// A lock-free-or-locked MPMC bag of work items.
///
/// The atomic backend uses a lock-free segment queue (standing in for the
/// paper's `compare_exchange` linked-list enqueue); the mutex backend guards
/// a `VecDeque` with a lock (the paper's mutex-updated next-reference).
#[derive(Debug)]
pub struct WorkBag<T> {
    backend: Backend,
    locked: Mutex<std::collections::VecDeque<T>>,
    lockfree: crossbeam::queue::SegQueue<T>,
}

impl<T> WorkBag<T> {
    /// Create an empty bag.
    pub fn new(backend: Backend) -> WorkBag<T> {
        WorkBag {
            backend,
            locked: Mutex::new(std::collections::VecDeque::new()),
            lockfree: crossbeam::queue::SegQueue::new(),
        }
    }

    /// Enqueue an item.
    pub fn push(&self, item: T) {
        match self.backend {
            Backend::Atomic => self.lockfree.push(item),
            Backend::Mutex => self.locked.lock().push_back(item),
        }
    }

    /// Dequeue an item (FIFO), if any.
    pub fn pop(&self) -> Option<T> {
        match self.backend {
            Backend::Atomic => self.lockfree.pop(),
            Backend::Mutex => self.locked.lock().pop_front(),
        }
    }

    /// Whether the bag is currently empty (racy, advisory).
    pub fn is_empty(&self) -> bool {
        match self.backend {
            Backend::Atomic => self.lockfree.is_empty(),
            Backend::Mutex => self.locked.lock().is_empty(),
        }
    }
}

/// A bounded per-thread deque for work-stealing task execution.
///
/// The owner pushes and pops at the **back** (LIFO: the freshest task stays
/// cache-warm and task trees unwind depth-first); thieves steal from the
/// **front** (FIFO: the oldest — typically largest — unit of work migrates,
/// amortizing the steal). Capacity is fixed at construction and [`push`]
/// reports overflow instead of growing, so callers spill excess work to a
/// shared overflow queue rather than hoarding it on one thread.
///
/// [`push`]: WorkDeque::push
#[derive(Debug)]
pub struct WorkDeque<T> {
    cap: usize,
    items: Mutex<std::collections::VecDeque<T>>,
}

impl<T> WorkDeque<T> {
    /// Create an empty deque holding at most `cap` items (minimum 1).
    pub fn new(cap: usize) -> WorkDeque<T> {
        let cap = cap.max(1);
        WorkDeque {
            cap,
            items: Mutex::new(std::collections::VecDeque::with_capacity(cap)),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Owner push (back). Returns the item back on overflow.
    ///
    /// # Errors
    ///
    /// `Err(item)` when the deque is full — the caller owns the item again
    /// and should spill it to the overflow queue.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut q = self.items.lock();
        if q.len() >= self.cap {
            return Err(item);
        }
        q.push_back(item);
        Ok(())
    }

    /// Owner pop (back, LIFO).
    pub fn pop(&self) -> Option<T> {
        self.items.lock().pop_back()
    }

    /// Thief steal (front, FIFO).
    pub fn steal(&self) -> Option<T> {
        self.items.lock().pop_front()
    }

    /// Number of queued items (racy, advisory).
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the deque is currently empty (racy, advisory).
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn both() -> [Backend; 2] {
        [Backend::Mutex, Backend::Atomic]
    }

    #[test]
    fn counter_fetch_add_sequential() {
        for backend in both() {
            let c = SharedCounter::new(backend);
            assert_eq!(c.fetch_add(3), 0);
            assert_eq!(c.fetch_add(2), 3);
            assert_eq!(c.load(), 5);
        }
    }

    #[test]
    fn counter_fetch_add_concurrent_is_exact() {
        for backend in both() {
            let c = Arc::new(SharedCounter::new(backend));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let c = Arc::clone(&c);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.fetch_add(1);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(), 8000, "{backend:?}");
        }
    }

    #[test]
    fn counter_fetch_update_commit_and_abort() {
        for backend in both() {
            let c = SharedCounter::new(backend);
            c.fetch_add(10);
            assert_eq!(c.fetch_update(|v| Some(v * 2)), Ok(10));
            assert_eq!(c.load(), 20);
            assert_eq!(c.fetch_update(|_| None), Err(20));
            assert_eq!(c.load(), 20);
        }
    }

    #[test]
    fn claim_flag_exactly_once() {
        for backend in both() {
            let flag = Arc::new(ClaimFlag::new(backend));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let flag = Arc::clone(&flag);
                handles.push(std::thread::spawn(move || flag.try_claim() as usize));
            }
            let wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(wins, 1, "{backend:?}");
            assert!(flag.is_claimed());
        }
    }

    #[test]
    fn event_set_wakes_waiters() {
        for backend in both() {
            let event = Arc::new(OmpEvent::new(backend));
            assert!(!event.is_set());
            let mut handles = Vec::new();
            for _ in 0..4 {
                let event = Arc::clone(&event);
                handles.push(std::thread::spawn(move || {
                    event.wait();
                    assert!(event.is_set());
                }));
            }
            std::thread::sleep(Duration::from_millis(5));
            event.set();
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn event_wait_after_set_returns_immediately() {
        for backend in both() {
            let event = OmpEvent::new(backend);
            event.set();
            event.wait();
            event.set(); // idempotent
            assert!(event.is_set());
        }
    }

    #[test]
    fn work_bag_fifo_single_thread() {
        for backend in both() {
            let bag = WorkBag::new(backend);
            assert!(bag.is_empty());
            bag.push(1);
            bag.push(2);
            bag.push(3);
            assert_eq!(bag.pop(), Some(1));
            assert_eq!(bag.pop(), Some(2));
            assert_eq!(bag.pop(), Some(3));
            assert_eq!(bag.pop(), None);
        }
    }

    #[test]
    fn work_bag_concurrent_no_loss_no_dup() {
        for backend in both() {
            let bag = Arc::new(WorkBag::new(backend));
            let total = 4 * 500;
            let mut producers = Vec::new();
            for p in 0..4 {
                let bag = Arc::clone(&bag);
                producers.push(std::thread::spawn(move || {
                    for i in 0..500 {
                        bag.push(p * 500 + i);
                    }
                }));
            }
            let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
            let done = Arc::new(AtomicBool::new(false));
            let mut consumers = Vec::new();
            for _ in 0..4 {
                let bag = Arc::clone(&bag);
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                consumers.push(std::thread::spawn(move || loop {
                    match bag.pop() {
                        Some(v) => {
                            assert!(seen.lock().insert(v), "duplicate item {v}");
                        }
                        None => {
                            if done.load(Ordering::Acquire) && bag.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }));
            }
            for h in producers {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            for h in consumers {
                h.join().unwrap();
            }
            assert_eq!(seen.lock().len(), total, "{backend:?}");
        }
    }

    #[test]
    fn work_deque_owner_lifo_thief_fifo() {
        let d = WorkDeque::new(8);
        assert!(d.push(1).is_ok());
        assert!(d.push(2).is_ok());
        assert!(d.push(3).is_ok());
        assert_eq!(d.pop(), Some(3), "owner pops the freshest item");
        assert_eq!(d.steal(), Some(1), "thieves steal the oldest item");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn work_deque_overflows_at_capacity() {
        let d = WorkDeque::new(2);
        assert_eq!(d.capacity(), 2);
        assert!(d.push(10).is_ok());
        assert!(d.push(11).is_ok());
        assert_eq!(d.push(12), Err(12), "overflow hands the item back");
        assert_eq!(d.len(), 2);
        assert_eq!(d.steal(), Some(10));
        assert!(d.push(12).is_ok(), "space reopens after a steal");
    }

    #[test]
    fn cancel_flag_latches_once() {
        for backend in both() {
            let flag = CancelFlag::new(backend);
            assert!(!flag.is_set());
            assert!(flag.set(), "first set performs the transition");
            assert!(!flag.set(), "second set observes the latch");
            assert!(flag.is_set());
        }
    }

    #[test]
    fn cancel_flag_set_race_has_single_winner() {
        for backend in both() {
            let flag = Arc::new(CancelFlag::new(backend));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let flag = Arc::clone(&flag);
                handles.push(std::thread::spawn(move || flag.set() as usize));
            }
            let wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(wins, 1, "{backend:?}");
        }
    }

    #[test]
    fn notifier_timed_wait_returns() {
        let n = Notifier::new();
        let start = std::time::Instant::now();
        n.wait_timeout(Duration::from_millis(2));
        assert!(start.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn notifier_park_falls_through_after_prior_notify() {
        let n = Notifier::new();
        let epoch = n.epoch();
        n.notify_all();
        // The snapshot is stale, so this must return immediately rather
        // than sleeping — the core lost-wakeup defense.
        n.park(epoch);
    }

    #[test]
    fn notifier_notify_wakes_parked_thread() {
        let n = Arc::new(Notifier::new());
        let waiter = {
            let n = Arc::clone(&n);
            std::thread::spawn(move || {
                let epoch = n.epoch();
                n.park(epoch);
            })
        };
        // Keep notifying until the waiter exits: each notify bumps the
        // epoch, so whichever side wins the race the park terminates.
        while !waiter.is_finished() {
            n.notify_all();
            std::thread::yield_now();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn wait_until_observes_flag_from_other_thread() {
        let n = Arc::new(Notifier::new());
        let flag = Arc::new(AtomicBool::new(false));
        let setter = {
            let n = Arc::clone(&n);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                flag.store(true, Ordering::Release);
                n.notify_all();
            })
        };
        wait_until(&n, || flag.load(Ordering::Acquire));
        assert!(flag.load(Ordering::Acquire));
        setter.join().unwrap();
    }

    #[test]
    fn park_until_times_out_without_notification() {
        let n = Notifier::new();
        let epoch = n.epoch();
        let start = std::time::Instant::now();
        let expired = n.park_until(epoch, start + Duration::from_millis(5));
        assert!(expired, "no notification arrived: the deadline must trip");
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn wait_until_deadline_reports_timeout_and_success() {
        let n = Notifier::new();
        let start = std::time::Instant::now();
        assert!(
            !wait_until_deadline(&n, start + Duration::from_millis(5), || false),
            "a never-true predicate must time out"
        );
        assert!(wait_until_deadline(
            &n,
            std::time::Instant::now() + Duration::from_secs(5),
            || true
        ));
    }

    #[test]
    fn event_wait_deadline_both_outcomes() {
        for backend in both() {
            let event = Arc::new(OmpEvent::new(backend));
            let start = std::time::Instant::now();
            assert!(
                !event.wait_deadline(start + Duration::from_millis(5)),
                "{backend:?}: unset event must time out"
            );
            let setter = {
                let event = Arc::clone(&event);
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    event.set();
                })
            };
            assert!(
                event.wait_deadline(std::time::Instant::now() + Duration::from_secs(5)),
                "{backend:?}: a set event must satisfy the deadline wait"
            );
            setter.join().unwrap();
        }
    }

    #[test]
    fn wait_policy_parse_accepts_openmp_spellings() {
        assert_eq!(WaitPolicy::parse("active"), Some(WaitPolicy::Active));
        assert_eq!(WaitPolicy::parse("PASSIVE"), Some(WaitPolicy::Passive));
        assert_eq!(WaitPolicy::parse("  Active "), Some(WaitPolicy::Active));
        assert_eq!(WaitPolicy::parse("aggressive"), None);
        assert_eq!(WaitPolicy::parse(""), None);
        assert!(WaitPolicy::Active.default_spin() > WaitPolicy::Passive.default_spin());
    }
}
