//! Dual-backend synchronization primitives.
//!
//! The OMP4Py paper's central design is a *dual runtime*: a pure-Python
//! runtime whose shared state is coordinated with **mutexes**, and a
//! Cython-generated native runtime (`cruntime`) that replaces those mutexes
//! with **atomic operations** (`fetch_add` for loop-scheduling counters,
//! `compare_exchange` for task enqueueing, direct `PyEvent` signaling).
//!
//! [`Backend`] selects between the two faithful analogues here:
//!
//! * [`Backend::Mutex`] — every shared counter/flag/event update takes a
//!   `parking_lot::Mutex` (the paper's `runtime`, i.e. **Pure** mode).
//! * [`Backend::Atomic`] — lock-free `fetch_add`/CAS paths (the paper's
//!   `cruntime`, i.e. **Hybrid**/**Compiled** modes).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Which synchronization implementation a team uses.
///
/// Mirrors the paper's `runtime` (mutex-based, Pure mode) vs `cruntime`
/// (atomics-based, Hybrid/Compiled modes) split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Mutex-coordinated shared state (the pure-Python runtime analogue).
    Mutex,
    /// Atomic `fetch_add`/CAS shared state (the Cython cruntime analogue).
    #[default]
    Atomic,
}

/// A shared monotone counter used by dynamic/guided scheduling, `sections`,
/// and `single` claims.
///
/// The paper (§III-D): *"In the `runtime`, this coordination relies on a
/// shared mutex … In contrast, cruntime uses atomic operations, where counter
/// creation is done with an atomic swap, and updates are performed using a
/// `fetch_add` operation."*
#[derive(Debug)]
pub struct SharedCounter {
    backend: Backend,
    atomic: AtomicU64,
    mutex: Mutex<u64>,
}

impl SharedCounter {
    /// Create a counter starting at `0`.
    pub fn new(backend: Backend) -> SharedCounter {
        SharedCounter {
            backend,
            atomic: AtomicU64::new(0),
            mutex: Mutex::new(0),
        }
    }

    /// The backend this counter uses.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Atomically add `n`, returning the previous value.
    pub fn fetch_add(&self, n: u64) -> u64 {
        match self.backend {
            Backend::Atomic => self.atomic.fetch_add(n, Ordering::AcqRel),
            Backend::Mutex => {
                let mut guard = self.mutex.lock();
                let prev = *guard;
                *guard += n;
                prev
            }
        }
    }

    /// Read the current value.
    pub fn load(&self) -> u64 {
        match self.backend {
            Backend::Atomic => self.atomic.load(Ordering::Acquire),
            Backend::Mutex => *self.mutex.lock(),
        }
    }

    /// CAS-style update: `f` maps the current value to `Some(new)` to commit
    /// or `None` to abort. Returns `Ok(previous)` on commit, `Err(current)`
    /// on abort. Guided scheduling's decreasing-chunk claims use this.
    pub fn fetch_update(&self, mut f: impl FnMut(u64) -> Option<u64>) -> Result<u64, u64> {
        match self.backend {
            Backend::Atomic => {
                self.atomic
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, &mut f)
            }
            Backend::Mutex => {
                let mut guard = self.mutex.lock();
                match f(*guard) {
                    Some(new) => {
                        let prev = *guard;
                        *guard = new;
                        Ok(prev)
                    }
                    None => Err(*guard),
                }
            }
        }
    }
}

/// A one-shot claim flag (`single` regions, copyprivate publication).
///
/// `try_claim` returns `true` for exactly one caller.
#[derive(Debug)]
pub struct ClaimFlag {
    backend: Backend,
    atomic: AtomicBool,
    mutex: Mutex<bool>,
}

impl ClaimFlag {
    /// Create an unclaimed flag.
    pub fn new(backend: Backend) -> ClaimFlag {
        ClaimFlag {
            backend,
            atomic: AtomicBool::new(false),
            mutex: Mutex::new(false),
        }
    }

    /// Attempt the claim; exactly one caller ever receives `true`.
    ///
    /// The atomic backend performs the paper's "atomic swap"; the mutex
    /// backend locks.
    pub fn try_claim(&self) -> bool {
        match self.backend {
            Backend::Atomic => !self.atomic.swap(true, Ordering::AcqRel),
            Backend::Mutex => {
                let mut guard = self.mutex.lock();
                let claimed = *guard;
                *guard = true;
                !claimed
            }
        }
    }

    /// Whether the flag has been claimed.
    pub fn is_claimed(&self) -> bool {
        match self.backend {
            Backend::Atomic => self.atomic.load(Ordering::Acquire),
            Backend::Mutex => *self.mutex.lock(),
        }
    }
}

/// A latching cancellation flag (`cancel` directives, team poisoning).
///
/// Once set it stays set: teams are created fresh per parallel region, so a
/// cancelled team's residual barrier state never leaks into another region.
/// Like every shared primitive here it honours both backends: the atomic
/// backend uses a swap/load, the mutex backend takes a lock.
#[derive(Debug)]
pub struct CancelFlag {
    backend: Backend,
    atomic: AtomicBool,
    mutex: Mutex<bool>,
}

impl CancelFlag {
    /// Create an unset flag.
    pub fn new(backend: Backend) -> CancelFlag {
        CancelFlag {
            backend,
            atomic: AtomicBool::new(false),
            mutex: Mutex::new(false),
        }
    }

    /// Latch the flag. Returns `true` if this call performed the transition
    /// (exactly one caller observes `true`).
    pub fn set(&self) -> bool {
        match self.backend {
            Backend::Atomic => !self.atomic.swap(true, Ordering::AcqRel),
            Backend::Mutex => {
                let mut guard = self.mutex.lock();
                let was = *guard;
                *guard = true;
                !was
            }
        }
    }

    /// Whether the flag has been latched.
    pub fn is_set(&self) -> bool {
        match self.backend {
            Backend::Atomic => self.atomic.load(Ordering::Acquire),
            Backend::Mutex => *self.mutex.lock(),
        }
    }
}

/// A wait/notify hub pairing a `Condvar` with a dummy mutex.
///
/// Waits are always timed (default granularity [`Notifier::DEFAULT_TICK`]) so
/// state checked outside the lock can never produce a lost-wakeup hang.
#[derive(Debug, Default)]
pub struct Notifier {
    mutex: Mutex<()>,
    condvar: Condvar,
}

impl Notifier {
    /// Granularity of the timed fallback wait.
    pub const DEFAULT_TICK: Duration = Duration::from_micros(500);

    /// Create a notifier.
    pub fn new() -> Notifier {
        Notifier::default()
    }

    /// Wake all current waiters.
    pub fn notify_all(&self) {
        let _guard = self.mutex.lock();
        self.condvar.notify_all();
    }

    /// Block until notified or the default tick elapses.
    pub fn wait_tick(&self) {
        self.wait_timeout(Notifier::DEFAULT_TICK);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) {
        let mut guard = self.mutex.lock();
        let _ = self.condvar.wait_for(&mut guard, timeout);
    }
}

/// A settable completion event (the analogue of `threading.Event` /
/// CPython's internal `PyEvent`).
///
/// The paper (§III-E): the pure runtime waits on `threading.Event` objects,
/// while the cruntime *"bypasses Python code entirely by interfacing directly
/// with `PyEvent`"*. Here the mutex backend keeps the flag under a lock and
/// the atomic backend reads an `AtomicBool` fast path before parking.
#[derive(Debug)]
pub struct OmpEvent {
    backend: Backend,
    atomic: AtomicBool,
    state: Mutex<bool>,
    condvar: Condvar,
}

impl OmpEvent {
    /// Create an unset event.
    pub fn new(backend: Backend) -> OmpEvent {
        OmpEvent {
            backend,
            atomic: AtomicBool::new(false),
            state: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Set the event, waking all waiters. Idempotent.
    pub fn set(&self) {
        match self.backend {
            Backend::Atomic => {
                self.atomic.store(true, Ordering::Release);
                let _guard = self.state.lock();
                self.condvar.notify_all();
            }
            Backend::Mutex => {
                let mut guard = self.state.lock();
                *guard = true;
                self.condvar.notify_all();
            }
        }
    }

    /// Whether the event is set.
    pub fn is_set(&self) -> bool {
        match self.backend {
            Backend::Atomic => self.atomic.load(Ordering::Acquire),
            Backend::Mutex => *self.state.lock(),
        }
    }

    /// Block until the event is set.
    ///
    /// When the [`crate::ompt`] profiler is enabled, a blocking wait records
    /// a [`crate::ompt::EventKind::SyncWait`] with the measured duration
    /// (already-set events return without recording anything).
    pub fn wait(&self) {
        match self.backend {
            Backend::Atomic => {
                // Fast path without the lock.
                if self.atomic.load(Ordering::Acquire) {
                    return;
                }
                let probe = crate::ompt::enabled().then(std::time::Instant::now);
                let mut guard = self.state.lock();
                while !self.atomic.load(Ordering::Acquire) {
                    let _ = self.condvar.wait_for(&mut guard, Duration::from_millis(1));
                }
                drop(guard);
                Self::record_wait(probe);
            }
            Backend::Mutex => {
                let mut guard = self.state.lock();
                if *guard {
                    return;
                }
                let probe = crate::ompt::enabled().then(std::time::Instant::now);
                while !*guard {
                    let _ = self.condvar.wait_for(&mut guard, Duration::from_millis(1));
                }
                drop(guard);
                Self::record_wait(probe);
            }
        }
    }

    fn record_wait(probe: Option<std::time::Instant>) {
        if let Some(start) = probe {
            crate::ompt::record_here(crate::ompt::EventKind::SyncWait {
                ns: start.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// A lock-free-or-locked MPMC bag of work items.
///
/// The atomic backend uses a lock-free segment queue (standing in for the
/// paper's `compare_exchange` linked-list enqueue); the mutex backend guards
/// a `VecDeque` with a lock (the paper's mutex-updated next-reference).
#[derive(Debug)]
pub struct WorkBag<T> {
    backend: Backend,
    locked: Mutex<std::collections::VecDeque<T>>,
    lockfree: crossbeam::queue::SegQueue<T>,
}

impl<T> WorkBag<T> {
    /// Create an empty bag.
    pub fn new(backend: Backend) -> WorkBag<T> {
        WorkBag {
            backend,
            locked: Mutex::new(std::collections::VecDeque::new()),
            lockfree: crossbeam::queue::SegQueue::new(),
        }
    }

    /// Enqueue an item.
    pub fn push(&self, item: T) {
        match self.backend {
            Backend::Atomic => self.lockfree.push(item),
            Backend::Mutex => self.locked.lock().push_back(item),
        }
    }

    /// Dequeue an item (FIFO), if any.
    pub fn pop(&self) -> Option<T> {
        match self.backend {
            Backend::Atomic => self.lockfree.pop(),
            Backend::Mutex => self.locked.lock().pop_front(),
        }
    }

    /// Whether the bag is currently empty (racy, advisory).
    pub fn is_empty(&self) -> bool {
        match self.backend {
            Backend::Atomic => self.lockfree.is_empty(),
            Backend::Mutex => self.locked.lock().is_empty(),
        }
    }
}

/// A bounded per-thread deque for work-stealing task execution.
///
/// The owner pushes and pops at the **back** (LIFO: the freshest task stays
/// cache-warm and task trees unwind depth-first); thieves steal from the
/// **front** (FIFO: the oldest — typically largest — unit of work migrates,
/// amortizing the steal). Capacity is fixed at construction and [`push`]
/// reports overflow instead of growing, so callers spill excess work to a
/// shared overflow queue rather than hoarding it on one thread.
///
/// [`push`]: WorkDeque::push
#[derive(Debug)]
pub struct WorkDeque<T> {
    cap: usize,
    items: Mutex<std::collections::VecDeque<T>>,
}

impl<T> WorkDeque<T> {
    /// Create an empty deque holding at most `cap` items (minimum 1).
    pub fn new(cap: usize) -> WorkDeque<T> {
        let cap = cap.max(1);
        WorkDeque {
            cap,
            items: Mutex::new(std::collections::VecDeque::with_capacity(cap)),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Owner push (back). Returns the item back on overflow.
    ///
    /// # Errors
    ///
    /// `Err(item)` when the deque is full — the caller owns the item again
    /// and should spill it to the overflow queue.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut q = self.items.lock();
        if q.len() >= self.cap {
            return Err(item);
        }
        q.push_back(item);
        Ok(())
    }

    /// Owner pop (back, LIFO).
    pub fn pop(&self) -> Option<T> {
        self.items.lock().pop_back()
    }

    /// Thief steal (front, FIFO).
    pub fn steal(&self) -> Option<T> {
        self.items.lock().pop_front()
    }

    /// Number of queued items (racy, advisory).
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the deque is currently empty (racy, advisory).
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn both() -> [Backend; 2] {
        [Backend::Mutex, Backend::Atomic]
    }

    #[test]
    fn counter_fetch_add_sequential() {
        for backend in both() {
            let c = SharedCounter::new(backend);
            assert_eq!(c.fetch_add(3), 0);
            assert_eq!(c.fetch_add(2), 3);
            assert_eq!(c.load(), 5);
        }
    }

    #[test]
    fn counter_fetch_add_concurrent_is_exact() {
        for backend in both() {
            let c = Arc::new(SharedCounter::new(backend));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let c = Arc::clone(&c);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.fetch_add(1);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(), 8000, "{backend:?}");
        }
    }

    #[test]
    fn counter_fetch_update_commit_and_abort() {
        for backend in both() {
            let c = SharedCounter::new(backend);
            c.fetch_add(10);
            assert_eq!(c.fetch_update(|v| Some(v * 2)), Ok(10));
            assert_eq!(c.load(), 20);
            assert_eq!(c.fetch_update(|_| None), Err(20));
            assert_eq!(c.load(), 20);
        }
    }

    #[test]
    fn claim_flag_exactly_once() {
        for backend in both() {
            let flag = Arc::new(ClaimFlag::new(backend));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let flag = Arc::clone(&flag);
                handles.push(std::thread::spawn(move || flag.try_claim() as usize));
            }
            let wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(wins, 1, "{backend:?}");
            assert!(flag.is_claimed());
        }
    }

    #[test]
    fn event_set_wakes_waiters() {
        for backend in both() {
            let event = Arc::new(OmpEvent::new(backend));
            assert!(!event.is_set());
            let mut handles = Vec::new();
            for _ in 0..4 {
                let event = Arc::clone(&event);
                handles.push(std::thread::spawn(move || {
                    event.wait();
                    assert!(event.is_set());
                }));
            }
            std::thread::sleep(Duration::from_millis(5));
            event.set();
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn event_wait_after_set_returns_immediately() {
        for backend in both() {
            let event = OmpEvent::new(backend);
            event.set();
            event.wait();
            event.set(); // idempotent
            assert!(event.is_set());
        }
    }

    #[test]
    fn work_bag_fifo_single_thread() {
        for backend in both() {
            let bag = WorkBag::new(backend);
            assert!(bag.is_empty());
            bag.push(1);
            bag.push(2);
            bag.push(3);
            assert_eq!(bag.pop(), Some(1));
            assert_eq!(bag.pop(), Some(2));
            assert_eq!(bag.pop(), Some(3));
            assert_eq!(bag.pop(), None);
        }
    }

    #[test]
    fn work_bag_concurrent_no_loss_no_dup() {
        for backend in both() {
            let bag = Arc::new(WorkBag::new(backend));
            let total = 4 * 500;
            let mut producers = Vec::new();
            for p in 0..4 {
                let bag = Arc::clone(&bag);
                producers.push(std::thread::spawn(move || {
                    for i in 0..500 {
                        bag.push(p * 500 + i);
                    }
                }));
            }
            let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
            let done = Arc::new(AtomicBool::new(false));
            let mut consumers = Vec::new();
            for _ in 0..4 {
                let bag = Arc::clone(&bag);
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                consumers.push(std::thread::spawn(move || loop {
                    match bag.pop() {
                        Some(v) => {
                            assert!(seen.lock().insert(v), "duplicate item {v}");
                        }
                        None => {
                            if done.load(Ordering::Acquire) && bag.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }));
            }
            for h in producers {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            for h in consumers {
                h.join().unwrap();
            }
            assert_eq!(seen.lock().len(), total, "{backend:?}");
        }
    }

    #[test]
    fn work_deque_owner_lifo_thief_fifo() {
        let d = WorkDeque::new(8);
        assert!(d.push(1).is_ok());
        assert!(d.push(2).is_ok());
        assert!(d.push(3).is_ok());
        assert_eq!(d.pop(), Some(3), "owner pops the freshest item");
        assert_eq!(d.steal(), Some(1), "thieves steal the oldest item");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn work_deque_overflows_at_capacity() {
        let d = WorkDeque::new(2);
        assert_eq!(d.capacity(), 2);
        assert!(d.push(10).is_ok());
        assert!(d.push(11).is_ok());
        assert_eq!(d.push(12), Err(12), "overflow hands the item back");
        assert_eq!(d.len(), 2);
        assert_eq!(d.steal(), Some(10));
        assert!(d.push(12).is_ok(), "space reopens after a steal");
    }

    #[test]
    fn cancel_flag_latches_once() {
        for backend in both() {
            let flag = CancelFlag::new(backend);
            assert!(!flag.is_set());
            assert!(flag.set(), "first set performs the transition");
            assert!(!flag.set(), "second set observes the latch");
            assert!(flag.is_set());
        }
    }

    #[test]
    fn cancel_flag_set_race_has_single_winner() {
        for backend in both() {
            let flag = Arc::new(CancelFlag::new(backend));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let flag = Arc::clone(&flag);
                handles.push(std::thread::spawn(move || flag.set() as usize));
            }
            let wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(wins, 1, "{backend:?}");
        }
    }

    #[test]
    fn notifier_timed_wait_returns() {
        let n = Notifier::new();
        let start = std::time::Instant::now();
        n.wait_timeout(Duration::from_millis(2));
        assert!(start.elapsed() >= Duration::from_millis(1));
    }
}
