//! Compiled-mode execution API.
//!
//! This is the Rust analogue of the paper's **Compiled**/**CompiledDT**
//! modes: user code is native (Rust closures) and links directly against the
//! runtime, with directives expressed as clause strings or builders.
//!
//! ```
//! use omp4rs::exec::{parallel, ForSpec};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let total = AtomicU64::new(0);
//! parallel("num_threads(4)", |ctx| {
//!     let mut local = 0u64;
//!     ctx.for_each(ForSpec::parse("schedule(dynamic, 8)").unwrap(), 0..100, |i| {
//!         local += i as u64;
//!     });
//!     total.fetch_add(local, Ordering::Relaxed);
//! });
//! assert_eq!(total.load(Ordering::Relaxed), 4950);
//! ```

use std::any::Any;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::adaptive;
use crate::context;
use crate::depgraph::{self, Dep};
use crate::directive::{CancelConstruct, Clause, Directive, ScheduleKind};
use crate::error::OmpError;
use crate::icv::Icvs;
use crate::locks;
use crate::schedule::{ForBounds, LoopDims};
use crate::sync::Backend;
use crate::team::Team;

/// Stable loop identity for a compiled-mode loop: a hash of the caller's
/// `file:line:column`. "Same loop" for native closures means the same source
/// location invoking the worksharing API, which is exactly what
/// `#[track_caller]` exposes.
fn site_key(loc: &'static std::panic::Location<'static>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    loc.file().hash(&mut h);
    loc.line().hash(&mut h);
    loc.column().hash(&mut h);
    h.finish()
}

/// Invariant lifetime marker (prevents scope-shortening coercions that would
/// let tasks capture data shorter-lived than the parallel region).
type ScopeMarker<'scope> = PhantomData<std::cell::Cell<&'scope ()>>;

/// Configuration for a `parallel` directive.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// `num_threads(n)` clause; `None` uses the `nthreads-var` ICV.
    pub num_threads: Option<usize>,
    /// `if(expr)` clause result; `false` serializes the region.
    pub if_parallel: bool,
    /// Synchronization backend for the team's runtime internals.
    pub backend: Backend,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            num_threads: None,
            if_parallel: true,
            backend: Backend::Atomic,
        }
    }
}

impl ParallelConfig {
    /// Default configuration (atomic backend, ICV thread count).
    pub fn new() -> ParallelConfig {
        ParallelConfig::default()
    }

    /// Set an explicit team size.
    pub fn num_threads(mut self, n: usize) -> ParallelConfig {
        self.num_threads = Some(n.max(1));
        self
    }

    /// Set the `if` clause value.
    pub fn if_parallel(mut self, cond: bool) -> ParallelConfig {
        self.if_parallel = cond;
        self
    }

    /// Select the synchronization backend.
    pub fn backend(mut self, backend: Backend) -> ParallelConfig {
        self.backend = backend;
        self
    }

    /// Parse `parallel` clause text (e.g. `"num_threads(4) if(1)"`).
    ///
    /// In compiled mode `num_threads`/`if` arguments must be integer
    /// constants; host-evaluated expressions use the builder methods instead.
    ///
    /// # Errors
    ///
    /// [`OmpError`] for invalid clause text or non-constant arguments.
    pub fn parse(clauses: &str) -> Result<ParallelConfig, OmpError> {
        let mut cfg = ParallelConfig::default();
        if clauses.trim().is_empty() {
            return Ok(cfg);
        }
        let d = Directive::parse(&format!("parallel {clauses}"))?;
        for clause in &d.clauses {
            match clause {
                Clause::NumThreads(expr) => {
                    let n: usize =
                        expr.trim()
                            .parse()
                            .map_err(|_| OmpError::NonConstantClause {
                                clause: "num_threads",
                                expr: expr.clone(),
                            })?;
                    cfg.num_threads = Some(n.max(1));
                }
                Clause::If { expr, .. } => {
                    let v: i64 = expr
                        .trim()
                        .parse()
                        .map_err(|_| OmpError::NonConstantClause {
                            clause: "if",
                            expr: expr.clone(),
                        })?;
                    cfg.if_parallel = v != 0;
                }
                // Data-sharing clauses are a no-op in compiled mode: Rust's
                // ownership rules make privatization explicit in user code.
                Clause::Private(_)
                | Clause::Firstprivate(_)
                | Clause::Shared(_)
                | Clause::Default(_)
                | Clause::Copyin(_)
                | Clause::Reduction { .. } => {}
                other => {
                    return Err(OmpError::InvalidContext(format!(
                        "clause '{}' is not supported by ParallelConfig::parse",
                        other.keyword()
                    )))
                }
            }
        }
        Ok(cfg)
    }
}

/// Loop specification for [`WorkerCtx::for_each`] / [`WorkerCtx::for_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ForSpec {
    /// `schedule(kind[, chunk])`; `None` uses `def-sched-var`.
    pub schedule: Option<(ScheduleKind, Option<u64>)>,
    /// `nowait`: skip the implicit end-of-loop barrier.
    pub nowait: bool,
    /// `ordered`: the loop body may call [`WorkerCtx::ordered`].
    pub ordered: bool,
}

impl ForSpec {
    /// The default specification (static schedule, barrier at end).
    pub fn new() -> ForSpec {
        ForSpec::default()
    }

    /// Set the schedule.
    pub fn schedule(mut self, kind: ScheduleKind, chunk: Option<u64>) -> ForSpec {
        self.schedule = Some((kind, chunk));
        self
    }

    /// Skip the implicit barrier.
    pub fn nowait(mut self) -> ForSpec {
        self.nowait = true;
        self
    }

    /// Enable `ordered` regions in the loop body.
    pub fn ordered(mut self) -> ForSpec {
        self.ordered = true;
        self
    }

    /// Parse `for` clause text (e.g. `"schedule(guided, 4) nowait"`).
    ///
    /// # Errors
    ///
    /// [`OmpError`] for invalid clause text, non-constant chunk sizes, or
    /// clauses without a compiled-mode meaning (`collapse` is implied by
    /// [`WorkerCtx::for_each2`]).
    pub fn parse(text: &str) -> Result<ForSpec, OmpError> {
        let mut spec = ForSpec::default();
        if text.trim().is_empty() {
            return Ok(spec);
        }
        let d = Directive::parse(&format!("for {text}"))?;
        for clause in &d.clauses {
            match clause {
                Clause::Schedule { kind, chunk } => {
                    let chunk = match chunk {
                        Some(expr) => Some(expr.trim().parse::<u64>().map_err(|_| {
                            OmpError::NonConstantClause {
                                clause: "schedule",
                                expr: expr.clone(),
                            }
                        })?),
                        None => None,
                    };
                    spec.schedule = Some((*kind, chunk));
                }
                Clause::Nowait(_) => spec.nowait = true,
                Clause::Ordered => spec.ordered = true,
                Clause::Collapse(_) => {
                    // Collapse is expressed structurally (for_each2) in
                    // compiled mode; accept and ignore the clause.
                }
                Clause::Private(_)
                | Clause::Firstprivate(_)
                | Clause::Lastprivate(_)
                | Clause::Reduction { .. } => {}
                other => {
                    return Err(OmpError::InvalidContext(format!(
                        "clause '{}' is not supported by ForSpec::parse",
                        other.keyword()
                    )))
                }
            }
        }
        Ok(spec)
    }
}

impl std::str::FromStr for ForSpec {
    type Err = OmpError;
    fn from_str(s: &str) -> Result<ForSpec, OmpError> {
        ForSpec::parse(s)
    }
}

/// Open a parallel region with clause text (panics on malformed clauses —
/// they are programmer errors, like a malformed `format!` string).
///
/// See [`parallel_region`] for the builder-based, non-panicking variant.
///
/// # Panics
///
/// Panics if `clauses` fails to parse, or propagates the first panic raised
/// by any team thread or task after the region completes.
pub fn parallel<'env, F>(clauses: &str, body: F)
where
    F: Fn(&WorkerCtx<'env>) + Sync,
{
    let cfg = match ParallelConfig::parse(clauses) {
        Ok(cfg) => cfg,
        Err(e) => panic!(
            "malformed parallel clauses {clauses:?}: {e} \
             (parallel_region(&ParallelConfig, …) is the non-panicking variant)"
        ),
    };
    parallel_region(&cfg, body);
}

/// A `*const T` that may cross to pool threads. Safety is argued at each
/// dereference site (the pooled-region latch protocol), not here: a raw
/// pointer, unlike a reference, is allowed to dangle as long as it is not
/// dereferenced, which is exactly the guarantee the post-barrier epilogue
/// needs.
struct SendConstPtr<T: ?Sized>(*const T);

impl<T: ?Sized> Clone for SendConstPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ?Sized> Copy for SendConstPtr<T> {}

// SAFETY: the pointee types used with this (the region body `F: Sync` and
// the panic slot `Mutex<..>: Sync`) are all sharable across threads; the
// wrapper only restores the `Send`-ability that `&T where T: Sync` would
// have had.
unsafe impl<T: ?Sized> Send for SendConstPtr<T> {}

/// The pooled job's entry into [`run_worker`], as a plain fn pointer so the
/// boxed `'static` job closure never mentions the region body's
/// non-`'static` type `F`.
type PooledShim = fn(
    Arc<Team>,
    usize,
    Vec<(usize, usize)>,
    SendConstPtr<()>,
    &Mutex<Option<Box<dyn Any + Send>>>,
);

/// Restore the erased body pointer to `&F` and run the worker. SAFETY: see
/// the latch protocol argument at the pooled dispatch site in
/// [`parallel_region`]; the erased pointer was created from `&F` there.
fn pooled_worker_shim<'env, F>(
    team: Arc<Team>,
    thread_num: usize,
    positions: Vec<(usize, usize)>,
    body: SendConstPtr<()>,
    panic_slot: &Mutex<Option<Box<dyn Any + Send>>>,
) where
    F: Fn(&WorkerCtx<'env>) + Sync,
{
    let body = unsafe { &*(body.0 as *const F) };
    run_worker(team, thread_num, positions, body, panic_slot);
}

/// Open a parallel region: fork a team, run `body` on every thread, join at
/// the implicit end barrier (which also drains the task queue).
///
/// Nested calls create teams of one thread unless `omp_set_nested(true)`.
///
/// # Panics
///
/// Re-raises the first panic captured from a team thread or task after all
/// threads have joined (the paper's rule: exceptions never propagate *out of*
/// a running region; here they are re-thrown once the region is complete).
pub fn parallel_region<'env, F>(cfg: &ParallelConfig, body: F)
where
    F: Fn(&WorkerCtx<'env>) + Sync,
{
    crate::ompt::ensure_env_init();
    let icvs = Icvs::current();
    let level = context::level();
    let active = context::active_level();
    let serialized =
        !cfg.if_parallel || (level >= 1 && !icvs.nested) || active >= icvs.max_active_levels;
    let mut size = if serialized {
        1
    } else {
        cfg.num_threads
            .unwrap_or(icvs.num_threads)
            .min(icvs.thread_limit)
            .max(1)
    };
    // Admission control (`dyn-var`): under pool pressure, grant fewer
    // threads than requested — shrink toward the remaining concurrency
    // budget, shedding to caller-runs-serial as the last resort — instead of
    // oversubscribing. Only top-level pooled regions are admitted this way;
    // nested regions already serialize by default.
    if icvs.dynamic && !serialized && size > 1 && level == 0 && icvs.pool {
        size = crate::pool::admit(size, icvs.thread_limit);
    }
    // Threads-in-flight accounting feeding future admission decisions; the
    // guard spans the whole region including the join below. Only the pool
    // workers (`size - 1`) are charged: the master runs on its caller's
    // thread, which exists whether or not the region parallelizes, and a
    // serial region (including one just shed by `admit`) takes no workers
    // at all. Charging serial regions used to make shedding self-
    // sustaining — each shed region's own charge helped keep the budget
    // exhausted for the next — which is how BENCH_serve.json ended up
    // shedding >90% of offered regions.
    let _inflight =
        (level == 0 && icvs.pool && size > 1).then(|| crate::pool::InflightGuard::new(size - 1));

    let team = Team::new(size, cfg.backend);
    let parent_positions = context::current_positions();
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    // Hot teams: top-level multi-thread regions are dispatched to the
    // persistent worker pool (re-binding parked threads to this region's
    // fresh team) instead of spawning OS threads per region. Nested regions
    // bypass the pool and spawn scoped threads, keeping the pool's size
    // bounded by top-level team sizes. `OMP4RS_POOL=off` forces the
    // scoped-spawn path for A/B measurement of the pool's benefit.
    if size > 1 && level == 0 && icvs.pool {
        let latch = crate::pool::RegionLatch::new(size - 1);
        // Arm the team: the final barrier's releaser zeroes the latch for
        // the whole gang, so the master proceeds the moment the region's
        // last rendezvous completes instead of waiting for each worker's
        // post-barrier bookkeeping to be scheduled.
        team.set_final_latch(Arc::clone(&latch));
        // SAFETY (for the dereferences in `pooled_worker_shim` and the
        // panic capture below): `body` and `panic_slot` live on the
        // master's stack, which stays alive until the latch reaches zero
        // (`latch.wait()` below). The latch reaches zero either (a) at the
        // final barrier's release — which happens after every body has
        // returned, every panic is recorded, and every region task has
        // drained, i.e. after the last dereference of these pointers on
        // any thread — or (b) after each job has returned (cancel/poison
        // paths, where no release ever fires). Raw pointers rather than
        // references so that no reference outlives the referent on path
        // (a): the worker's post-barrier epilogue holds only pointers it
        // no longer dereferences. The body pointer is type-erased and
        // restored by a monomorphized shim because the boxed `'static` job
        // closure must not mention the non-`'static` type `F`.
        let body_ptr = SendConstPtr(&body as *const F as *const ());
        let panic_ptr = SendConstPtr(&panic_slot as *const Mutex<Option<Box<dyn Any + Send>>>);
        let shim: PooledShim = pooled_worker_shim::<F>;
        let mut jobs: Vec<crate::pool::Job> = Vec::with_capacity(size - 1);
        for t in 1..size {
            let team_job = Arc::clone(&team);
            let positions = parent_positions.clone();
            let job_latch = Arc::clone(&latch);
            let job: crate::pool::Job = Box::new(move || {
                // Whole-struct bindings: edition-2021 closures would
                // otherwise capture the raw-pointer *fields*, which are not
                // `Send` — the wrappers are.
                let (body_ptr, panic_ptr) = (body_ptr, panic_ptr);
                let panic_slot = unsafe { &*panic_ptr.0 };
                // Defense in depth: `run_worker` already catches body and
                // final-barrier panics, but anything escaping it (e.g. an
                // injected worker-dispatch fault) must still poison the
                // region and be captured — the job must never unwind into
                // the pool with the team left un-poisoned, or its barrier
                // would strand the rest of the team.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::faults::on_event(crate::faults::FaultSite::WorkerDispatch);
                    shim(Arc::clone(&team_job), t, positions, body_ptr, panic_slot);
                }));
                if let Err(p) = result {
                    // The unwind escaped before this thread's barrier
                    // arrival was counted (everything from arrival to the
                    // epilogue is no-unwind, and the epilogue's own panics
                    // are swallowed in `run_worker`), so the region can
                    // never release and the master is pinned in
                    // `latch.wait()` by this job's outstanding count: the
                    // write cannot race the master's exit. The armed check
                    // is belt-and-braces against that invariant eroding.
                    team_job.poison();
                    if job_latch.armed() {
                        let mut slot = panic_slot.lock();
                        if slot.is_none() {
                            *slot = Some(p);
                        }
                    }
                }
            });
            jobs.push(job);
        }
        crate::pool::dispatch(jobs, &latch);
        run_worker(
            Arc::clone(&team),
            0,
            parent_positions.clone(),
            &body,
            &panic_slot,
        );
        latch.wait();
        crate::pool::publish_counters();
    } else {
        std::thread::scope(|scope| {
            let mut spawn_failed = false;
            for t in 1..size {
                let worker_team = Arc::clone(&team);
                let positions = parent_positions.clone();
                let body = &body;
                let panic_slot = &panic_slot;
                let spawned = std::thread::Builder::new()
                    .name(format!("omp4rs-worker-{t}"))
                    // Generous stacks: Pure/Hybrid-mode workers run a
                    // tree-walking interpreter with deep recursion.
                    .stack_size(16 * 1024 * 1024)
                    .spawn_scoped(scope, move || {
                        run_worker(worker_team, t, positions, body, panic_slot);
                    });
                if let Err(e) = spawned {
                    // Degrade instead of deadlocking: poison the team so
                    // the members already spawned exit through the
                    // cancellation path rather than waiting at a barrier
                    // for arrivals that will never come, and surface the
                    // OS failure as this region's panic after the join.
                    team.poison();
                    let mut slot = panic_slot.lock();
                    if slot.is_none() {
                        *slot = Some(Box::new(format!("failed to spawn team thread: {e}")));
                    }
                    spawn_failed = true;
                    break;
                }
            }
            if !spawn_failed {
                run_worker(
                    Arc::clone(&team),
                    0,
                    parent_positions.clone(),
                    &body,
                    &panic_slot,
                );
            }
        });
    }

    // Region exit on both paths: publish the dependence-graph counters
    // alongside the pool's (the pooled path published those at the latch).
    depgraph::publish_counters();

    let task_panic = team.tasks().take_panic();
    let thread_panic = panic_slot.into_inner();
    if let Some(p) = thread_panic.or(task_panic) {
        std::panic::resume_unwind(p);
    }
    // No thread or task panic, but the region was failed asynchronously — a
    // deadline trip whose tripping thread exited via the cancellation path,
    // or a watchdog cancellation. Raise the stored typed error so callers
    // ([`parallel_region_result`]) can observe it.
    if let Some(err) = team.take_failure() {
        std::panic::panic_any(err);
    }
}

/// [`parallel_region`] with typed runtime failures as a `Result`.
///
/// Catches the region's re-raised unwind and converts an [`OmpError`]
/// payload — e.g. [`OmpError::RegionTimeout`] from a deadline trip or
/// watchdog cancellation — into `Err`. Any other panic (user panics,
/// injected faults) is resumed unchanged.
///
/// # Errors
///
/// The typed runtime failure that poisoned the region, if any.
pub fn parallel_region_result<'env, F>(cfg: &ParallelConfig, body: F) -> Result<(), OmpError>
where
    F: Fn(&WorkerCtx<'env>) + Sync,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parallel_region(cfg, body))) {
        Ok(()) => Ok(()),
        Err(p) => match p.downcast::<OmpError>() {
            Ok(err) => Err(*err),
            Err(p) => std::panic::resume_unwind(p),
        },
    }
}

fn run_worker<'env, F>(
    team: Arc<Team>,
    thread_num: usize,
    positions: Vec<(usize, usize)>,
    body: &F,
    panic_slot: &Mutex<Option<Box<dyn Any + Send>>>,
) where
    F: Fn(&WorkerCtx<'env>) + Sync,
{
    let _guard = context::enter_team(Arc::clone(&team), thread_num, positions);
    // Tell the pool's watchdog which region this worker is serving, so a
    // stall flagged on the heartbeat can be traced back to (and poison) the
    // right team. No-op on non-pooled threads.
    crate::pool::note_region(team.region());
    // Injected delays on this thread yield once the region is cancelled or
    // poisoned: a simulated stall must not pin the region open past a
    // deadline trip (the guard restores the enclosing hook on exit). The
    // deadline probe also lets a *serial* team (admission shed) rescue
    // itself — there is no sibling waiter to trip the deadline for it.
    let _interrupt = {
        let team = Arc::clone(&team);
        crate::faults::set_delay_interrupt(Box::new(move || {
            team.is_cancelled() || team.deadline_probe()
        }))
    };
    crate::ompt::record(
        team.region(),
        crate::ompt::EventKind::ParallelBegin {
            team_size: team.size() as u32,
        },
    );
    let ctx = WorkerCtx {
        team: Arc::clone(&team),
        _scope: PhantomData,
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
    if let Err(p) = result {
        // Poison before recording: cancels the region and wakes every
        // waiter (barrier, copyprivate, ordered turn-taking, taskwait) so
        // the surviving threads run to the end of the region instead of
        // hanging on a rendezvous this thread will never reach.
        team.poison();
        let mut slot = panic_slot.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
    }
    // Implicit barrier at region end; also drains the task queue. Runs even
    // after a panic so the rest of the team is not deadlocked. Catch panics
    // here too (fault injection targets barrier arrivals): an unwinding
    // final barrier would otherwise strand the teammates still parked in it.
    // (Injected barrier faults fire *before* this thread's arrival is
    // counted, so an unwinding barrier implies the region can never release
    // — the pooled latch then drains via per-job completions and the
    // `panic_slot` write below stays race-free against the master's exit.)
    // Epilogue marker, taken before the final-barrier arrival: the pooled
    // latch can release the master the instant the barrier flips, so this is
    // what lets `ompt::events()` wait out the BarrierExit/ParallelEnd records
    // still in flight on worker threads.
    let _epilogue = crate::ompt::epilogue_begin();
    // Region-end rendezvous: threads that are provably not the last arriver
    // and see no outstanding tasks may leave without waiting for the
    // release — their remaining obligation (the pooled latch decrement /
    // scoped-join exit, which is also the master's own rendezvous) happens
    // on return from this function. With a region deadline or the stall
    // watchdog armed, everyone takes the full barrier instead — the parked
    // threads are the detector's sensor (see `Team::final_barrier`).
    if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| team.final_barrier()))
    {
        team.poison();
        let mut slot = panic_slot.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
    }
    // Post-barrier epilogue. On the pooled path the final barrier's release
    // may already have zeroed the region latch and released the master, so
    // nothing here may touch the master's stack — and nothing here may
    // unwind (an unwind would reach the dispatch wrapper's panic capture,
    // which does): swallow the impossible.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::ompt::record(team.region(), crate::ompt::EventKind::ParallelEnd);
        // Deterministic flush: scoped threads signal the scope before their
        // TLS destructors run, so the drop-flush alone races with
        // `ompt::events()`.
        crate::ompt::flush_thread();
    }));
}

/// Builder for a `task` directive's dependence clauses: `depend(in/out/inout)`
/// lists plus a `priority(n)` hint.
///
/// Dependence *keys* are opaque `u64` storage identifiers — typically a
/// pointer cast (`&block as *const _ as u64`) or an encoded index pair.
/// Two tasks are ordered when their keys are equal and at least one side is
/// a write (`out`/`inout`), exactly OpenMP's list-item aliasing rule.
///
/// ```
/// use omp4rs::exec::{parallel, DepSpec};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let x = AtomicU64::new(0);
/// let key = &x as *const _ as u64;
/// parallel("num_threads(2)", |ctx| {
///     ctx.single(|| {
///         ctx.task_depend(DepSpec::new().output(key), |_| {
///             x.store(1, Ordering::SeqCst);
///         });
///         ctx.task_depend(DepSpec::new().inout(key), |_| {
///             x.fetch_add(10, Ordering::SeqCst);
///         });
///     });
/// });
/// assert_eq!(x.load(Ordering::SeqCst), 11);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DepSpec {
    deps: Vec<Dep>,
    priority: i64,
}

impl DepSpec {
    /// Empty spec: no dependences, priority 0.
    pub fn new() -> DepSpec {
        DepSpec::default()
    }

    /// Add a `depend(in: key)` item: wait for the last writer of `key`.
    #[must_use]
    pub fn input(mut self, key: u64) -> DepSpec {
        self.deps.push(Dep::input(key));
        self
    }

    /// Add a `depend(out: key)` item: wait for the last writer *and* all
    /// readers of `key`, then become its last writer.
    #[must_use]
    pub fn output(mut self, key: u64) -> DepSpec {
        self.deps.push(Dep::output(key));
        self
    }

    /// Add a `depend(inout: key)` item (same ordering as [`DepSpec::output`]).
    #[must_use]
    pub fn inout(mut self, key: u64) -> DepSpec {
        self.deps.push(Dep::inout(key));
        self
    }

    /// `priority(n)`: scheduling hint; ready tasks with higher priority are
    /// dequeued before any deque/bag task.
    #[must_use]
    pub fn priority(mut self, n: i64) -> DepSpec {
        self.priority = n;
        self
    }
}

/// Handle to the enclosing parallel region, passed to the region body.
///
/// `'scope` is the lifetime of data the region (and its tasks) may borrow.
pub struct WorkerCtx<'scope> {
    team: Arc<Team>,
    _scope: ScopeMarker<'scope>,
}

impl std::fmt::Debug for WorkerCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("thread_num", &self.thread_num())
            .field("num_threads", &self.num_threads())
            .finish()
    }
}

impl<'scope> WorkerCtx<'scope> {
    /// This thread's number within the team.
    pub fn thread_num(&self) -> usize {
        context::thread_num()
    }

    /// The team size.
    pub fn num_threads(&self) -> usize {
        self.team.size()
    }

    /// The team's synchronization backend.
    pub fn backend(&self) -> Backend {
        self.team.backend()
    }

    /// Explicit barrier (also a task scheduling point).
    pub fn barrier(&self) {
        self.team.barrier_explicit();
    }

    /// `cancel(construct)`: request cancellation of the named enclosing
    /// construct (`"parallel"`, `"for"`, `"sections"`, or `"taskgroup"`).
    ///
    /// Honoured only when the `cancel-var` ICV is enabled
    /// (`OMP_CANCELLATION=true`); otherwise a no-op returning `false`.
    /// Returns `true` when cancellation is active for the construct — the
    /// calling thread should then exit the construct, like after a `true`
    /// [`WorkerCtx::cancellation_point`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown construct name, or for `"for"`/`"sections"`
    /// outside a work-sharing region.
    pub fn cancel(&self, construct: &str) -> bool {
        self.cancel_construct(parse_construct(construct))
    }

    /// Typed variant of [`WorkerCtx::cancel`].
    pub fn cancel_construct(&self, construct: CancelConstruct) -> bool {
        if !Icvs::current().cancellation {
            return false;
        }
        match construct {
            CancelConstruct::Parallel => self.team.cancel_region(),
            CancelConstruct::For | CancelConstruct::Sections => {
                current_ws_instance(construct).cancel()
            }
            CancelConstruct::Taskgroup => self.team.tasks().cancel(),
        }
        true
    }

    /// `cancellation point(construct)`: returns `true` when cancellation is
    /// pending for the named construct — the calling thread should exit the
    /// construct. Observes poisoning-driven cancellation regardless of the
    /// `cancel-var` ICV (runtime integrity is not user-gated).
    ///
    /// # Panics
    ///
    /// Panics on an unknown construct name, or for `"for"`/`"sections"`
    /// outside a work-sharing region.
    pub fn cancellation_point(&self, construct: &str) -> bool {
        self.cancellation_point_construct(parse_construct(construct))
    }

    /// Typed variant of [`WorkerCtx::cancellation_point`].
    pub fn cancellation_point_construct(&self, construct: CancelConstruct) -> bool {
        match construct {
            CancelConstruct::Parallel => self.team.is_cancelled(),
            CancelConstruct::For | CancelConstruct::Sections => {
                current_ws_instance(construct).is_cancelled()
            }
            CancelConstruct::Taskgroup => {
                self.team.tasks().is_cancelled() || self.team.is_cancelled()
            }
        }
    }

    /// Work-share a 1-D loop across the team.
    ///
    /// Accepts a [`ForSpec`] or a clause string (via [`TryInto`]); strings
    /// panic on malformed clauses.
    ///
    /// # Panics
    ///
    /// Panics if a clause-string spec fails to parse.
    #[track_caller]
    pub fn for_each<S>(&self, spec: S, range: Range<i64>, mut body: impl FnMut(i64))
    where
        S: IntoForSpec,
    {
        let site = site_key(std::panic::Location::caller());
        let spec = spec.into_for_spec();
        let dims = LoopDims::new(&[(range.start, range.end, 1)]).expect("step 1 valid");
        self.drive_loop(&spec, dims, site, &mut |vars, _flat| body(vars.0));
    }

    /// Work-share a loop over an explicit `(start, stop, step)` triplet.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0` or a clause-string spec fails to parse.
    #[track_caller]
    pub fn for_range<S>(&self, spec: S, triplet: (i64, i64, i64), mut body: impl FnMut(i64))
    where
        S: IntoForSpec,
    {
        let site = site_key(std::panic::Location::caller());
        let spec = spec.into_for_spec();
        let dims = LoopDims::new(&[triplet]).unwrap_or_else(|e| panic!("{e}"));
        self.drive_loop(&spec, dims, site, &mut |vars, _flat| body(vars.0));
    }

    /// Work-share a collapsed 2-D loop nest (`collapse(2)`).
    ///
    /// # Panics
    ///
    /// Panics if a clause-string spec fails to parse.
    #[track_caller]
    pub fn for_each2<S>(
        &self,
        spec: S,
        outer: Range<i64>,
        inner: Range<i64>,
        mut body: impl FnMut(i64, i64),
    ) where
        S: IntoForSpec,
    {
        let site = site_key(std::panic::Location::caller());
        let spec = spec.into_for_spec();
        let dims = LoopDims::new(&[(outer.start, outer.end, 1), (inner.start, inner.end, 1)])
            .expect("step 1 valid");
        self.drive_collapsed(&spec, dims, site, &mut |vars| body(vars[0], vars[1]));
    }

    /// Work-share a 1-D loop with a reduction; every thread receives the
    /// combined result (after the mandatory end-of-loop barrier).
    ///
    /// # Panics
    ///
    /// Panics if a clause-string spec fails to parse.
    #[track_caller]
    pub fn for_reduce<S, T>(
        &self,
        spec: S,
        range: Range<i64>,
        identity: T,
        mut body: impl FnMut(i64, &mut T),
        combine: impl Fn(T, T) -> T,
    ) -> T
    where
        S: IntoForSpec,
        T: Clone + Send + 'static,
    {
        let site = site_key(std::panic::Location::caller());
        let spec = spec.into_for_spec();
        let dims = LoopDims::new(&[(range.start, range.end, 1)]).expect("step 1 valid");
        let frame = context::current_frame().expect("for_reduce outside parallel region");
        let seq = frame.next_ws_seq();
        let inst = self.team.worksharing().enter(seq);
        let (sched, adapt) = adaptive::resolve(
            spec.schedule,
            site,
            dims.total(),
            self.team.size(),
            false,
            inst.adaptive_slot(),
        );
        let mut fb = ForBounds::init(
            dims,
            sched,
            frame.thread_num,
            self.team.size(),
            Some(Arc::clone(&inst)),
        );
        if let Some(tracker) = adapt {
            fb.track_adaptive(tracker);
        }
        let mut local = identity.clone();
        // Track the active instance for every loop (not just ordered ones):
        // `cancel("for")` targets it.
        frame.set_current_instance(Some(Arc::clone(&inst)));
        while fb.next() {
            let (mut v, end, step) = fb.dims.var_chunk(fb.lo, fb.hi);
            let mut flat = fb.lo;
            while if step > 0 { v < end } else { v > end } {
                if spec.ordered {
                    frame.set_current_iter(Some(flat));
                }
                body(v, &mut local);
                v += step;
                flat += 1;
            }
        }
        if spec.ordered {
            frame.set_current_iter(None);
        }
        frame.set_current_instance(None);
        inst.reduce_merge(local, &combine);
        self.team.worksharing().leave(seq);
        // Reduction results require the barrier (nowait is ignored here; the
        // combined value could not be returned otherwise).
        self.team.barrier();
        inst.reduce_result::<T>().unwrap_or(identity)
    }

    fn drive_loop(
        &self,
        spec: &ForSpec,
        dims: LoopDims,
        site: u64,
        body: &mut dyn FnMut((i64,), u64),
    ) {
        let frame = context::current_frame().expect("worksharing loop outside parallel region");
        let seq = frame.next_ws_seq();
        let inst = self.team.worksharing().enter(seq);
        let (sched, adapt) = adaptive::resolve(
            spec.schedule,
            site,
            dims.total(),
            self.team.size(),
            false,
            inst.adaptive_slot(),
        );
        let mut fb = ForBounds::init(
            dims,
            sched,
            frame.thread_num,
            self.team.size(),
            Some(Arc::clone(&inst)),
        );
        if let Some(tracker) = adapt {
            fb.track_adaptive(tracker);
        }
        frame.set_current_instance(Some(Arc::clone(&inst)));
        while fb.next() {
            let (mut v, end, step) = fb.dims.var_chunk(fb.lo, fb.hi);
            let mut flat = fb.lo;
            while if step > 0 { v < end } else { v > end } {
                if spec.ordered {
                    frame.set_current_iter(Some(flat));
                }
                body((v,), flat);
                v += step;
                flat += 1;
            }
        }
        if spec.ordered {
            frame.set_current_iter(None);
        }
        frame.set_current_instance(None);
        self.team.worksharing().leave(seq);
        if !spec.nowait {
            self.team.barrier();
        }
    }

    fn drive_collapsed(
        &self,
        spec: &ForSpec,
        dims: LoopDims,
        site: u64,
        body: &mut dyn FnMut(&[i64]),
    ) {
        let frame = context::current_frame().expect("worksharing loop outside parallel region");
        let seq = frame.next_ws_seq();
        let inst = self.team.worksharing().enter(seq);
        let (sched, adapt) = adaptive::resolve(
            spec.schedule,
            site,
            dims.total(),
            self.team.size(),
            false,
            inst.adaptive_slot(),
        );
        let mut fb = ForBounds::init(
            dims,
            sched,
            frame.thread_num,
            self.team.size(),
            Some(Arc::clone(&inst)),
        );
        if let Some(tracker) = adapt {
            fb.track_adaptive(tracker);
        }
        frame.set_current_instance(Some(Arc::clone(&inst)));
        while fb.next() {
            for flat in fb.lo..fb.hi {
                if spec.ordered {
                    frame.set_current_iter(Some(flat));
                }
                let vars = fb.dims.vars_of(flat);
                body(&vars);
            }
        }
        if spec.ordered {
            frame.set_current_iter(None);
        }
        frame.set_current_instance(None);
        self.team.worksharing().leave(seq);
        if !spec.nowait {
            self.team.barrier();
        }
    }

    /// `ordered` region inside an `ordered` loop: executes `f` in iteration
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if called outside a loop declared with [`ForSpec::ordered`].
    pub fn ordered<R>(&self, f: impl FnOnce() -> R) -> R {
        let frame = context::current_frame().expect("ordered outside parallel region");
        let inst = frame
            .current_instance()
            .expect("ordered requires a loop with the ordered clause");
        let flat = frame
            .current_iter()
            .expect("ordered requires an active loop iteration");
        inst.ordered_enter(flat);
        let result = f();
        inst.ordered_exit(flat);
        result
    }

    /// `single`: `f` runs on exactly one thread; returns `Some` on that
    /// thread. Implicit barrier at the end unless `nowait`.
    pub fn single<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        self.single_impl(false, f)
    }

    /// `single nowait`.
    pub fn single_nowait<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        self.single_impl(true, f)
    }

    fn single_impl<R>(&self, nowait: bool, f: impl FnOnce() -> R) -> Option<R> {
        let frame = context::current_frame().expect("single outside parallel region");
        let seq = frame.next_ws_seq();
        let inst = self.team.worksharing().enter(seq);
        let out = if inst.claim.try_claim() {
            Some(f())
        } else {
            None
        };
        self.team.worksharing().leave(seq);
        if !nowait {
            self.team.barrier();
        }
        out
    }

    /// `single copyprivate`: the winner's value is broadcast to every thread.
    pub fn single_copyprivate<T: Clone + Send + 'static>(&self, f: impl FnOnce() -> T) -> T {
        let frame = context::current_frame().expect("single outside parallel region");
        let seq = frame.next_ws_seq();
        let inst = self.team.worksharing().enter(seq);
        if inst.claim.try_claim() {
            let value = f();
            inst.copyprivate_publish(Box::new(value));
        }
        let value = inst.copyprivate_read::<T>();
        self.team.worksharing().leave(seq);
        self.team.barrier();
        value
    }

    /// `master`: `f` runs only on thread 0 (no implied barrier).
    pub fn master<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        if self.thread_num() == 0 {
            Some(f())
        } else {
            None
        }
    }

    /// `sections`: each closure runs exactly once, distributed over the team
    /// via the shared counter (§III-D). Implicit barrier unless `nowait`.
    pub fn sections(&self, nowait: bool, sections: &[&(dyn Fn() + Sync)]) {
        let frame = context::current_frame().expect("sections outside parallel region");
        let seq = frame.next_ws_seq();
        let inst = self.team.worksharing().enter(seq);
        let n = sections.len() as u64;
        frame.set_current_instance(Some(Arc::clone(&inst)));
        loop {
            if inst.is_cancelled() {
                break;
            }
            let i = inst.counter.fetch_add(1);
            if i >= n {
                break;
            }
            sections[i as usize]();
        }
        frame.set_current_instance(None);
        self.team.worksharing().leave(seq);
        if !nowait {
            self.team.barrier();
        }
    }

    /// `critical[(name)]`: mutual exclusion across the whole program.
    pub fn critical<R>(&self, name: Option<&str>, f: impl FnOnce() -> R) -> R {
        locks::critical(name, f)
    }

    /// `task`: submit a deferred task; any team thread may execute it.
    ///
    /// The closure receives a [`TaskCtx`] for nested task operations
    /// (recursive decomposition, `taskwait`).
    pub fn task<F>(&self, f: F)
    where
        F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
    {
        self.task_if(true, f);
    }

    /// `task if(cond)`: `cond == false` makes the task *undeferred* (it runs
    /// immediately on this thread), the cutoff idiom of the paper's `qsort`.
    pub fn task_if<F>(&self, deferred: bool, f: F)
    where
        F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
    {
        submit_scoped_task(&self.team, deferred, f);
    }

    /// `task depend(...)`: submit a deferred task ordered by the dependence
    /// items (and optional priority) in `spec`. The task is released to the
    /// scheduler only once every predecessor in the dependence graph has
    /// retired; see [`DepSpec`] and [`crate::depgraph`].
    pub fn task_depend<F>(&self, spec: DepSpec, f: F)
    where
        F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
    {
        submit_scoped_task_ex(&self.team, true, spec.priority, spec.deps, f);
    }

    /// `task priority(n)`: submit a deferred task with a scheduling-priority
    /// hint. Ready tasks with higher `n` are dequeued first; equal
    /// priorities run in submission order.
    pub fn task_priority<F>(&self, priority: i64, f: F)
    where
        F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
    {
        submit_scoped_task_ex(&self.team, true, priority, Vec::new(), f);
    }

    /// `taskgroup`: run `f`, then wait for *all* tasks spawned inside it —
    /// including transitively by descendant tasks on other threads — to
    /// complete. Composes with `cancel("taskgroup")`: cancellation discards
    /// queued members and the wait returns. If `f` unwinds, the group is
    /// abandoned without waiting (the region's task-draining barrier still
    /// accounts for its members).
    pub fn taskgroup<R>(&self, f: impl FnOnce() -> R) -> R {
        taskgroup_scoped(&self.team, f)
    }

    /// `taskloop` (OpenMP 4.5; a §V extension the paper defers): distribute
    /// the iterations of a loop as tasks. `grainsize` fixes iterations per
    /// task; otherwise `num_tasks` (default `2 × team size`) decides the
    /// task count. Unless `nogroup`, waits for all generated tasks.
    pub fn taskloop<F>(
        &self,
        grainsize: Option<u64>,
        num_tasks: Option<u64>,
        nogroup: bool,
        range: Range<i64>,
        body: F,
    ) where
        F: Fn(i64) + Send + Sync + 'scope,
    {
        let total = (range.end - range.start).max(0) as u64;
        if total == 0 {
            return;
        }
        let grain = grainsize
            .unwrap_or_else(|| {
                let nt = num_tasks.unwrap_or(2 * self.num_threads() as u64).max(1);
                total.div_ceil(nt)
            })
            .max(1) as i64;
        let body = Arc::new(body);
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + grain).min(range.end);
            let b = Arc::clone(&body);
            self.task(move |_| {
                for i in lo..hi {
                    b(i);
                }
            });
            lo = hi;
        }
        if !nogroup {
            self.taskwait();
        }
    }

    /// `taskwait`: wait for all direct child tasks of the current task.
    pub fn taskwait(&self) {
        self.team.taskwait();
    }

    /// `taskyield`: offer to execute one queued task.
    pub fn taskyield(&self) {
        self.team.taskyield();
    }

    /// `flush`: a full memory fence (the runtime's locks/atomics already
    /// publish, so this is only needed for hand-rolled synchronization).
    pub fn flush(&self) {
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
    }
}

/// Handle passed to task bodies, allowing nested `task`/`taskwait`.
pub struct TaskCtx<'scope> {
    team: Arc<Team>,
    _scope: ScopeMarker<'scope>,
}

impl std::fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCtx").finish()
    }
}

impl<'scope> TaskCtx<'scope> {
    /// Submit a nested deferred task.
    pub fn task<F>(&self, f: F)
    where
        F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
    {
        self.task_if(true, f);
    }

    /// Submit a nested task with an `if` clause.
    pub fn task_if<F>(&self, deferred: bool, f: F)
    where
        F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
    {
        submit_scoped_task(&self.team, deferred, f);
    }

    /// Submit a nested task with dependence clauses (see
    /// [`WorkerCtx::task_depend`]).
    pub fn task_depend<F>(&self, spec: DepSpec, f: F)
    where
        F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
    {
        submit_scoped_task_ex(&self.team, true, spec.priority, spec.deps, f);
    }

    /// Submit a nested task with a priority hint (see
    /// [`WorkerCtx::task_priority`]).
    pub fn task_priority<F>(&self, priority: i64, f: F)
    where
        F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
    {
        submit_scoped_task_ex(&self.team, true, priority, Vec::new(), f);
    }

    /// Nested `taskgroup` (see [`WorkerCtx::taskgroup`]).
    pub fn taskgroup<R>(&self, f: impl FnOnce() -> R) -> R {
        taskgroup_scoped(&self.team, f)
    }

    /// Wait for this task's direct children.
    pub fn taskwait(&self) {
        self.team.taskwait();
    }

    /// The executing thread's number within the team.
    pub fn thread_num(&self) -> usize {
        context::thread_num()
    }
}

fn parse_construct(name: &str) -> CancelConstruct {
    CancelConstruct::parse(name.trim()).unwrap_or_else(|| {
        panic!(
            "invalid cancel construct {name:?} \
             (expected parallel, for, sections, or taskgroup)"
        )
    })
}

fn current_ws_instance(construct: CancelConstruct) -> Arc<crate::worksharing::WsInstance> {
    context::current_frame()
        .and_then(|f| f.current_instance())
        .unwrap_or_else(|| panic!("cancel({construct}) outside a work-sharing region"))
}

fn submit_scoped_task<'scope, F>(team: &Arc<Team>, deferred: bool, f: F)
where
    F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
{
    submit_scoped_task_ex(team, deferred, 0, Vec::new(), f);
}

fn submit_scoped_task_ex<'scope, F>(
    team: &Arc<Team>,
    deferred: bool,
    priority: i64,
    deps: Vec<Dep>,
    f: F,
) where
    F: FnOnce(&TaskCtx<'scope>) + Send + 'scope,
{
    let team_for_body = Arc::clone(team);
    let body: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
        let tc = TaskCtx {
            team: team_for_body,
            _scope: PhantomData,
        };
        f(&tc);
    });
    // SAFETY: the task is guaranteed to complete (and its closure to be
    // dropped) before `parallel_region` returns: every worker executes the
    // team's final task-draining barrier, which releases only when the task
    // queue is empty and no task is in progress. A dependence-held task
    // stays counted in the queue's `outstanding` from submission, so the
    // barrier also covers tasks parked in the dependence graph (and a
    // cancelled graph *discards* — runs the drop of — every held closure
    // rather than stranding it). `'scope` outlives the `parallel_region`
    // call (enforced by the invariant lifetime on `WorkerCtx`/`TaskCtx`),
    // so the boxed closure never outlives the data it borrows. This is the
    // same argument `std::thread::scope` makes.
    let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
    team.submit_task_ex(body, deferred, priority, deps);
}

/// Shared `taskgroup` implementation for [`WorkerCtx`]/[`TaskCtx`]: enter the
/// group, run the body, and wait for members on the way out — unless the body
/// unwinds, in which case the group is popped without waiting (waiting during
/// an unwind could deadlock on members the panic orphaned; the region's final
/// barrier still drains them).
fn taskgroup_scoped<R>(team: &Arc<Team>, f: impl FnOnce() -> R) -> R {
    struct EndGuard<'a>(&'a Arc<Team>);
    impl Drop for EndGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                let _ = crate::depgraph::pop_group();
            } else {
                self.0.taskgroup_end();
            }
        }
    }
    team.taskgroup_begin();
    let guard = EndGuard(team);
    let out = f();
    drop(guard);
    out
}

/// Convert clause strings or [`ForSpec`] values into a [`ForSpec`].
pub trait IntoForSpec {
    /// Perform the conversion.
    ///
    /// Implementations for string types panic on malformed clause text.
    fn into_for_spec(self) -> ForSpec;
}

impl IntoForSpec for ForSpec {
    fn into_for_spec(self) -> ForSpec {
        self
    }
}

impl IntoForSpec for &str {
    fn into_for_spec(self) -> ForSpec {
        ForSpec::parse(self).unwrap_or_else(|e| panic!("malformed for clauses {self:?}: {e}"))
    }
}

impl IntoForSpec for &ForSpec {
    fn into_for_spec(self) -> ForSpec {
        *self
    }
}
