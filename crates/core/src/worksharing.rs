//! Work-sharing region bookkeeping (`for`, `sections`, `single`).
//!
//! Threads of a team encountering the *n*-th work-sharing region must agree
//! on shared state for it (the scheduling counter, the `single` claim, the
//! `copyprivate` slot, the `ordered` turn counter). Each thread counts the
//! regions it encounters; the first thread to arrive at a region creates the
//! shared instance (paper: *"the threads must coordinate to determine who
//! creates the shared counter"* — an atomic swap in the cruntime, a mutex in
//! the pure runtime).

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::adaptive::AdaptiveSlot;
use crate::sync::{Backend, CancelFlag, ClaimFlag, Notifier, OmpEvent, SharedCounter};

/// Shared state for one dynamic occurrence of a work-sharing region.
#[derive(Debug)]
pub struct WsInstance {
    /// Scheduling counter: next unassigned flattened iteration (for
    /// dynamic/guided loops) or next section index (for `sections`).
    pub counter: SharedCounter,
    /// One-shot claim for `single` regions.
    pub claim: ClaimFlag,
    /// `copyprivate` broadcast slot (set by the `single` winner).
    cp_slot: Mutex<Option<Box<dyn Any + Send>>>,
    /// Signaled when the `copyprivate` slot is filled.
    cp_event: OmpEvent,
    /// Merge slot for compiled-mode reductions.
    reduce_slot: Mutex<Option<Box<dyn Any + Send>>>,
    /// Next flattened iteration allowed to run its `ordered` region.
    ordered_next: AtomicU64,
    /// Wakeups for `ordered` turn-taking.
    wake: Arc<Notifier>,
    /// Per-instance cancellation (`cancel for` / `cancel sections`).
    cancelled: CancelFlag,
    /// The owning region's cancellation flag (shared via the registry), so
    /// every instance wait loop also observes `cancel parallel`/poisoning.
    region_cancel: Arc<CancelFlag>,
    /// Adaptive-schedule decision slot: the first team thread to resolve a
    /// loop through [`crate::adaptive::resolve`] installs the decision here,
    /// making it immutable for this instance (and invisible to concurrent
    /// teams at the same loop site, which have their own instances).
    adaptive: AdaptiveSlot,
}

impl WsInstance {
    fn new(backend: Backend, wake: Arc<Notifier>, region_cancel: Arc<CancelFlag>) -> WsInstance {
        WsInstance {
            counter: SharedCounter::new(backend),
            claim: ClaimFlag::new(backend),
            cp_slot: Mutex::new(None),
            cp_event: OmpEvent::new(backend),
            reduce_slot: Mutex::new(None),
            ordered_next: AtomicU64::new(0),
            wake,
            cancelled: CancelFlag::new(backend),
            region_cancel,
            adaptive: AdaptiveSlot::new(),
        }
    }

    /// This instance's adaptive-schedule decision slot (see
    /// [`crate::adaptive::resolve`]).
    pub fn adaptive_slot(&self) -> &AdaptiveSlot {
        &self.adaptive
    }

    /// Cancel this work-sharing instance (`cancel for`/`cancel sections`):
    /// threads stop claiming chunks/sections at their next cancellation
    /// point. Iterations already claimed complete normally.
    pub fn cancel(&self) {
        if self.cancelled.set() {
            crate::ompt::record_here(crate::ompt::EventKind::CancelObserved);
        }
        self.wake.notify_all();
    }

    /// Whether the instance — or its whole region — has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.is_set() || self.region_cancel.is_set()
    }

    /// Publish a `copyprivate` value (called by the `single` winner).
    pub fn copyprivate_publish(&self, value: Box<dyn Any + Send>) {
        *self.cp_slot.lock() = Some(value);
        self.cp_event.set();
        // Readers wait on the team eventcount (so one wait observes both
        // publication and cancellation); signal it as well.
        self.wake.notify_all();
    }

    /// Wait for and read the `copyprivate` value.
    ///
    /// # Panics
    ///
    /// Panics if the published value's type does not match `T` — a
    /// programming error equivalent to mismatched copyprivate types in C.
    /// Also panics if the region is cancelled/poisoned before the value is
    /// published (the `single` winner died): converting the would-be hang
    /// into a panic that region teardown re-raises. Inside a region with a
    /// deadline ICV the wait is bounded: on expiry the region is poisoned
    /// and the thread unwinds with [`crate::error::OmpError::RegionTimeout`].
    pub fn copyprivate_read<T: Clone + 'static>(&self) -> T {
        let pred = || self.cp_event.is_set() || self.is_cancelled();
        match crate::team::current_deadline() {
            Some((team, deadline)) => {
                if !crate::sync::wait_until_deadline(&self.wake, deadline, pred) {
                    std::panic::panic_any(team.trip_deadline("single"));
                }
            }
            None => crate::sync::wait_until(&self.wake, pred),
        }
        if !self.cp_event.is_set() {
            panic!("copyprivate value abandoned: region cancelled or poisoned before publish");
        }
        let slot = self.cp_slot.lock();
        let any = slot.as_ref().expect("copyprivate slot set before event");
        any.downcast_ref::<T>()
            .expect("copyprivate type mismatch")
            .clone()
    }

    /// Merge a thread-local reduction value into the shared slot.
    pub fn reduce_merge<T: Send + 'static>(&self, value: T, combine: impl Fn(T, T) -> T) {
        let mut slot = self.reduce_slot.lock();
        let merged = match slot.take() {
            Some(prev) => {
                let prev = *prev.downcast::<T>().expect("reduction type mismatch");
                combine(prev, value)
            }
            None => value,
        };
        *slot = Some(Box::new(merged));
    }

    /// Read the merged reduction value (after the region barrier).
    pub fn reduce_result<T: Clone + 'static>(&self) -> Option<T> {
        self.reduce_slot
            .lock()
            .as_ref()
            .and_then(|b| b.downcast_ref::<T>().cloned())
    }

    /// Block until it is `flat_iter`'s turn for the `ordered` region.
    ///
    /// Returns early (without its turn) when the instance or region is
    /// cancelled: the thread whose turn it is may be gone, and a cancelled
    /// loop no longer promises iteration ordering. Inside a region with a
    /// deadline ICV the wait is bounded: on expiry the region is poisoned
    /// and the thread unwinds with [`crate::error::OmpError::RegionTimeout`].
    pub fn ordered_enter(&self, flat_iter: u64) {
        let pred = || self.ordered_next.load(Ordering::Acquire) == flat_iter || self.is_cancelled();
        match crate::team::current_deadline() {
            Some((team, deadline)) => {
                if !crate::sync::wait_until_deadline(&self.wake, deadline, pred) {
                    std::panic::panic_any(team.trip_deadline("ordered"));
                }
            }
            None => crate::sync::wait_until(&self.wake, pred),
        }
    }

    /// Finish the `ordered` region for `flat_iter`, releasing the next one.
    pub fn ordered_exit(&self, flat_iter: u64) {
        self.ordered_next.store(flat_iter + 1, Ordering::Release);
        self.wake.notify_all();
    }
}

/// Registry mapping a team's work-sharing sequence numbers to instances.
#[derive(Debug)]
pub struct WorkshareRegistry {
    backend: Backend,
    team_size: usize,
    wake: Arc<Notifier>,
    map: Mutex<HashMap<u64, (Arc<WsInstance>, usize)>>,
    /// The owning region's cancellation flag, handed to every instance.
    region_cancel: Arc<CancelFlag>,
}

impl WorkshareRegistry {
    /// Create a standalone registry (never-cancelled region) — used by tests
    /// and benchmarks that exercise work-sharing without a team.
    pub fn new(backend: Backend, team_size: usize, wake: Arc<Notifier>) -> WorkshareRegistry {
        WorkshareRegistry::with_cancel(backend, team_size, wake, Arc::new(CancelFlag::new(backend)))
    }

    /// Create a registry whose instances observe `region_cancel` (the team's
    /// region-wide cancellation flag).
    pub fn with_cancel(
        backend: Backend,
        team_size: usize,
        wake: Arc<Notifier>,
        region_cancel: Arc<CancelFlag>,
    ) -> WorkshareRegistry {
        WorkshareRegistry {
            backend,
            team_size,
            wake,
            map: Mutex::new(HashMap::new()),
            region_cancel,
        }
    }

    /// Enter the work-sharing region with the given per-thread sequence
    /// number, creating the shared instance if this thread arrives first.
    pub fn enter(&self, seq: u64) -> Arc<WsInstance> {
        let mut map = self.map.lock();
        let entry = map.entry(seq).or_insert_with(|| {
            let inst = WsInstance::new(
                self.backend,
                Arc::clone(&self.wake),
                Arc::clone(&self.region_cancel),
            );
            (Arc::new(inst), 0)
        });
        Arc::clone(&entry.0)
    }

    /// Mark the region complete for one thread; the instance is dropped from
    /// the registry when the whole team has finished it.
    pub fn leave(&self, seq: u64) {
        let mut map = self.map.lock();
        if let Some(entry) = map.get_mut(&seq) {
            entry.1 += 1;
            if entry.1 >= self.team_size {
                map.remove(&seq);
            }
        }
    }

    /// Number of live instances (diagnostic).
    pub fn live_instances(&self) -> usize {
        self.map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_arriver_creates_instance_once() {
        let reg = WorkshareRegistry::new(Backend::Atomic, 4, Arc::new(Notifier::new()));
        let a = reg.enter(0);
        let b = reg.enter(0);
        assert!(Arc::ptr_eq(&a, &b));
        let c = reg.enter(1);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn instance_removed_when_team_leaves() {
        let reg = WorkshareRegistry::new(Backend::Mutex, 2, Arc::new(Notifier::new()));
        let _ = reg.enter(0);
        assert_eq!(reg.live_instances(), 1);
        reg.leave(0);
        assert_eq!(reg.live_instances(), 1);
        reg.leave(0);
        assert_eq!(reg.live_instances(), 0);
    }

    #[test]
    fn single_claim_via_instance() {
        let reg = WorkshareRegistry::new(Backend::Atomic, 3, Arc::new(Notifier::new()));
        let inst = reg.enter(0);
        assert!(inst.claim.try_claim());
        assert!(!inst.claim.try_claim());
    }

    #[test]
    fn copyprivate_round_trip() {
        let reg = WorkshareRegistry::new(Backend::Atomic, 2, Arc::new(Notifier::new()));
        let inst = reg.enter(0);
        let reader = {
            let inst = Arc::clone(&inst);
            std::thread::spawn(move || inst.copyprivate_read::<i64>())
        };
        inst.copyprivate_publish(Box::new(42i64));
        assert_eq!(reader.join().unwrap(), 42);
    }

    #[test]
    fn reduce_merge_accumulates() {
        let reg = WorkshareRegistry::new(Backend::Mutex, 4, Arc::new(Notifier::new()));
        let inst = reg.enter(0);
        for v in [1.0f64, 2.0, 3.0] {
            inst.reduce_merge(v, |a, b| a + b);
        }
        assert_eq!(inst.reduce_result::<f64>(), Some(6.0));
    }

    #[test]
    fn ordered_turns_serialize() {
        let reg = WorkshareRegistry::new(Backend::Atomic, 3, Arc::new(Notifier::new()));
        let inst = reg.enter(0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Three threads execute ordered regions for iterations 2, 1, 0.
        for iter in [2u64, 1, 0] {
            let inst = Arc::clone(&inst);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                inst.ordered_enter(iter);
                order.lock().push(iter);
                inst.ordered_exit(iter);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }
}
