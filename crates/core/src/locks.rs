//! OpenMP lock API, named `critical` sections, and `atomic` helpers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::lock_api::RawMutex as _;
use parking_lot::{Mutex, RawMutex};

/// Retry pitch for deadline-bounded lock acquisition: the raw mutexes have
/// no timed acquire, so the deadline path polls `try_lock` at this pitch.
/// Only threads inside a region with a deadline ICV pay for it.
const DEADLINE_TICK: Duration = Duration::from_micros(200);

/// An OpenMP simple lock (`omp_init_lock` family).
///
/// Unlike a scoped Rust mutex guard, OpenMP locks are set and unset by
/// explicit calls that may live in different functions; `OmpLock` therefore
/// wraps a raw mutex with manual pairing.
///
/// # Examples
///
/// ```
/// use omp4rs::locks::OmpLock;
///
/// let lock = OmpLock::new();
/// lock.set();
/// assert!(!lock.test());
/// lock.unset();
/// assert!(lock.test());
/// lock.unset();
/// ```
pub struct OmpLock {
    raw: RawMutex,
}

impl Default for OmpLock {
    fn default() -> OmpLock {
        OmpLock::new()
    }
}

impl std::fmt::Debug for OmpLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmpLock").finish()
    }
}

impl OmpLock {
    /// `omp_init_lock`.
    pub fn new() -> OmpLock {
        OmpLock {
            raw: RawMutex::INIT,
        }
    }

    /// `omp_set_lock`: blocks until the lock is acquired.
    ///
    /// When the [`crate::ompt`] profiler is enabled, records a
    /// [`crate::ompt::EventKind::LockAcquire`] flagging whether the
    /// acquisition had to wait for another holder.
    ///
    /// # Panics
    ///
    /// Inside a region with a deadline ICV, an acquisition still blocked at
    /// the deadline poisons the region and unwinds with
    /// [`crate::error::OmpError::RegionTimeout`] — the team join catches it
    /// exactly like a worker panic (locks have no cancellation return path).
    pub fn set(&self) {
        if let Some((team, deadline)) = crate::team::current_deadline() {
            let mut contended = false;
            loop {
                if self.raw.try_lock() {
                    break;
                }
                contended = true;
                let now = Instant::now();
                if now >= deadline {
                    std::panic::panic_any(team.trip_deadline("lock"));
                }
                std::thread::sleep(DEADLINE_TICK.min(deadline - now));
            }
            if crate::ompt::enabled() {
                crate::ompt::record_here(crate::ompt::EventKind::LockAcquire { contended });
            }
            return;
        }
        if !crate::ompt::enabled() {
            self.raw.lock();
            return;
        }
        let contended = !self.raw.try_lock();
        if contended {
            self.raw.lock();
        }
        crate::ompt::record_here(crate::ompt::EventKind::LockAcquire { contended });
    }

    /// `omp_unset_lock`.
    ///
    /// # Panics
    ///
    /// The caller must hold the lock; releasing an unheld `parking_lot`
    /// raw mutex is library UB, so we gate with `try_lock` state where
    /// possible. As in C OpenMP, unsetting an unheld lock is a programming
    /// error.
    pub fn unset(&self) {
        // SAFETY: per the OpenMP contract, the calling thread set the lock.
        unsafe { self.raw.unlock() };
    }

    /// `omp_test_lock`: acquire without blocking; returns whether acquired.
    pub fn test(&self) -> bool {
        self.raw.try_lock()
    }
}

/// An OpenMP nestable lock (`omp_init_nest_lock` family): the owning thread
/// may re-acquire it, and must unset it a matching number of times.
#[derive(Debug, Default)]
pub struct OmpNestLock {
    state: Mutex<NestState>,
    wake: crate::sync::Notifier,
}

#[derive(Debug, Default)]
struct NestState {
    owner: Option<std::thread::ThreadId>,
    count: u64,
}

impl OmpNestLock {
    /// `omp_init_nest_lock`.
    pub fn new() -> OmpNestLock {
        OmpNestLock::default()
    }

    /// `omp_set_nest_lock`: blocks unless free or already owned by the
    /// calling thread. Returns the new nesting count.
    ///
    /// # Panics
    ///
    /// Inside a region with a deadline ICV, an acquisition still blocked at
    /// the deadline poisons the region and unwinds with
    /// [`crate::error::OmpError::RegionTimeout`] (see [`OmpLock::set`]).
    pub fn set(&self) -> u64 {
        let me = std::thread::current().id();
        let bound = crate::team::current_deadline();
        loop {
            // Epoch before the ownership check: a release racing with the
            // check bumps the epoch and the park falls through.
            let epoch = self.wake.epoch();
            {
                let mut st = self.state.lock();
                match st.owner {
                    None => {
                        st.owner = Some(me);
                        st.count = 1;
                        return 1;
                    }
                    Some(owner) if owner == me => {
                        st.count += 1;
                        return st.count;
                    }
                    Some(_) => {}
                }
            }
            match &bound {
                Some((team, deadline)) => {
                    if self.wake.park_until(epoch, *deadline) {
                        std::panic::panic_any(team.trip_deadline("lock"));
                    }
                }
                None => self.wake.park(epoch),
            }
        }
    }

    /// `omp_unset_nest_lock`: returns the remaining nesting count.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the lock.
    pub fn unset(&self) -> u64 {
        let me = std::thread::current().id();
        let mut st = self.state.lock();
        assert_eq!(
            st.owner,
            Some(me),
            "omp_unset_nest_lock: caller does not own the lock"
        );
        st.count -= 1;
        if st.count == 0 {
            st.owner = None;
            drop(st);
            self.wake.notify_all();
            return 0;
        }
        st.count
    }

    /// `omp_test_nest_lock`: non-blocking set; returns the nesting count,
    /// or 0 if the lock is held by another thread.
    pub fn test(&self) -> u64 {
        let me = std::thread::current().id();
        let mut st = self.state.lock();
        match st.owner {
            None => {
                st.owner = Some(me);
                st.count = 1;
                1
            }
            Some(owner) if owner == me => {
                st.count += 1;
                st.count
            }
            Some(_) => 0,
        }
    }
}

/// Global registry of named `critical` section mutexes. Per the spec, all
/// unnamed `critical` regions share one global lock, and all regions with
/// the same name share one lock across the whole program.
fn critical_registry() -> &'static Mutex<HashMap<String, Arc<Mutex<()>>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<Mutex<()>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The mutex backing `critical(name)` (`None` = the unnamed region).
pub fn critical_mutex(name: Option<&str>) -> Arc<Mutex<()>> {
    let key = name.unwrap_or("\0unnamed");
    let mut registry = critical_registry().lock();
    Arc::clone(registry.entry(key.to_owned()).or_default())
}

/// Run `f` inside the named critical section.
///
/// # Examples
///
/// ```
/// let result = omp4rs::locks::critical(Some("update"), || 40 + 2);
/// assert_eq!(result, 42);
/// ```
/// # Panics
///
/// Inside a region with a deadline ICV, an acquisition still blocked at the
/// deadline poisons the region and unwinds with
/// [`crate::error::OmpError::RegionTimeout`] (see [`OmpLock::set`]).
pub fn critical<R>(name: Option<&str>, f: impl FnOnce() -> R) -> R {
    let mutex = critical_mutex(name);
    let _guard = if let Some((team, deadline)) = crate::team::current_deadline() {
        let mut contended = false;
        let guard = loop {
            if let Some(guard) = mutex.try_lock() {
                break guard;
            }
            contended = true;
            let now = Instant::now();
            if now >= deadline {
                std::panic::panic_any(team.trip_deadline("critical"));
            }
            std::thread::sleep(DEADLINE_TICK.min(deadline - now));
        };
        if crate::ompt::enabled() {
            crate::ompt::record_here(crate::ompt::EventKind::LockAcquire { contended });
        }
        guard
    } else if crate::ompt::enabled() {
        match mutex.try_lock() {
            Some(guard) => {
                crate::ompt::record_here(crate::ompt::EventKind::LockAcquire { contended: false });
                guard
            }
            None => {
                let guard = mutex.lock();
                crate::ompt::record_here(crate::ompt::EventKind::LockAcquire { contended: true });
                guard
            }
        }
    } else {
        mutex.lock()
    };
    f()
}

/// A lock-free `f64` cell (CAS on the bit pattern) for `atomic` updates in
/// compiled mode — the cruntime's hardware-level synchronization.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Create with an initial value.
    pub fn new(v: f64) -> AtomicF64 {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Read the value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Write the value.
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Release);
    }

    /// Atomic read-modify-write; returns the previous value.
    pub fn fetch_update(&self, f: impl Fn(f64) -> f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Acquire);
        loop {
            let new = f(f64::from_bits(cur)).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(prev) => return f64::from_bits(prev),
                Err(actual) => cur = actual,
            }
        }
    }

    /// `atomic` add; returns the previous value.
    pub fn fetch_add(&self, v: f64) -> f64 {
        self.fetch_update(|cur| cur + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_lock_mutual_exclusion() {
        let lock = Arc::new(OmpLock::new());
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    lock.set();
                    *counter.lock() += 1;
                    lock.unset();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2000);
    }

    #[test]
    fn test_lock_nonblocking() {
        let lock = OmpLock::new();
        assert!(lock.test());
        assert!(!lock.test());
        lock.unset();
        assert!(lock.test());
        lock.unset();
    }

    #[test]
    fn nest_lock_reentrant_same_thread() {
        let lock = OmpNestLock::new();
        assert_eq!(lock.set(), 1);
        assert_eq!(lock.set(), 2);
        assert_eq!(lock.test(), 3);
        assert_eq!(lock.unset(), 2);
        assert_eq!(lock.unset(), 1);
        assert_eq!(lock.unset(), 0);
        assert_eq!(lock.test(), 1);
        lock.unset();
    }

    #[test]
    fn nest_lock_blocks_other_threads() {
        let lock = Arc::new(OmpNestLock::new());
        lock.set();
        let l2 = Arc::clone(&lock);
        let handle = std::thread::spawn(move || l2.test());
        assert_eq!(handle.join().unwrap(), 0);
        lock.unset();
        let l3 = Arc::clone(&lock);
        let handle = std::thread::spawn(move || {
            let n = l3.set();
            l3.unset();
            n
        });
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn named_criticals_are_independent() {
        let a = critical_mutex(Some("a"));
        let b = critical_mutex(Some("b"));
        let a2 = critical_mutex(Some("a"));
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
        let unnamed = critical_mutex(None);
        assert!(!Arc::ptr_eq(&unnamed, &a));
    }

    #[test]
    fn critical_excludes_concurrent_updates() {
        struct Shared(std::cell::UnsafeCell<u64>);
        // SAFETY: all accesses go through the critical section below.
        unsafe impl Send for Shared {}
        unsafe impl Sync for Shared {}
        let value = Arc::new(Shared(std::cell::UnsafeCell::new(0u64)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let v = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    critical(Some("ctest"), || {
                        // SAFETY: serialized by the critical section.
                        unsafe { *v.0.get() += 1 };
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *value.0.get() }, 4000);
    }

    #[test]
    fn atomic_f64_concurrent_adds_exact() {
        let a = Arc::new(AtomicF64::new(0.0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    a.fetch_add(1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(), 4000.0);
    }

    #[test]
    fn atomic_f64_basic() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
        assert_eq!(a.fetch_add(1.0), -2.25);
        assert_eq!(a.load(), -1.25);
        assert_eq!(a.fetch_update(|v| v * 2.0), -1.25);
        assert_eq!(a.load(), -2.5);
    }
}
