//! OMPT-inspired observability: event tracing, per-region metrics, and
//! Chrome-trace export.
//!
//! Real OpenMP runtimes expose their internals to performance tools through
//! the OMPT interface (OpenMP 5.x, tools chapter). This module reproduces the
//! part of that design the paper's evaluation needs: *where do threads spend
//! their time inside the runtime?* The paper attributes Pure/Hybrid-mode
//! scaling losses to synchronization and shared-object contention inside the
//! free-threaded interpreter; with this layer those claims become measurable
//! instead of inferred from end-to-end figure numbers.
//!
//! # Design
//!
//! * **Inert unless enabled.** Every hook first performs a single relaxed
//!   atomic load ([`enabled`]) — the same pattern as [`crate::faults`] — so
//!   figure benchmarks are unperturbed when `OMP_TOOL` is unset.
//! * **Lock-free recording.** Enabled hooks append to a *per-thread* event
//!   buffer (a plain thread-local `Vec`); no shared state is touched on the
//!   hot path, so the profiler itself cannot introduce the contention it is
//!   trying to measure. Buffers drain into a global collector at the end of
//!   each team thread's region body ([`flush_thread`]), when [`events`]
//!   flushes the calling thread, or — as a safety net for threads outside
//!   any team — when the thread exits.
//! * **Region-scoped aggregation.** Every [`crate::team::Team`] draws a
//!   unique region id ([`new_region_id`]); [`aggregate`] folds the event
//!   stream into per-region [`RegionMetrics`] (barrier wait time, chunk-time
//!   load imbalance, task-queue depth high-water marks, lock contention).
//! * **External counters.** Layers the core cannot see into (the minipy
//!   interpreter's GIL and per-object locks) publish scalar counters through
//!   [`set_counter`]; the summary and trace exporters include them, which is
//!   what makes the Pure-vs-Compiled contrast directly visible.
//!
//! # Activation
//!
//! Set the `OMP_TOOL` environment variable (parsed into the ICVs by
//! [`crate::icv::Icvs::from_env`], see [`ToolConfig::parse`]):
//!
//! ```text
//! OMP_TOOL=enabled              # collect events, no automatic output
//! OMP_TOOL=summary              # + print a per-region summary on finalize
//! OMP_TOOL=trace:/tmp/out.json  # + write a chrome://tracing dump on finalize
//! OMP_TOOL=trace:out.json,summary
//! OMP_TOOL=disabled             # explicit off (the default)
//! ```
//!
//! Programs call [`finalize`] (the `omp4rs-bench` binaries do under
//! `--profile`) to emit the configured outputs. Programmatic use — tests,
//! examples, benchmarks — goes through [`session`], which serializes on a
//! global lock and disables collection again on drop.
//!
//! # Examples
//!
//! ```
//! use omp4rs::ompt;
//!
//! let session = ompt::session(ompt::ToolConfig::default());
//! omp4rs::parallel("num_threads(2)", |ctx| {
//!     ctx.for_each(omp4rs::ForSpec::new(), 0..64, |_i| {});
//! });
//! let metrics = ompt::aggregate(&ompt::events());
//! assert_eq!(metrics.len(), 1);
//! assert!(metrics[0].chunks >= 1);
//! println!("{}", session.summary());
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};

use crate::context;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What happened at an instrumentation site.
///
/// The set mirrors the OMPT callbacks relevant to this runtime: parallel
/// begin/end, barrier enter/exit (with measured wait time), the task
/// lifecycle, loop-chunk claims (with per-chunk execution time), lock
/// acquisition (flagging contention), generic synchronization waits, and
/// cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A thread entered a parallel region (one event per team thread).
    ParallelBegin {
        /// Size of the team being entered.
        team_size: u32,
    },
    /// A thread left a parallel region (after the final implicit barrier).
    ParallelEnd,
    /// A thread arrived at a team barrier.
    BarrierEnter {
        /// `true` for an explicit `barrier` directive, `false` for the
        /// implicit barriers ending worksharing constructs and regions.
        explicit: bool,
    },
    /// A thread was released from a team barrier.
    BarrierExit {
        /// Nanoseconds between arrival and release (wait + task-drain time).
        wait_ns: u64,
    },
    /// A task was created (`task` directive or `taskloop` expansion).
    TaskCreate {
        /// `false` for undeferred (`if(false)`) tasks that ran inline.
        deferred: bool,
    },
    /// A task body started executing on this thread.
    TaskSchedule,
    /// A task was stolen: this thread claimed it from another thread's
    /// work-stealing deque (see [`crate::tasks`]).
    TaskSteal,
    /// A task reached the completed state (including discarded tasks of a
    /// cancelled queue, which complete without a [`EventKind::TaskSchedule`]).
    TaskComplete,
    /// A loop chunk was claimed from the iteration space.
    ChunkClaim {
        /// First flattened iteration of the chunk.
        lo: u64,
        /// Past-the-end flattened iteration of the chunk.
        hi: u64,
    },
    /// A claimed chunk finished executing.
    ChunkDone {
        /// Number of iterations the chunk contained.
        iters: u64,
        /// Nanoseconds the chunk body took.
        ns: u64,
    },
    /// An OpenMP lock or `critical` section was acquired.
    LockAcquire {
        /// Whether the acquisition had to wait for another holder.
        contended: bool,
    },
    /// A thread blocked on a runtime event (`taskwait` completion,
    /// `copyprivate` publication, `ordered` turn-taking).
    SyncWait {
        /// Nanoseconds spent blocked.
        ns: u64,
    },
    /// Cancellation was requested or first observed for a construct.
    CancelObserved,
    /// The stall watchdog flagged a pooled worker as stalled past the
    /// `OMP4RS_WATCHDOG` threshold (the diagnostic snapshot accompanying it
    /// is published through the `omp4rs.watchdog.*` counters).
    WatchdogStall {
        /// Pool id of the stalled worker.
        worker: u64,
        /// Nanoseconds the worker had been busy on its current region when
        /// flagged.
        busy_ns: u64,
    },
    /// A region deadline tripped: a blocking wait exceeded the region's
    /// deadline ICV and the region was poisoned (an
    /// [`crate::error::OmpError::RegionTimeout`] surfaces at the join).
    DeadlineTrip {
        /// Nanoseconds the region had been running when the trip occurred.
        wait_ns: u64,
    },
}

impl EventKind {
    /// Short stable name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ParallelBegin { .. } => "parallel-begin",
            EventKind::ParallelEnd => "parallel-end",
            EventKind::BarrierEnter { .. } => "barrier-enter",
            EventKind::BarrierExit { .. } => "barrier-exit",
            EventKind::TaskCreate { .. } => "task-create",
            EventKind::TaskSchedule => "task-schedule",
            EventKind::TaskSteal => "task-steal",
            EventKind::TaskComplete => "task-complete",
            EventKind::ChunkClaim { .. } => "chunk-claim",
            EventKind::ChunkDone { .. } => "chunk-done",
            EventKind::LockAcquire { .. } => "lock-acquire",
            EventKind::SyncWait { .. } => "sync-wait",
            EventKind::CancelObserved => "cancel-observed",
            EventKind::WatchdogStall { .. } => "watchdog-stall",
            EventKind::DeadlineTrip { .. } => "deadline-trip",
        }
    }
}

/// One recorded runtime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The parallel region this event belongs to (0 when recorded outside
    /// any team, e.g. by unit tests driving primitives directly).
    pub region: u64,
    /// Profiler-assigned sequential id of the recording OS thread.
    pub thread: u32,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

// ---------------------------------------------------------------------------
// Enable gating and configuration
// ---------------------------------------------------------------------------

/// Output configuration parsed from `OMP_TOOL` (or built programmatically).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ToolConfig {
    /// Write a Chrome-trace JSON dump to this path on [`finalize`].
    pub trace_path: Option<String>,
    /// Print the per-region summary to stderr on [`finalize`].
    pub summary: bool,
}

impl ToolConfig {
    /// Parse `OMP_TOOL` syntax: a comma-separated list of `enabled`,
    /// `summary`, and `trace:<path>` items. Returns `None` for `disabled`
    /// (or any of the usual false spellings), which is also the default when
    /// the variable is unset.
    ///
    /// # Examples
    ///
    /// ```
    /// use omp4rs::ompt::ToolConfig;
    ///
    /// assert_eq!(ToolConfig::parse("disabled"), None);
    /// let cfg = ToolConfig::parse("trace:/tmp/t.json,summary").unwrap();
    /// assert_eq!(cfg.trace_path.as_deref(), Some("/tmp/t.json"));
    /// assert!(cfg.summary);
    /// assert_eq!(ToolConfig::parse("enabled"), Some(ToolConfig::default()));
    /// ```
    pub fn parse(text: &str) -> Option<ToolConfig> {
        let mut cfg = ToolConfig::default();
        let mut any = false;
        for part in text.split(',') {
            let part = part.trim();
            match part.to_ascii_lowercase().as_str() {
                "" => continue,
                "disabled" | "off" | "false" | "0" | "no" => return None,
                "enabled" | "on" | "true" | "1" | "yes" => any = true,
                "summary" => {
                    cfg.summary = true;
                    any = true;
                }
                _ => {
                    if let Some(path) = part.strip_prefix("trace:") {
                        let path = path.trim();
                        if !path.is_empty() {
                            cfg.trace_path = Some(path.to_owned());
                            any = true;
                        }
                    }
                    // Unknown items are ignored (forward compatibility),
                    // matching how unknown OMP_* values are treated.
                }
            }
        }
        any.then_some(cfg)
    }
}

/// Fast inert check: a single relaxed load on the disabled path (the same
/// idiom as [`crate::faults::is_armed`]).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether event collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The active output configuration ([`finalize`] reads it).
static ACTIVE: Mutex<Option<ToolConfig>> = Mutex::new(None);

/// One-time `OMP_TOOL` activation, consulted on every parallel-region entry.
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Enable collection from the `tool` ICV (`OMP_TOOL`) if it is configured.
/// Idempotent and cheap after the first call; [`crate::exec::parallel_region`]
/// invokes it so env-var activation needs no code changes in user programs.
pub fn ensure_env_init() {
    ENV_INIT.get_or_init(|| {
        if let Some(cfg) = crate::icv::Icvs::current().tool {
            enable(cfg);
        }
    });
}

/// Enable collection with the given output configuration.
///
/// Prefer [`session`] in tests and benchmarks: it additionally serializes on
/// a global lock and disables collection on drop.
pub fn enable(config: ToolConfig) {
    *ACTIVE.lock() = Some(config);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disable collection (recorded events are retained until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    *ACTIVE.lock() = None;
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Monotone source of team region ids (0 is reserved for "no region").
static NEXT_REGION: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh region id (called by [`crate::team::Team::new`]).
pub fn new_region_id() -> u64 {
    NEXT_REGION.fetch_add(1, Ordering::Relaxed)
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Events recorded by threads that have exited (and explicit flushes).
static COLLECTED: Mutex<Vec<Event>> = Mutex::new(Vec::new());

struct LocalBuf {
    tid: u32,
    events: Vec<Event>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            COLLECTED.lock().append(&mut self.events);
        }
    }
}

thread_local! {
    static BUF: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

fn with_buf(f: impl FnOnce(&mut LocalBuf)) {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        let buf = b.get_or_insert_with(|| LocalBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
        });
        f(buf);
    });
}

/// Record an event for an explicit region id. No-op (one relaxed load) when
/// collection is disabled.
#[inline]
pub fn record(region: u64, kind: EventKind) {
    if !enabled() {
        return;
    }
    record_enabled(region, kind);
}

/// Record an event for the current thread's innermost team region (0 when
/// outside any team). No-op (one relaxed load) when collection is disabled.
#[inline]
pub fn record_here(kind: EventKind) {
    if !enabled() {
        return;
    }
    let region = context::current_frame().map_or(0, |f| f.team.region());
    record_enabled(region, kind);
}

#[inline(never)]
fn record_enabled(region: u64, kind: EventKind) {
    let ts_ns = now_ns();
    with_buf(|buf| {
        buf.events.push(Event {
            region,
            thread: buf.tid,
            ts_ns,
            kind,
        });
    });
}

/// Flush the calling thread's local buffer into the global collection.
///
/// The runtime calls this at the end of every team thread's region body:
/// scoped threads signal completion *before* their TLS destructors run, so
/// relying on the thread-local buffer's drop-flush alone would let [`events`] race
/// with a just-joined worker whose destructor is still pending. The drop
/// remains as a safety net for threads outside any team.
pub fn flush_thread() {
    BUF.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            if !buf.events.is_empty() {
                COLLECTED.lock().append(&mut buf.events);
            }
        }
    });
}

/// Snapshot every event recorded so far (flushes the calling thread's local
/// buffer first; team workers flushed at the end of their region body).
///
/// Call from the thread that ran the parallel regions *after* they complete.
pub fn events() -> Vec<Event> {
    flush_thread();
    let mut all = COLLECTED.lock().clone();
    all.sort_by_key(|e| e.ts_ns);
    all
}

/// Discard all recorded events and external counters.
pub fn reset() {
    BUF.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.events.clear();
        }
    });
    COLLECTED.lock().clear();
    COUNTERS.lock().clear();
}

// ---------------------------------------------------------------------------
// External counters
// ---------------------------------------------------------------------------

static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

/// Publish (or overwrite) a named scalar counter.
///
/// Used by layers outside this crate — the minipy interpreter publishes its
/// GIL hold time and per-object lock contention here via the pyfront bridge —
/// so the per-region summary can show the Pure-vs-Compiled contrast.
pub fn set_counter(name: &'static str, value: u64) {
    COUNTERS.lock().insert(name, value);
}

/// Snapshot all published counters.
pub fn counters() -> BTreeMap<&'static str, u64> {
    COUNTERS.lock().clone()
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Metrics folded from one region's events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionMetrics {
    /// The region id ([`crate::team::Team::region`]).
    pub region: u64,
    /// Number of distinct threads that recorded events in the region.
    pub threads: usize,
    /// Wall-clock span (first `parallel-begin` to last `parallel-end`), ns.
    pub span_ns: u64,
    /// Barrier arrivals.
    pub barriers: u64,
    /// Total nanoseconds threads spent inside barriers.
    pub barrier_wait_ns: u64,
    /// Longest single barrier wait, ns.
    pub barrier_wait_max_ns: u64,
    /// Loop chunks claimed.
    pub chunks: u64,
    /// Total chunk execution time, ns.
    pub chunk_ns_total: u64,
    /// Longest single chunk, ns.
    pub chunk_ns_max: u64,
    /// Load imbalance: max per-thread chunk time over mean per-thread chunk
    /// time (1.0 = perfectly balanced; 0.0 when the region ran no chunks).
    pub imbalance: f64,
    /// Tasks created.
    pub tasks_created: u64,
    /// Tasks completed (including discarded tasks of cancelled queues).
    pub tasks_completed: u64,
    /// Tasks claimed from another thread's work-stealing deque.
    pub task_steals: u64,
    /// High-water mark of simultaneously outstanding tasks.
    pub task_depth_hwm: u64,
    /// Lock / `critical` acquisitions.
    pub lock_acquires: u64,
    /// How many of those had to wait for another holder.
    pub lock_contended: u64,
    /// Time spent blocked on runtime events (`taskwait`, `copyprivate`,
    /// `ordered`), ns.
    pub sync_wait_ns: u64,
    /// Cancellation requests/observations.
    pub cancellations: u64,
}

impl RegionMetrics {
    /// Mean chunk execution time, ns (0 when no chunks ran).
    pub fn chunk_ns_mean(&self) -> u64 {
        self.chunk_ns_total.checked_div(self.chunks).unwrap_or(0)
    }
}

/// Fold an event stream into per-region metrics, sorted by region id.
///
/// Events must carry consistent timestamps (as produced by this module);
/// the fold is pure, so synthetic event streams work too (the unit tests
/// build some).
pub fn aggregate(events: &[Event]) -> Vec<RegionMetrics> {
    let mut regions: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in events {
        regions.entry(e.region).or_default().push(e);
    }
    let mut out = Vec::with_capacity(regions.len());
    for (region, mut evs) in regions {
        evs.sort_by_key(|e| e.ts_ns);
        let mut m = RegionMetrics {
            region,
            ..RegionMetrics::default()
        };
        let mut threads: Vec<u32> = Vec::new();
        let mut begin_ts: Option<u64> = None;
        let mut end_ts: Option<u64> = None;
        let mut depth: u64 = 0;
        let mut per_thread_chunk_ns: BTreeMap<u32, u64> = BTreeMap::new();
        for e in &evs {
            if !threads.contains(&e.thread) {
                threads.push(e.thread);
            }
            match e.kind {
                EventKind::ParallelBegin { .. } => {
                    begin_ts = Some(begin_ts.map_or(e.ts_ns, |t| t.min(e.ts_ns)));
                }
                EventKind::ParallelEnd => {
                    end_ts = Some(end_ts.map_or(e.ts_ns, |t| t.max(e.ts_ns)));
                }
                EventKind::BarrierEnter { .. } => m.barriers += 1,
                EventKind::BarrierExit { wait_ns } => {
                    m.barrier_wait_ns += wait_ns;
                    m.barrier_wait_max_ns = m.barrier_wait_max_ns.max(wait_ns);
                }
                EventKind::TaskCreate { .. } => {
                    m.tasks_created += 1;
                    depth += 1;
                    m.task_depth_hwm = m.task_depth_hwm.max(depth);
                }
                EventKind::TaskSchedule => {}
                EventKind::TaskSteal => m.task_steals += 1,
                EventKind::TaskComplete => {
                    m.tasks_completed += 1;
                    depth = depth.saturating_sub(1);
                }
                EventKind::ChunkClaim { .. } => m.chunks += 1,
                EventKind::ChunkDone { ns, .. } => {
                    m.chunk_ns_total += ns;
                    m.chunk_ns_max = m.chunk_ns_max.max(ns);
                    *per_thread_chunk_ns.entry(e.thread).or_default() += ns;
                }
                EventKind::LockAcquire { contended } => {
                    m.lock_acquires += 1;
                    m.lock_contended += u64::from(contended);
                }
                EventKind::SyncWait { ns } => m.sync_wait_ns += ns,
                EventKind::CancelObserved => m.cancellations += 1,
                // Resilience trips always poison the region, which records a
                // CancelObserved counted above — no separate aggregate.
                EventKind::WatchdogStall { .. } | EventKind::DeadlineTrip { .. } => {}
            }
        }
        m.threads = threads.len();
        m.span_ns = match (begin_ts, end_ts) {
            (Some(b), Some(e)) => e.saturating_sub(b),
            _ => 0,
        };
        if !per_thread_chunk_ns.is_empty() {
            let max = *per_thread_chunk_ns.values().max().unwrap_or(&0);
            let sum: u64 = per_thread_chunk_ns.values().sum();
            let mean = sum as f64 / per_thread_chunk_ns.len() as f64;
            m.imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };
        }
        out.push(m);
    }
    out
}

// ---------------------------------------------------------------------------
// Summary exporter
// ---------------------------------------------------------------------------

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// Render the human-readable per-region summary for an event stream and a
/// counter snapshot.
pub fn render_summary(events: &[Event], counters: &BTreeMap<&'static str, u64>) -> String {
    let mut out = String::from("== omp4rs profile summary ==\n");
    let metrics = aggregate(events);
    if metrics.is_empty() {
        out.push_str("(no events recorded)\n");
    }
    for m in &metrics {
        out.push_str(&format!(
            "region {}: threads={} span={}\n",
            m.region,
            m.threads,
            fmt_ms(m.span_ns)
        ));
        out.push_str(&format!(
            "  barriers: {} arrivals, total wait {}, max {}\n",
            m.barriers,
            fmt_ms(m.barrier_wait_ns),
            fmt_ms(m.barrier_wait_max_ns)
        ));
        out.push_str(&format!(
            "  chunks: {} claimed, mean {}, max {}, imbalance {:.2}\n",
            m.chunks,
            fmt_ms(m.chunk_ns_mean()),
            fmt_ms(m.chunk_ns_max),
            m.imbalance
        ));
        out.push_str(&format!(
            "  tasks: {} created, {} completed, {} stolen, queue high-water {}\n",
            m.tasks_created, m.tasks_completed, m.task_steals, m.task_depth_hwm
        ));
        out.push_str(&format!(
            "  locks: {} acquisitions, {} contended; sync wait {}\n",
            m.lock_acquires,
            m.lock_contended,
            fmt_ms(m.sync_wait_ns)
        ));
        if m.cancellations > 0 {
            out.push_str(&format!("  cancellations: {}\n", m.cancellations));
        }
    }
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in counters {
            out.push_str(&format!("  {name} = {value}\n"));
        }
    }
    out
}

/// Render the summary for everything recorded so far.
pub fn summary() -> String {
    render_summary(&events(), &counters())
}

// ---------------------------------------------------------------------------
// Chrome-trace exporter
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

struct TraceWriter {
    out: String,
    first: bool,
}

impl TraceWriter {
    fn new() -> TraceWriter {
        TraceWriter {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            first: true,
        }
    }

    /// Emit a complete ("X") duration event.
    fn complete(
        &mut self,
        name: &str,
        region: u64,
        tid: u32,
        start_ns: u64,
        dur_ns: u64,
        args: &str,
    ) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"omp4rs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}{}}}",
            json_escape(name),
            ts_us(start_ns),
            ts_us(dur_ns),
            region,
            tid,
            args
        ));
    }

    /// Emit an instant ("i") event.
    fn instant(&mut self, name: &str, region: u64, tid: u32, ts_ns: u64, args: &str) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"omp4rs\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{}{}}}",
            json_escape(name),
            ts_us(ts_ns),
            region,
            tid,
            args
        ));
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }

    fn finish(mut self, counters: &BTreeMap<&'static str, u64>) -> String {
        self.out.push_str("],\"otherData\":{");
        let mut first = true;
        for (name, value) in counters {
            if !first {
                self.out.push(',');
            }
            first = false;
            self.out
                .push_str(&format!("\"{}\":{}", json_escape(name), value));
        }
        self.out.push_str("}}");
        self.out
    }
}

/// Render a Chrome-trace (`chrome://tracing` / Perfetto JSON) dump for an
/// event stream. Paired events (barrier enter/exit, task schedule/complete,
/// parallel begin/end) become duration slices; chunk executions become
/// slices reconstructed from their recorded durations; everything else
/// becomes instant markers. `pid` encodes the region id, `tid` the
/// profiler-assigned thread id.
pub fn render_chrome_trace(events: &[Event], counters: &BTreeMap<&'static str, u64>) -> String {
    let mut w = TraceWriter::new();
    // Pairing state per (region, thread).
    let mut barrier_open: BTreeMap<(u64, u32), (u64, bool)> = BTreeMap::new();
    let mut task_open: BTreeMap<(u64, u32), Vec<u64>> = BTreeMap::new();
    let mut parallel_open: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts_ns);
    for e in &sorted {
        let key = (e.region, e.thread);
        match e.kind {
            EventKind::ParallelBegin { team_size } => {
                let _ = team_size;
                parallel_open.insert(key, e.ts_ns);
            }
            EventKind::ParallelEnd => {
                if let Some(start) = parallel_open.remove(&key) {
                    w.complete(
                        &format!("parallel (region {})", e.region),
                        e.region,
                        e.thread,
                        start,
                        e.ts_ns.saturating_sub(start),
                        "",
                    );
                }
            }
            EventKind::BarrierEnter { explicit } => {
                barrier_open.insert(key, (e.ts_ns, explicit));
            }
            EventKind::BarrierExit { wait_ns } => {
                if let Some((start, explicit)) = barrier_open.remove(&key) {
                    let name = if explicit {
                        "barrier"
                    } else {
                        "barrier (implicit)"
                    };
                    let args = format!(",\"args\":{{\"wait_ns\":{wait_ns}}}");
                    w.complete(
                        name,
                        e.region,
                        e.thread,
                        start,
                        e.ts_ns.saturating_sub(start),
                        &args,
                    );
                }
            }
            EventKind::TaskCreate { deferred } => {
                let args = format!(",\"args\":{{\"deferred\":{deferred}}}");
                w.instant("task-create", e.region, e.thread, e.ts_ns, &args);
            }
            EventKind::TaskSchedule => {
                task_open.entry(key).or_default().push(e.ts_ns);
            }
            EventKind::TaskSteal => {
                w.instant("task-steal", e.region, e.thread, e.ts_ns, "");
            }
            EventKind::TaskComplete => {
                if let Some(start) = task_open.get_mut(&key).and_then(Vec::pop) {
                    w.complete(
                        "task",
                        e.region,
                        e.thread,
                        start,
                        e.ts_ns.saturating_sub(start),
                        "",
                    );
                }
            }
            EventKind::ChunkClaim { lo, hi } => {
                let args = format!(",\"args\":{{\"lo\":{lo},\"hi\":{hi}}}");
                w.instant("chunk-claim", e.region, e.thread, e.ts_ns, &args);
            }
            EventKind::ChunkDone { iters, ns } => {
                let args = format!(",\"args\":{{\"iters\":{iters}}}");
                w.complete(
                    "chunk",
                    e.region,
                    e.thread,
                    e.ts_ns.saturating_sub(ns),
                    ns,
                    &args,
                );
            }
            EventKind::LockAcquire { contended } => {
                if contended {
                    w.instant("lock-contended", e.region, e.thread, e.ts_ns, "");
                }
            }
            EventKind::SyncWait { ns } => {
                w.complete(
                    "sync-wait",
                    e.region,
                    e.thread,
                    e.ts_ns.saturating_sub(ns),
                    ns,
                    "",
                );
            }
            EventKind::CancelObserved => {
                w.instant("cancel", e.region, e.thread, e.ts_ns, "");
            }
            EventKind::WatchdogStall { worker, busy_ns } => {
                let args = format!(",\"args\":{{\"worker\":{worker},\"busy_ns\":{busy_ns}}}");
                w.instant("watchdog-stall", e.region, e.thread, e.ts_ns, &args);
            }
            EventKind::DeadlineTrip { wait_ns } => {
                let args = format!(",\"args\":{{\"wait_ns\":{wait_ns}}}");
                w.instant("deadline-trip", e.region, e.thread, e.ts_ns, &args);
            }
        }
    }
    w.finish(counters)
}

/// Render the Chrome trace for everything recorded so far.
pub fn chrome_trace() -> String {
    render_chrome_trace(&events(), &counters())
}

/// Emit the outputs configured by the active [`ToolConfig`] (write the trace
/// file, print the summary to stderr). Returns the trace path written, if
/// any. A no-op returning `Ok(None)` when no configuration is active.
///
/// # Errors
///
/// Propagates the I/O error if the trace file cannot be written.
pub fn finalize() -> std::io::Result<Option<String>> {
    let config = ACTIVE.lock().clone();
    let Some(config) = config else {
        return Ok(None);
    };
    if config.summary {
        eprintln!("{}", summary());
    }
    if let Some(path) = &config.trace_path {
        std::fs::write(path, chrome_trace())?;
        return Ok(Some(path.clone()));
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// Sessions (programmatic / test use)
// ---------------------------------------------------------------------------

/// Serializes sessions the way [`crate::faults`] serializes fault plans:
/// concurrently running tests never observe each other's events.
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// An active profiling session. Collection is enabled while it lives;
/// dropping it disables collection (recorded events are retained until the
/// next [`session`] or [`reset`]).
pub struct Session {
    _lock: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish()
    }
}

impl Session {
    /// The per-region summary of events recorded so far in this session.
    pub fn summary(&self) -> String {
        summary()
    }

    /// The Chrome trace of events recorded so far in this session.
    pub fn chrome_trace(&self) -> String {
        chrome_trace()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        disable();
    }
}

/// Start a profiling session: take the global session lock, clear previously
/// recorded events and counters, and enable collection until the returned
/// [`Session`] drops.
pub fn session(config: ToolConfig) -> Session {
    let lock = SESSION_LOCK.lock();
    reset();
    enable(config);
    Session { _lock: lock }
}

/// Take the session lock *without* enabling collection — used by tests that
/// must assert the disabled profiler records nothing, without racing against
/// enabled sessions in sibling tests.
pub fn disabled_session() -> Session {
    let lock = SESSION_LOCK.lock();
    reset();
    disable();
    Session { _lock: lock }
}

// ---------------------------------------------------------------------------
// Chrome-trace validation (a deliberately small JSON parser)
// ---------------------------------------------------------------------------

/// Shape facts extracted by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of entries in `traceEvents`.
    pub events: usize,
    /// Number of entries in `otherData` (the exported counters).
    pub counters: usize,
}

/// Parse a Chrome-trace dump with a minimal JSON parser and check its shape:
/// a top-level object with a `traceEvents` array whose entries each carry
/// `name` (string), `ph` (string), `ts` (number), `pid`/`tid` (numbers), and
/// `dur` (number) for `"X"` events.
///
/// # Errors
///
/// A description of the first malformed construct found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let fields = ev
            .as_object()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let name = get("name").ok_or_else(|| format!("traceEvents[{i}] missing name"))?;
        if name.as_str().is_none() {
            return Err(format!("traceEvents[{i}].name is not a string"));
        }
        let ph = get("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing ph"))?;
        for key in ["ts", "pid", "tid"] {
            if get(key).and_then(json::Value::as_number).is_none() {
                return Err(format!("traceEvents[{i}] missing numeric {key}"));
            }
        }
        if ph == "X" && get("dur").and_then(json::Value::as_number).is_none() {
            return Err(format!("traceEvents[{i}] is ph=X without numeric dur"));
        }
    }
    let counters = obj
        .iter()
        .find(|(k, _)| k == "otherData")
        .and_then(|(_, v)| v.as_object())
        .map_or(0, Vec::len);
    Ok(TraceStats {
        events: events.len(),
        counters,
    })
}

/// The minimal JSON parser backing [`validate_chrome_trace`]. Supports the
/// full JSON grammar minus `\u` surrogate pairs, which the exporter never
/// emits.
mod json {
    pub(super) enum Value {
        Null,
        // The validator never inspects booleans, but a JSON parser that
        // dropped them would be a trap for the next caller.
        Bool(#[allow(dead_code)] bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }
        pub(super) fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
        pub(super) fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
        pub(super) fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    pub(super) fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        debug_assert_eq!(b[*pos], b'"');
        *pos += 1;
        let mut out = Vec::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".into());
                }
                b'\\' => {
                    *pos += 1;
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            let c = char::from_u32(code).ok_or("surrogate \\u escape")?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                c => {
                    out.push(c);
                    *pos += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {pos}"));
            }
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}"));
            }
            *pos += 1;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_omp_tool_forms() {
        assert_eq!(ToolConfig::parse(""), None);
        assert_eq!(ToolConfig::parse("disabled"), None);
        assert_eq!(ToolConfig::parse("off"), None);
        assert_eq!(ToolConfig::parse("enabled"), Some(ToolConfig::default()));
        assert_eq!(
            ToolConfig::parse("summary"),
            Some(ToolConfig {
                trace_path: None,
                summary: true
            })
        );
        assert_eq!(
            ToolConfig::parse("trace:/tmp/a.json , summary"),
            Some(ToolConfig {
                trace_path: Some("/tmp/a.json".into()),
                summary: true
            })
        );
        assert_eq!(ToolConfig::parse("trace:"), None);
        assert_eq!(ToolConfig::parse("bogus"), None);
    }

    #[test]
    fn region_ids_are_unique() {
        let a = new_region_id();
        let b = new_region_id();
        assert!(b > a);
    }

    fn ev(region: u64, thread: u32, ts_ns: u64, kind: EventKind) -> Event {
        Event {
            region,
            thread,
            ts_ns,
            kind,
        }
    }

    #[test]
    fn aggregate_synthetic_stream() {
        let events = vec![
            ev(1, 0, 0, EventKind::ParallelBegin { team_size: 2 }),
            ev(1, 1, 5, EventKind::ParallelBegin { team_size: 2 }),
            ev(1, 0, 10, EventKind::ChunkClaim { lo: 0, hi: 8 }),
            ev(1, 0, 110, EventKind::ChunkDone { iters: 8, ns: 100 }),
            ev(1, 1, 10, EventKind::ChunkClaim { lo: 8, hi: 16 }),
            ev(1, 1, 310, EventKind::ChunkDone { iters: 8, ns: 300 }),
            ev(1, 0, 320, EventKind::BarrierEnter { explicit: false }),
            ev(1, 0, 400, EventKind::BarrierExit { wait_ns: 80 }),
            ev(1, 1, 330, EventKind::BarrierEnter { explicit: false }),
            ev(1, 1, 400, EventKind::BarrierExit { wait_ns: 70 }),
            ev(1, 0, 410, EventKind::TaskCreate { deferred: true }),
            ev(1, 0, 415, EventKind::TaskCreate { deferred: true }),
            ev(1, 1, 420, EventKind::TaskSchedule),
            ev(1, 1, 430, EventKind::TaskComplete),
            ev(1, 1, 431, EventKind::TaskSchedule),
            ev(1, 1, 440, EventKind::TaskComplete),
            ev(1, 0, 450, EventKind::LockAcquire { contended: true }),
            ev(1, 0, 460, EventKind::ParallelEnd),
            ev(1, 1, 470, EventKind::ParallelEnd),
        ];
        let metrics = aggregate(&events);
        assert_eq!(metrics.len(), 1);
        let m = &metrics[0];
        assert_eq!(m.region, 1);
        assert_eq!(m.threads, 2);
        assert_eq!(m.span_ns, 470);
        assert_eq!(m.barriers, 2);
        assert_eq!(m.barrier_wait_ns, 150);
        assert_eq!(m.barrier_wait_max_ns, 80);
        assert_eq!(m.chunks, 2);
        assert_eq!(m.chunk_ns_total, 400);
        assert_eq!(m.chunk_ns_max, 300);
        assert_eq!(m.chunk_ns_mean(), 200);
        // thread 0 spent 100ns, thread 1 spent 300ns: max/mean = 300/200.
        assert!((m.imbalance - 1.5).abs() < 1e-9);
        assert_eq!(m.tasks_created, 2);
        assert_eq!(m.tasks_completed, 2);
        assert_eq!(m.task_depth_hwm, 2);
        assert_eq!(m.lock_acquires, 1);
        assert_eq!(m.lock_contended, 1);
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        let events = vec![
            ev(3, 0, 100, EventKind::ParallelBegin { team_size: 1 }),
            ev(3, 0, 150, EventKind::ChunkClaim { lo: 0, hi: 4 }),
            ev(3, 0, 250, EventKind::ChunkDone { iters: 4, ns: 100 }),
            ev(3, 0, 260, EventKind::BarrierEnter { explicit: true }),
            ev(3, 0, 300, EventKind::BarrierExit { wait_ns: 40 }),
            ev(3, 0, 310, EventKind::TaskCreate { deferred: false }),
            ev(3, 0, 311, EventKind::TaskSchedule),
            ev(3, 0, 330, EventKind::TaskComplete),
            ev(3, 0, 340, EventKind::LockAcquire { contended: true }),
            ev(3, 0, 350, EventKind::SyncWait { ns: 5 }),
            ev(3, 0, 360, EventKind::CancelObserved),
            ev(3, 0, 400, EventKind::ParallelEnd),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("minipy.obj_lock.acquisitions", 42u64);
        let trace = render_chrome_trace(&events, &counters);
        let stats = validate_chrome_trace(&trace).expect("trace must be valid JSON");
        // parallel, chunk, barrier, task-create, task, lock-contended,
        // chunk-claim instant, sync-wait, cancel = 9 entries.
        assert_eq!(stats.events, 9);
        assert_eq!(stats.counters, 1);
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _session = disabled_session();
        record(1, EventKind::ParallelEnd);
        record_here(EventKind::TaskSchedule);
        assert!(events().is_empty());
    }

    #[test]
    fn session_records_and_disables_on_drop() {
        {
            let session = session(ToolConfig::default());
            assert!(enabled());
            record(7, EventKind::TaskCreate { deferred: true });
            record(7, EventKind::TaskComplete);
            let evs = events();
            assert_eq!(evs.len(), 2);
            assert!(evs.iter().all(|e| e.region == 7));
            // Events appear in per-thread program order.
            assert!(matches!(evs[0].kind, EventKind::TaskCreate { .. }));
            let text = session.summary();
            assert!(text.contains("region 7"), "{text}");
        }
        assert!(!enabled());
    }

    #[test]
    fn counters_appear_in_summary_and_trace() {
        let _session = session(ToolConfig::default());
        set_counter("test.counter", 9);
        let text = summary();
        assert!(text.contains("test.counter = 9"), "{text}");
        let stats = validate_chrome_trace(&chrome_trace()).unwrap();
        assert_eq!(stats.counters, 1);
    }
}
