//! OMPT-inspired observability: event tracing, per-region metrics, and
//! Chrome-trace export.
//!
//! Real OpenMP runtimes expose their internals to performance tools through
//! the OMPT interface (OpenMP 5.x, tools chapter). This module reproduces the
//! part of that design the paper's evaluation needs: *where do threads spend
//! their time inside the runtime?* The paper attributes Pure/Hybrid-mode
//! scaling losses to synchronization and shared-object contention inside the
//! free-threaded interpreter; with this layer those claims become measurable
//! instead of inferred from end-to-end figure numbers.
//!
//! # Design
//!
//! * **Inert unless enabled.** Every hook first performs a single relaxed
//!   atomic load ([`enabled`]) — the same pattern as [`crate::faults`] — so
//!   figure benchmarks are unperturbed when `OMP_TOOL` is unset.
//! * **Bounded per-thread rings.** Enabled hooks append to a *per-thread*
//!   fixed-capacity ring buffer (capacity from [`ToolConfig::ring_capacity`] /
//!   `OMP4RS_TRACE_RING`), so memory under sustained load is bounded by
//!   `ring capacity × recording threads × sizeof(Event)` ([`ring_stats`]
//!   reports the exact figure). No *global* state is touched on the hot
//!   path — only the thread's own uncontended ring lock — so the profiler
//!   cannot introduce the cross-thread contention it is trying to measure.
//! * **A dedicated flusher.** Enabling collection lazily spawns one
//!   `omp4rs-trace-flusher` thread that periodically (and on half-full
//!   wakeups) drains every ring into the collector — or, in rotation mode
//!   ([`ToolConfig::rotate_kib`]), streams them straight into rotating
//!   Chrome-trace part files so even the collected output is bounded.
//!   Shutdown ordering is strict: [`finalize`] and [`disable`] stop and join
//!   the flusher, then drain every ring, *then* render — no events are lost
//!   on a normal exit and the summary never races a live drain.
//! * **Explicit overflow policies.** A full ring applies
//!   [`ToolConfig::policy`] (`OMP4RS_TRACE_POLICY`): `drop-oldest` (default),
//!   `drop-newest`, or `block`. Drops are counted per ring and surface as the
//!   `omp4rs.trace.dropped` counter in [`counters`], the summary, and the
//!   trace footer — truncation is never silent. `block` waits are bounded by
//!   the region deadline ICV (`OMP4RS_REGION_DEADLINE`) and fall back to
//!   self-draining, so tracing can never deadlock a serving process.
//! * **Region-scoped aggregation.** Every [`crate::team::Team`] draws a
//!   unique region id ([`new_region_id`]); [`aggregate`] folds the event
//!   stream into per-region [`RegionMetrics`] (barrier wait time, chunk-time
//!   load imbalance, task-queue depth high-water marks, lock contention).
//! * **External counters.** Layers the core cannot see into (the minipy
//!   interpreter's GIL and per-object locks) publish scalar counters through
//!   [`set_counter`]; the summary and trace exporters include them, which is
//!   what makes the Pure-vs-Compiled contrast directly visible.
//!
//! # Activation
//!
//! Set the `OMP_TOOL` environment variable (parsed into the ICVs by
//! [`crate::icv::Icvs::from_env`], see [`ToolConfig::parse`]):
//!
//! ```text
//! OMP_TOOL=enabled              # collect events, no automatic output
//! OMP_TOOL=summary              # + print a per-region summary on finalize
//! OMP_TOOL=trace:/tmp/out.json  # + write a chrome://tracing dump on finalize
//! OMP_TOOL=trace:out.json,summary
//! OMP_TOOL=disabled             # explicit off (the default)
//! ```
//!
//! The pipeline knobs layer on top (see `docs/ENVIRONMENT.md`):
//! `OMP4RS_TRACE_RING` (per-thread ring capacity in events),
//! `OMP4RS_TRACE_POLICY` (`drop-oldest` | `drop-newest` | `block`),
//! `OMP4RS_TRACE_ROTATE` (rotate the trace file every N KiB), and
//! `OMP4RS_TRACE_ROTATE_KEEP` (how many part files to retain).
//!
//! Programs call [`finalize`] (the `omp4rs-bench` binaries do under
//! `--profile`) to emit the configured outputs. Programmatic use — tests,
//! examples, benchmarks — goes through [`session`], which serializes on a
//! global lock and disables collection again on drop.
//!
//! # Examples
//!
//! ```
//! use omp4rs::ompt;
//!
//! let session = ompt::session(ompt::ToolConfig::default());
//! omp4rs::parallel("num_threads(2)", |ctx| {
//!     ctx.for_each(omp4rs::ForSpec::new(), 0..64, |_i| {});
//! });
//! let metrics = ompt::aggregate(&ompt::events());
//! assert_eq!(metrics.len(), 1);
//! assert!(metrics[0].chunks >= 1);
//! println!("{}", session.summary());
//! ```

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, MutexGuard};

use crate::context;
use crate::sync::Notifier;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What happened at an instrumentation site.
///
/// The set mirrors the OMPT callbacks relevant to this runtime: parallel
/// begin/end, barrier enter/exit (with measured wait time), the task
/// lifecycle, loop-chunk claims (with per-chunk execution time), lock
/// acquisition (flagging contention), generic synchronization waits, and
/// cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A thread entered a parallel region (one event per team thread).
    ParallelBegin {
        /// Size of the team being entered.
        team_size: u32,
    },
    /// A thread left a parallel region (after the final implicit barrier).
    ParallelEnd,
    /// A thread arrived at a team barrier.
    BarrierEnter {
        /// `true` for an explicit `barrier` directive, `false` for the
        /// implicit barriers ending worksharing constructs and regions.
        explicit: bool,
    },
    /// A thread was released from a team barrier.
    BarrierExit {
        /// Nanoseconds between arrival and release. This window covers both
        /// idle waiting *and* any tasks the thread drained while parked at
        /// the barrier; [`aggregate`] separates the two (see
        /// [`RegionMetrics::barrier_drain_ns`]) so the summary can report
        /// wait and drain as distinct shares.
        wait_ns: u64,
    },
    /// A task was created (`task` directive or `taskloop` expansion).
    TaskCreate {
        /// `false` for undeferred (`if(false)`) tasks that ran inline.
        deferred: bool,
    },
    /// A task body started executing on this thread.
    TaskSchedule,
    /// A task was stolen: this thread claimed it from another thread's
    /// work-stealing deque (see [`crate::tasks`]).
    TaskSteal,
    /// A task reached the completed state (including discarded tasks of a
    /// cancelled queue, which complete without a [`EventKind::TaskSchedule`]).
    TaskComplete,
    /// A loop chunk was claimed from the iteration space.
    ChunkClaim {
        /// First flattened iteration of the chunk.
        lo: u64,
        /// Past-the-end flattened iteration of the chunk.
        hi: u64,
    },
    /// A claimed chunk finished executing.
    ChunkDone {
        /// Number of iterations the chunk contained.
        iters: u64,
        /// Nanoseconds the chunk body took.
        ns: u64,
    },
    /// An OpenMP lock or `critical` section was acquired.
    LockAcquire {
        /// Whether the acquisition had to wait for another holder.
        contended: bool,
    },
    /// A thread blocked on a runtime event (`taskwait` completion,
    /// `copyprivate` publication, `ordered` turn-taking).
    SyncWait {
        /// Nanoseconds spent blocked.
        ns: u64,
    },
    /// Cancellation was requested or first observed for a construct.
    CancelObserved,
    /// The stall watchdog flagged a pooled worker as stalled past the
    /// `OMP4RS_WATCHDOG` threshold (the diagnostic snapshot accompanying it
    /// is published through the `omp4rs.watchdog.*` counters).
    WatchdogStall {
        /// Pool id of the stalled worker.
        worker: u64,
        /// Nanoseconds the worker had been busy on its current region when
        /// flagged.
        busy_ns: u64,
    },
    /// A region deadline tripped: a blocking wait exceeded the region's
    /// deadline ICV and the region was poisoned (an
    /// [`crate::error::OmpError::RegionTimeout`] surfaces at the join).
    DeadlineTrip {
        /// Nanoseconds the region had been running when the trip occurred.
        wait_ns: u64,
    },
}

impl EventKind {
    /// Short stable name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ParallelBegin { .. } => "parallel-begin",
            EventKind::ParallelEnd => "parallel-end",
            EventKind::BarrierEnter { .. } => "barrier-enter",
            EventKind::BarrierExit { .. } => "barrier-exit",
            EventKind::TaskCreate { .. } => "task-create",
            EventKind::TaskSchedule => "task-schedule",
            EventKind::TaskSteal => "task-steal",
            EventKind::TaskComplete => "task-complete",
            EventKind::ChunkClaim { .. } => "chunk-claim",
            EventKind::ChunkDone { .. } => "chunk-done",
            EventKind::LockAcquire { .. } => "lock-acquire",
            EventKind::SyncWait { .. } => "sync-wait",
            EventKind::CancelObserved => "cancel-observed",
            EventKind::WatchdogStall { .. } => "watchdog-stall",
            EventKind::DeadlineTrip { .. } => "deadline-trip",
        }
    }
}

/// One recorded runtime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The parallel region this event belongs to (0 when recorded outside
    /// any team, e.g. by unit tests driving primitives directly).
    pub region: u64,
    /// Profiler-assigned sequential id of the recording OS thread.
    pub thread: u32,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

// ---------------------------------------------------------------------------
// Enable gating and configuration
// ---------------------------------------------------------------------------

/// What a recording thread does when its ring buffer is full.
///
/// Selected by `OMP4RS_TRACE_POLICY`. The trade-off mirrors femtologging-style
/// bounded handlers: `drop-oldest` keeps the most recent window (best for
/// post-mortem "what just happened" traces), `drop-newest` preserves the
/// prefix cheaply, and `block` is lossless but applies backpressure to the
/// recording thread — bounded by the region deadline and a self-drain
/// fallback so it can never deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TracePolicy {
    /// Overwrite the oldest buffered event with the new one (the default).
    #[default]
    DropOldest,
    /// Discard the new event, keeping the buffered prefix.
    DropNewest,
    /// Wait for the flusher to make space; self-drain after a bounded slice
    /// and trip the region deadline (if armed) rather than hang.
    Block,
}

impl TracePolicy {
    /// Parse an `OMP4RS_TRACE_POLICY` value. Accepts `drop-oldest`/`oldest`,
    /// `drop-newest`/`newest`, and `block`; anything else is `None`.
    pub fn parse(text: &str) -> Option<TracePolicy> {
        match text.trim().to_ascii_lowercase().as_str() {
            "drop-oldest" | "oldest" => Some(TracePolicy::DropOldest),
            "drop-newest" | "newest" => Some(TracePolicy::DropNewest),
            "block" => Some(TracePolicy::Block),
            _ => None,
        }
    }

    /// The canonical spelling (what [`TracePolicy::parse`] accepts).
    pub fn name(&self) -> &'static str {
        match self {
            TracePolicy::DropOldest => "drop-oldest",
            TracePolicy::DropNewest => "drop-newest",
            TracePolicy::Block => "block",
        }
    }

    fn code(self) -> u8 {
        match self {
            TracePolicy::DropOldest => 0,
            TracePolicy::DropNewest => 1,
            TracePolicy::Block => 2,
        }
    }

    fn from_code(code: u8) -> TracePolicy {
        match code {
            1 => TracePolicy::DropNewest,
            2 => TracePolicy::Block,
            _ => TracePolicy::DropOldest,
        }
    }
}

/// Default per-thread ring capacity, in events.
///
/// An [`Event`] is ~48 bytes, so 8192 events ≈ 384 KiB per recording thread —
/// small enough to leave on per-worker, large enough to absorb roughly one
/// flush tick of the densest emitter (a `schedule(dynamic,1)` loop records
/// two events per iteration) before any overflow policy engages.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Output configuration parsed from `OMP_TOOL` (or built programmatically).
///
/// The pipeline fields (`ring_capacity`, `policy`, `rotate_kib`,
/// `rotate_keep`) are not part of the `OMP_TOOL` grammar; they come from the
/// dedicated `OMP4RS_TRACE_*` variables ([`crate::icv::Icvs::from_env`]) or
/// are set programmatically with `..Default::default()` struct update syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolConfig {
    /// Write a Chrome-trace JSON dump to this path on [`finalize`].
    pub trace_path: Option<String>,
    /// Print the per-region summary to stderr on [`finalize`].
    pub summary: bool,
    /// Per-thread ring buffer capacity in events (`OMP4RS_TRACE_RING`,
    /// default [`DEFAULT_RING_CAPACITY`]).
    pub ring_capacity: usize,
    /// What to do when a ring is full (`OMP4RS_TRACE_POLICY`).
    pub policy: TracePolicy,
    /// When set together with `trace_path`, stream events into rotating part
    /// files (`trace.0.json`, `trace.1.json`, …), starting a new part every
    /// time the serialized output reaches this many KiB
    /// (`OMP4RS_TRACE_ROTATE`). Streaming keeps *collected* output bounded
    /// too: events go to disk instead of the in-memory collector, so
    /// [`events`] and the summary only cover what has not been streamed.
    pub rotate_kib: Option<u64>,
    /// How many rotated part files to retain (`OMP4RS_TRACE_ROTATE_KEEP`,
    /// default 4); older parts are deleted as new ones are written.
    pub rotate_keep: usize,
}

impl Default for ToolConfig {
    fn default() -> ToolConfig {
        ToolConfig {
            trace_path: None,
            summary: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
            policy: TracePolicy::default(),
            rotate_kib: None,
            rotate_keep: 4,
        }
    }
}

impl ToolConfig {
    /// Parse `OMP_TOOL` syntax: a comma-separated list of `enabled`,
    /// `summary`, and `trace:<path>` items. Returns `None` for `disabled`
    /// (or any of the usual false spellings), which is also the default when
    /// the variable is unset.
    ///
    /// # Examples
    ///
    /// ```
    /// use omp4rs::ompt::ToolConfig;
    ///
    /// assert_eq!(ToolConfig::parse("disabled"), None);
    /// let cfg = ToolConfig::parse("trace:/tmp/t.json,summary").unwrap();
    /// assert_eq!(cfg.trace_path.as_deref(), Some("/tmp/t.json"));
    /// assert!(cfg.summary);
    /// assert_eq!(ToolConfig::parse("enabled"), Some(ToolConfig::default()));
    /// ```
    pub fn parse(text: &str) -> Option<ToolConfig> {
        let mut cfg = ToolConfig::default();
        let mut any = false;
        for part in text.split(',') {
            let part = part.trim();
            match part.to_ascii_lowercase().as_str() {
                "" => continue,
                "disabled" | "off" | "false" | "0" | "no" => return None,
                "enabled" | "on" | "true" | "1" | "yes" => any = true,
                "summary" => {
                    cfg.summary = true;
                    any = true;
                }
                _ => {
                    if let Some(path) = part.strip_prefix("trace:") {
                        let path = path.trim();
                        if !path.is_empty() {
                            cfg.trace_path = Some(path.to_owned());
                            any = true;
                        }
                    }
                    // Unknown items are ignored (forward compatibility),
                    // matching how unknown OMP_* values are treated.
                }
            }
        }
        any.then_some(cfg)
    }
}

/// Fast inert check: a single relaxed load on the disabled path (the same
/// idiom as [`crate::faults::is_armed`]).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether event collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The active output configuration ([`finalize`] reads it).
static ACTIVE: Mutex<Option<ToolConfig>> = Mutex::new(None);

/// One-time `OMP_TOOL` activation, consulted on every parallel-region entry.
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Enable collection from the `tool` ICV (`OMP_TOOL`) if it is configured.
/// Idempotent and cheap after the first call; [`crate::exec::parallel_region`]
/// invokes it so env-var activation needs no code changes in user programs.
pub fn ensure_env_init() {
    ENV_INIT.get_or_init(|| {
        if let Some(cfg) = crate::icv::Icvs::current().tool {
            enable(cfg);
        }
    });
}

/// Enable collection with the given output configuration.
///
/// Publishes the ring capacity and overflow policy, arms the streaming sink
/// when rotation is configured, and lazily spawns the flusher thread.
///
/// Prefer [`session`] in tests and benchmarks: it additionally serializes on
/// a global lock and disables collection on drop.
pub fn enable(config: ToolConfig) {
    RING_CAP.store(config.ring_capacity.max(1), Ordering::SeqCst);
    POLICY.store(config.policy.code(), Ordering::SeqCst);
    let sink = match (&config.trace_path, config.rotate_kib) {
        (Some(path), Some(kib)) => Some(StreamSink::new(path.clone(), kib, config.rotate_keep)),
        _ => None,
    };
    *STREAM.lock() = sink;
    *ACTIVE.lock() = Some(config);
    // A fresh session starts unpaused: set_flusher_paused is a per-session
    // measurement aid, never sticky state.
    FLUSHER_PAUSED.store(false, Ordering::SeqCst);
    ensure_flusher();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disable collection (recorded events are retained until [`reset`]).
///
/// Stops and joins the flusher, drains every ring, and — if a streaming sink
/// is still armed (i.e. [`finalize`] did not run) — closes it, writing the
/// final part file.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    stop_flusher();
    drain_all();
    let sink = STREAM.lock().take();
    if let Some(sink) = sink {
        let _ = sink.close();
    }
    *ACTIVE.lock() = None;
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Monotone source of team region ids (0 is reserved for "no region").
static NEXT_REGION: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh region id (called by [`crate::team::Team::new`]).
pub fn new_region_id() -> u64 {
    NEXT_REGION.fetch_add(1, Ordering::Relaxed)
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Events drained out of the rings when no streaming sink is armed (plus the
/// safety-net drain of exiting threads).
static COLLECTED: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Ring capacity applied to rings created after the last [`enable`].
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Active overflow policy as a [`TracePolicy::code`].
static POLICY: AtomicU8 = AtomicU8::new(0);

/// Registry of live rings, one per recording thread; the flusher and
/// [`events`] iterate it. Retired when the owning thread exits.
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

/// Bumped by [`reset`]: thread-local rings from an earlier generation are
/// stale (their buffered events were discarded with the reset) and get
/// recreated on the next record.
static RING_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Drops carried over from retired rings (live rings keep their own count).
static DROPPED_RETIRED: AtomicU64 = AtomicU64::new(0);

/// Total events drained out of rings since the last [`reset`].
static FLUSHED: AtomicU64 = AtomicU64::new(0);

/// Serializes drain → sink sequences so [`events`] can never observe a batch
/// that another drainer has popped from a ring but not yet sunk.
static DRAIN: Mutex<()> = Mutex::new(());

/// How often the flusher sweeps all rings when nothing wakes it earlier.
const FLUSH_TICK: Duration = Duration::from_millis(2);

/// Longest a `block`-policy push waits for the flusher before draining its
/// own ring (the no-deadlock guarantee when the flusher is absent or behind).
const BLOCK_SLICE: Duration = Duration::from_millis(5);

struct RingState {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

/// One thread's bounded event buffer. `space` is notified after every drain
/// so `block`-policy pushes can park instead of spinning.
struct Ring {
    tid: u32,
    space: Notifier,
    state: Mutex<RingState>,
}

fn active_policy() -> TracePolicy {
    TracePolicy::from_code(POLICY.load(Ordering::Relaxed))
}

/// The thread-local handle: an [`Arc`] into [`RINGS`] plus the generation it
/// was created under. Dropping it (thread exit) drains leftovers and retires
/// the ring — unless a [`reset`] made it stale, in which case the buffered
/// events were already discarded by contract.
struct LocalRing {
    epoch: u64,
    ring: Arc<Ring>,
}

impl Drop for LocalRing {
    fn drop(&mut self) {
        if self.epoch != RING_EPOCH.load(Ordering::SeqCst) {
            return;
        }
        let _guard = DRAIN.lock();
        let (batch, dropped) = {
            let mut s = self.ring.state.lock();
            (
                s.events.drain(..).collect::<Vec<Event>>(),
                std::mem::take(&mut s.dropped),
            )
        };
        DROPPED_RETIRED.fetch_add(dropped, Ordering::Relaxed);
        sink_batch(batch);
        RINGS.lock().retain(|r| !Arc::ptr_eq(r, &self.ring));
    }
}

thread_local! {
    static RING: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
    /// Reentrancy guard: set while a `block`-policy push is in progress so a
    /// nested record (e.g. the `DeadlineTrip` event emitted by
    /// [`crate::team::Team::trip_deadline`] *from inside* that push) falls
    /// back to drop-oldest instead of blocking recursively.
    static IN_PUSH: Cell<bool> = const { Cell::new(false) };
}

fn with_ring(f: impl FnOnce(&Arc<Ring>)) {
    // The `RefCell` borrow must end before `f` runs: a `block`-policy push
    // inside `f` can trip a region deadline, which records a `DeadlineTrip`
    // event and re-enters here on the same thread.
    let ring = RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let epoch = RING_EPOCH.load(Ordering::Relaxed);
        if slot.as_ref().is_none_or(|lr| lr.epoch != epoch) {
            let cap = RING_CAP.load(Ordering::Relaxed).max(1);
            let ring = Arc::new(Ring {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                space: Notifier::new(),
                state: Mutex::new(RingState {
                    cap,
                    events: VecDeque::with_capacity(cap),
                    dropped: 0,
                }),
            });
            RINGS.lock().push(Arc::clone(&ring));
            // Replacing a stale handle drops it; its Drop sees the epoch
            // mismatch and discards silently (reset already disowned it).
            *slot = Some(LocalRing { epoch, ring });
        }
        Arc::clone(&slot.as_ref().expect("just initialized").ring)
    });
    f(&ring);
}

/// Record an event for an explicit region id. No-op (one relaxed load) when
/// collection is disabled.
#[inline]
pub fn record(region: u64, kind: EventKind) {
    if !enabled() {
        return;
    }
    record_enabled(region, kind);
}

/// Record an event for the current thread's innermost team region (0 when
/// outside any team). No-op (one relaxed load) when collection is disabled.
#[inline]
pub fn record_here(kind: EventKind) {
    if !enabled() {
        return;
    }
    let region = context::current_frame().map_or(0, |f| f.team.region());
    record_enabled(region, kind);
}

#[inline(never)]
fn record_enabled(region: u64, kind: EventKind) {
    let ts_ns = now_ns();
    with_ring(|ring| {
        let ev = Event {
            region,
            thread: ring.tid,
            ts_ns,
            kind,
        };
        push_event(ring, ev);
    });
}

fn push_event(ring: &Arc<Ring>, ev: Event) {
    let fill = {
        let mut s = ring.state.lock();
        if s.events.len() < s.cap {
            s.events.push_back(ev);
            Some((s.events.len(), s.cap))
        } else {
            None
        }
    };
    match fill {
        Some((len, cap)) => {
            // Wake the flusher exactly as the ring crosses half-full (and
            // again at full), keeping steady-state drains off this thread
            // without a notify per event.
            if len == cap / 2 + 1 || len == cap {
                flush_wake().notify_all();
            }
        }
        None => overflow(ring, ev),
    }
}

/// The ring was observed full: apply the overflow policy. Re-checks for
/// space under the lock first — the flusher may have drained between the
/// fast-path check and here.
#[cold]
fn overflow(ring: &Arc<Ring>, ev: Event) {
    let reentrant = IN_PUSH.with(Cell::get);
    let policy = if reentrant {
        // A nested record from inside block_push (deadline trip) must never
        // block again; overwrite the oldest event instead.
        TracePolicy::DropOldest
    } else {
        active_policy()
    };
    if policy == TracePolicy::Block {
        block_push(ring, ev);
        return;
    }
    let mut s = ring.state.lock();
    if s.events.len() < s.cap {
        s.events.push_back(ev);
        return;
    }
    s.dropped += 1;
    if policy == TracePolicy::DropOldest {
        s.events.pop_front();
        s.events.push_back(ev);
    }
}

/// `block` policy: wait (bounded) for space, self-draining as a fallback.
///
/// The wait is sliced: each [`BLOCK_SLICE`] the thread gives up on the
/// flusher and drains its own ring — lossless, and immune to a missing or
/// wedged flusher. When the enclosing region has a deadline
/// (`OMP4RS_REGION_DEADLINE`) and it expires mid-push, the event is counted
/// dropped and the region's deadline trips ([`crate::team::Team`] poisons it
/// and the join surfaces [`crate::error::OmpError::RegionTimeout`]) — tracing
/// backpressure can stall a region, but it can never hang one.
fn block_push(ring: &Arc<Ring>, ev: Event) {
    struct PushGuard;
    impl Drop for PushGuard {
        fn drop(&mut self) {
            IN_PUSH.with(|c| c.set(false));
        }
    }
    IN_PUSH.with(|c| c.set(true));
    let _guard = PushGuard;
    let deadline = crate::team::current_deadline();
    let cap = ring.state.lock().cap;
    loop {
        {
            let mut s = ring.state.lock();
            if s.events.len() < s.cap {
                s.events.push_back(ev);
                return;
            }
        }
        flush_wake().notify_all();
        let slice_end = Instant::now() + BLOCK_SLICE;
        let has_space = || ring.state.lock().events.len() < cap;
        match &deadline {
            Some((team, dl)) => {
                if Instant::now() >= *dl {
                    ring.state.lock().dropped += 1;
                    let _ = team.trip_deadline("trace");
                    return;
                }
                let bound = (*dl).min(slice_end);
                if !crate::sync::wait_until_deadline(&ring.space, bound, has_space)
                    && Instant::now() < *dl
                {
                    drain_ring(ring);
                }
            }
            None => {
                if !crate::sync::wait_until_deadline(&ring.space, slice_end, has_space) {
                    drain_ring(ring);
                }
            }
        }
    }
}

/// Hand a drained batch to the active sink: the streaming part-file writer
/// when rotation is armed, the in-memory collector otherwise. Callers hold
/// [`DRAIN`] (directly or transitively) so [`events`] never sees a batch
/// in flight.
fn sink_batch(batch: Vec<Event>) {
    if batch.is_empty() {
        return;
    }
    FLUSHED.fetch_add(batch.len() as u64, Ordering::Relaxed);
    let mut stream = STREAM.lock();
    if let Some(sink) = stream.as_mut() {
        sink.append(&batch);
    } else {
        drop(stream);
        COLLECTED.lock().extend(batch);
    }
}

/// Drain one ring into the sink. Caller holds [`DRAIN`]. The ring's state
/// lock is released before sinking (and `space` notified, unparking any
/// `block`-policy pushers) so recording threads are never blocked on I/O.
fn drain_ring_inner(ring: &Ring) {
    let batch: Vec<Event> = {
        let mut s = ring.state.lock();
        s.events.drain(..).collect()
    };
    ring.space.notify_all();
    sink_batch(batch);
}

fn drain_ring(ring: &Ring) {
    let _guard = DRAIN.lock();
    drain_ring_inner(ring);
}

/// Team threads currently inside a region epilogue: the window between
/// arriving at the region's *final* barrier and flushing their ring. On the
/// pooled path the final barrier's releaser completes the region latch for
/// the whole gang, so the master can return — and call [`events`] — while a
/// worker is still recording its final `BarrierExit`/`ParallelEnd`. Snapshot
/// readers wait for this count to reach zero before draining.
static OPEN_EPILOGUES: AtomicUsize = AtomicUsize::new(0);

/// RAII marker for a team thread's region epilogue (see [`OPEN_EPILOGUES`]).
pub(crate) struct EpilogueGuard {
    armed: bool,
}

/// Mark the calling team thread as inside its region epilogue.
///
/// Must be taken *before* the thread arrives at the region's final barrier:
/// the increment then happens-before the barrier release that frees the
/// master, so a master that subsequently snapshots is guaranteed to observe
/// either the count or the events themselves. Inert (no atomic RMW) while
/// the profiler is off.
pub(crate) fn epilogue_begin() -> EpilogueGuard {
    let armed = enabled();
    if armed {
        OPEN_EPILOGUES.fetch_add(1, Ordering::SeqCst);
    }
    EpilogueGuard { armed }
}

impl Drop for EpilogueGuard {
    fn drop(&mut self) {
        if self.armed {
            OPEN_EPILOGUES.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Wait (bounded) until no team thread is mid-epilogue, so a snapshot taken
/// right after a pooled region returns sees the full event stream. The
/// deadline only matters if new regions keep launching concurrently — then
/// the snapshot is honestly racing live traffic and a cutoff is correct.
fn quiesce_epilogues() {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(100);
    while OPEN_EPILOGUES.load(Ordering::SeqCst) != 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
}

/// Drain every live ring (the flusher's sweep; also the shutdown path).
fn drain_all() {
    let _guard = DRAIN.lock();
    let rings: Vec<Arc<Ring>> = RINGS.lock().clone();
    for ring in &rings {
        drain_ring_inner(ring);
    }
}

/// Flush the calling thread's ring into the sink.
///
/// The runtime calls this at the end of every team thread's region body:
/// scoped threads signal completion *before* their TLS destructors run, so
/// relying on the ring's drop-drain alone would let [`events`] race with a
/// just-joined worker whose destructor is still pending. The drop remains as
/// a safety net for threads outside any team.
pub fn flush_thread() {
    RING.with(|slot| {
        if let Some(lr) = slot.borrow().as_ref() {
            if lr.epoch == RING_EPOCH.load(Ordering::Relaxed) {
                drain_ring(&lr.ring);
            }
        }
    });
}

/// Snapshot every event recorded so far (drains all rings first).
///
/// Call from the thread that ran the parallel regions *after* they complete.
/// In streaming-rotation mode drained events go to part files instead of the
/// in-memory collector, so this returns only what has not been streamed.
pub fn events() -> Vec<Event> {
    quiesce_epilogues();
    drain_all();
    let mut all = COLLECTED.lock().clone();
    all.sort_by_key(|e| e.ts_ns);
    all
}

/// Discard all recorded events, drop/flush accounting, and external counters.
///
/// Bumps the ring generation: every thread's local ring is disowned (its
/// buffered events discarded) and lazily recreated — with the capacity and
/// policy of the *next* [`enable`] — on that thread's next record.
pub fn reset() {
    let _guard = DRAIN.lock();
    RING_EPOCH.fetch_add(1, Ordering::SeqCst);
    RINGS.lock().clear();
    DROPPED_RETIRED.store(0, Ordering::Relaxed);
    FLUSHED.store(0, Ordering::Relaxed);
    COLLECTED.lock().clear();
    COUNTERS.lock().clear();
}

// ---------------------------------------------------------------------------
// Flusher thread
// ---------------------------------------------------------------------------

/// Wakes the flusher early (half-full rings, shutdown, unpause).
fn flush_wake() -> &'static Notifier {
    static WAKE: OnceLock<Notifier> = OnceLock::new();
    WAKE.get_or_init(Notifier::new)
}

struct Flusher {
    run: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

static FLUSHER: Mutex<Option<Flusher>> = Mutex::new(None);

/// Test/bench determinism hook: a paused flusher skips its sweeps (see
/// [`set_flusher_paused`]).
static FLUSHER_PAUSED: AtomicBool = AtomicBool::new(false);

/// Spawn the dedicated flusher if it is not already running. Spawn failure is
/// tolerated: recording still works, drains just happen inline (`block`
/// pushes self-drain after [`BLOCK_SLICE`]).
fn ensure_flusher() {
    let mut slot = FLUSHER.lock();
    if slot.is_some() {
        return;
    }
    let run = Arc::new(AtomicBool::new(true));
    let run_flag = Arc::clone(&run);
    let spawned = std::thread::Builder::new()
        .name("omp4rs-trace-flusher".into())
        .spawn(move || {
            while run_flag.load(Ordering::SeqCst) {
                if !FLUSHER_PAUSED.load(Ordering::SeqCst) {
                    drain_all();
                }
                flush_wake().wait_timeout(FLUSH_TICK);
            }
            // Final sweep so a stop never strands buffered events.
            drain_all();
        });
    if let Ok(handle) = spawned {
        *slot = Some(Flusher { run, handle });
    }
}

/// Stop and join the flusher (idempotent). Runs before any summary/trace
/// rendering so output generation never races a live drain.
fn stop_flusher() {
    let flusher = FLUSHER.lock().take();
    if let Some(f) = flusher {
        f.run.store(false, Ordering::SeqCst);
        flush_wake().notify_all();
        let _ = f.handle.join();
    }
}

/// Whether the dedicated flusher thread is currently running.
pub fn flusher_running() -> bool {
    FLUSHER.lock().is_some()
}

/// Pause or resume the flusher's periodic sweeps *without* stopping the
/// thread. Deterministic overflow tests use this to guarantee a tiny ring
/// actually fills; benchmarks use it to measure the no-flusher baseline.
/// Inline drains ([`flush_thread`], [`events`], shutdown) are unaffected.
pub fn set_flusher_paused(paused: bool) {
    FLUSHER_PAUSED.store(paused, Ordering::SeqCst);
    if !paused {
        flush_wake().notify_all();
    }
}

// ---------------------------------------------------------------------------
// Pipeline introspection
// ---------------------------------------------------------------------------

/// A snapshot of the trace pipeline's capacity and throughput accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Live per-thread rings.
    pub rings: usize,
    /// Capacity (in events) rings are created with.
    pub capacity: usize,
    /// Events drained out of rings since the last [`reset`].
    pub flushed: u64,
    /// Events dropped by overflow policies since the last [`reset`].
    pub dropped: u64,
}

impl RingStats {
    /// The bounded-memory guarantee: the maximum bytes the live rings can
    /// hold (`rings × capacity × sizeof(Event)`).
    pub fn bounded_bytes(&self) -> usize {
        self.rings * self.capacity * std::mem::size_of::<Event>()
    }
}

/// Snapshot the pipeline accounting (see [`RingStats`]).
pub fn ring_stats() -> RingStats {
    // Bind the ring count first: a `RINGS.lock()` temporary inside the struct
    // literal would outlive the `dropped_events()` field initializer, which
    // locks `RINGS` again (parking_lot mutexes are not reentrant).
    let rings = RINGS.lock().len();
    RingStats {
        rings,
        capacity: RING_CAP.load(Ordering::Relaxed),
        flushed: FLUSHED.load(Ordering::Relaxed),
        dropped: dropped_events(),
    }
}

/// Total events dropped by overflow policies since the last [`reset`]
/// (retired rings' counts plus every live ring's).
pub fn dropped_events() -> u64 {
    let mut total = DROPPED_RETIRED.load(Ordering::Relaxed);
    for ring in RINGS.lock().iter() {
        total += ring.state.lock().dropped;
    }
    total
}

// ---------------------------------------------------------------------------
// External counters
// ---------------------------------------------------------------------------

static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

/// Publish (or overwrite) a named scalar counter.
///
/// Used by layers outside this crate — the minipy interpreter publishes its
/// GIL hold time and per-object lock contention here via the pyfront bridge —
/// so the per-region summary can show the Pure-vs-Compiled contrast.
pub fn set_counter(name: &'static str, value: u64) {
    COUNTERS.lock().insert(name, value);
}

/// Snapshot all published counters.
///
/// When the trace pipeline has dropped events, an `omp4rs.trace.dropped`
/// entry is folded in so every exporter (summary, trace footer, JSON bench
/// output) reports the loss — truncation is never silent. Lossless runs get
/// no entry.
pub fn counters() -> BTreeMap<&'static str, u64> {
    let mut map = COUNTERS.lock().clone();
    let dropped = dropped_events();
    if dropped > 0 {
        map.insert("omp4rs.trace.dropped", dropped);
    }
    map
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Metrics folded from one region's events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionMetrics {
    /// The region id ([`crate::team::Team::region`]).
    pub region: u64,
    /// Number of distinct threads that recorded events in the region.
    pub threads: usize,
    /// Wall-clock span (first `parallel-begin` to last `parallel-end`), ns.
    pub span_ns: u64,
    /// Barrier arrivals.
    pub barriers: u64,
    /// Total nanoseconds threads spent inside barriers (idle wait *plus*
    /// tasks drained while parked — the raw sum of `barrier-exit` windows).
    pub barrier_wait_ns: u64,
    /// Longest single barrier window, ns.
    pub barrier_wait_max_ns: u64,
    /// Of [`RegionMetrics::barrier_wait_ns`], nanoseconds actually spent
    /// *executing tasks* inside barrier windows (task schedule→complete
    /// spans that began while the thread was between `barrier-enter` and
    /// `barrier-exit`). Reporting wait and drain as one number made summary
    /// percentages exceed 100% when barriers drained heavy task queues; the
    /// summary now shows `wait = barrier_wait_ns − barrier_drain_ns` and
    /// drain as separate lines.
    pub barrier_drain_ns: u64,
    /// Loop chunks claimed.
    pub chunks: u64,
    /// Total chunk execution time, ns.
    pub chunk_ns_total: u64,
    /// Longest single chunk, ns.
    pub chunk_ns_max: u64,
    /// Load imbalance: max per-thread chunk time over mean per-thread chunk
    /// time (1.0 = perfectly balanced; 0.0 when the region ran no chunks).
    pub imbalance: f64,
    /// Tasks created.
    pub tasks_created: u64,
    /// Tasks completed (including discarded tasks of cancelled queues).
    pub tasks_completed: u64,
    /// Tasks claimed from another thread's work-stealing deque.
    pub task_steals: u64,
    /// High-water mark of simultaneously outstanding tasks.
    pub task_depth_hwm: u64,
    /// Lock / `critical` acquisitions.
    pub lock_acquires: u64,
    /// How many of those had to wait for another holder.
    pub lock_contended: u64,
    /// Time spent blocked on runtime events (`taskwait`, `copyprivate`,
    /// `ordered`), ns.
    pub sync_wait_ns: u64,
    /// Cancellation requests/observations.
    pub cancellations: u64,
}

impl RegionMetrics {
    /// Mean chunk execution time, ns (0 when no chunks ran).
    pub fn chunk_ns_mean(&self) -> u64 {
        self.chunk_ns_total.checked_div(self.chunks).unwrap_or(0)
    }
}

/// Fold an event stream into per-region metrics, sorted by region id.
///
/// Events must carry consistent timestamps (as produced by this module);
/// the fold is pure, so synthetic event streams work too (the unit tests
/// build some).
pub fn aggregate(events: &[Event]) -> Vec<RegionMetrics> {
    let mut regions: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in events {
        regions.entry(e.region).or_default().push(e);
    }
    let mut out = Vec::with_capacity(regions.len());
    for (region, mut evs) in regions {
        evs.sort_by_key(|e| e.ts_ns);
        let mut m = RegionMetrics {
            region,
            ..RegionMetrics::default()
        };
        let mut threads: Vec<u32> = Vec::new();
        let mut begin_ts: Option<u64> = None;
        let mut end_ts: Option<u64> = None;
        let mut depth: u64 = 0;
        let mut per_thread_chunk_ns: BTreeMap<u32, u64> = BTreeMap::new();
        // Per-thread "inside a barrier window" flag and the stack of open
        // task executions (start ts, was-in-barrier), used to attribute task
        // time drained at barriers separately from idle barrier waiting.
        let mut in_barrier: BTreeMap<u32, bool> = BTreeMap::new();
        let mut task_open: BTreeMap<u32, Vec<(u64, bool)>> = BTreeMap::new();
        for e in &evs {
            if !threads.contains(&e.thread) {
                threads.push(e.thread);
            }
            match e.kind {
                EventKind::ParallelBegin { .. } => {
                    begin_ts = Some(begin_ts.map_or(e.ts_ns, |t| t.min(e.ts_ns)));
                }
                EventKind::ParallelEnd => {
                    end_ts = Some(end_ts.map_or(e.ts_ns, |t| t.max(e.ts_ns)));
                }
                EventKind::BarrierEnter { .. } => {
                    m.barriers += 1;
                    in_barrier.insert(e.thread, true);
                }
                EventKind::BarrierExit { wait_ns } => {
                    m.barrier_wait_ns += wait_ns;
                    m.barrier_wait_max_ns = m.barrier_wait_max_ns.max(wait_ns);
                    in_barrier.insert(e.thread, false);
                }
                EventKind::TaskCreate { .. } => {
                    m.tasks_created += 1;
                    depth += 1;
                    m.task_depth_hwm = m.task_depth_hwm.max(depth);
                }
                EventKind::TaskSchedule => {
                    let waiting = in_barrier.get(&e.thread).copied().unwrap_or(false);
                    task_open
                        .entry(e.thread)
                        .or_default()
                        .push((e.ts_ns, waiting));
                }
                EventKind::TaskSteal => m.task_steals += 1,
                EventKind::TaskComplete => {
                    m.tasks_completed += 1;
                    depth = depth.saturating_sub(1);
                    if let Some((start, true)) = task_open.get_mut(&e.thread).and_then(Vec::pop) {
                        m.barrier_drain_ns += e.ts_ns.saturating_sub(start);
                    }
                }
                EventKind::ChunkClaim { .. } => m.chunks += 1,
                EventKind::ChunkDone { ns, .. } => {
                    m.chunk_ns_total += ns;
                    m.chunk_ns_max = m.chunk_ns_max.max(ns);
                    *per_thread_chunk_ns.entry(e.thread).or_default() += ns;
                }
                EventKind::LockAcquire { contended } => {
                    m.lock_acquires += 1;
                    m.lock_contended += u64::from(contended);
                }
                EventKind::SyncWait { ns } => m.sync_wait_ns += ns,
                EventKind::CancelObserved => m.cancellations += 1,
                // Resilience trips always poison the region, which records a
                // CancelObserved counted above — no separate aggregate.
                EventKind::WatchdogStall { .. } | EventKind::DeadlineTrip { .. } => {}
            }
        }
        m.threads = threads.len();
        m.span_ns = match (begin_ts, end_ts) {
            (Some(b), Some(e)) => e.saturating_sub(b),
            _ => 0,
        };
        if !per_thread_chunk_ns.is_empty() {
            let max = *per_thread_chunk_ns.values().max().unwrap_or(&0);
            let sum: u64 = per_thread_chunk_ns.values().sum();
            let mean = sum as f64 / per_thread_chunk_ns.len() as f64;
            m.imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };
        }
        out.push(m);
    }
    out
}

// ---------------------------------------------------------------------------
// Summary exporter
// ---------------------------------------------------------------------------

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// Render the human-readable per-region summary for an event stream and a
/// counter snapshot.
pub fn render_summary(events: &[Event], counters: &BTreeMap<&'static str, u64>) -> String {
    let mut out = String::from("== omp4rs profile summary ==\n");
    let metrics = aggregate(events);
    if metrics.is_empty() {
        out.push_str("(no events recorded)\n");
    }
    for m in &metrics {
        out.push_str(&format!(
            "region {}: threads={} span={}\n",
            m.region,
            m.threads,
            fmt_ms(m.span_ns)
        ));
        // Barrier windows cover idle waiting plus tasks drained while
        // parked; reporting them as one "wait" made the shares below exceed
        // 100% of thread-time. Split them (drain clamped to the window).
        let drain_ns = m.barrier_drain_ns.min(m.barrier_wait_ns);
        let wait_ns = m.barrier_wait_ns - drain_ns;
        out.push_str(&format!(
            "  barriers: {} arrivals, in-barrier {} (wait {} + task-drain {}), max {}\n",
            m.barriers,
            fmt_ms(m.barrier_wait_ns),
            fmt_ms(wait_ns),
            fmt_ms(drain_ns),
            fmt_ms(m.barrier_wait_max_ns)
        ));
        let thread_time_ns = m.span_ns.saturating_mul(m.threads as u64);
        if thread_time_ns > 0 {
            let pct = |ns: u64| ns as f64 * 100.0 / thread_time_ns as f64;
            out.push_str(&format!(
                "  shares: barrier-wait {:.1}%, task-drain {:.1}% of thread-time\n",
                pct(wait_ns),
                pct(drain_ns)
            ));
        }
        out.push_str(&format!(
            "  chunks: {} claimed, mean {}, max {}, imbalance {:.2}\n",
            m.chunks,
            fmt_ms(m.chunk_ns_mean()),
            fmt_ms(m.chunk_ns_max),
            m.imbalance
        ));
        out.push_str(&format!(
            "  tasks: {} created, {} completed, {} stolen, queue high-water {}\n",
            m.tasks_created, m.tasks_completed, m.task_steals, m.task_depth_hwm
        ));
        out.push_str(&format!(
            "  locks: {} acquisitions, {} contended; sync wait {}\n",
            m.lock_acquires,
            m.lock_contended,
            fmt_ms(m.sync_wait_ns)
        ));
        if m.cancellations > 0 {
            out.push_str(&format!("  cancellations: {}\n", m.cancellations));
        }
    }
    if let Some(dropped) = counters.get("omp4rs.trace.dropped") {
        out.push_str(&format!(
            "!! trace ring overflow: {dropped} events dropped — raise \
             OMP4RS_TRACE_RING or switch OMP4RS_TRACE_POLICY\n"
        ));
    }
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in counters {
            out.push_str(&format!("  {name} = {value}\n"));
        }
    }
    out
}

/// Render the summary for everything recorded so far.
pub fn summary() -> String {
    render_summary(&events(), &counters())
}

// ---------------------------------------------------------------------------
// Chrome-trace exporter
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

struct TraceWriter {
    out: String,
    first: bool,
}

impl TraceWriter {
    fn new() -> TraceWriter {
        TraceWriter {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            first: true,
        }
    }

    /// Emit a complete ("X") duration event.
    fn complete(
        &mut self,
        name: &str,
        region: u64,
        tid: u32,
        start_ns: u64,
        dur_ns: u64,
        args: &str,
    ) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"omp4rs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}{}}}",
            json_escape(name),
            ts_us(start_ns),
            ts_us(dur_ns),
            region,
            tid,
            args
        ));
    }

    /// Emit an instant ("i") event.
    fn instant(&mut self, name: &str, region: u64, tid: u32, ts_ns: u64, args: &str) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"omp4rs\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{}{}}}",
            json_escape(name),
            ts_us(ts_ns),
            region,
            tid,
            args
        ));
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }

    fn finish(mut self, counters: &BTreeMap<&'static str, u64>) -> String {
        self.out.push_str("],\"otherData\":{");
        let mut first = true;
        for (name, value) in counters {
            if !first {
                self.out.push(',');
            }
            first = false;
            self.out
                .push_str(&format!("\"{}\":{}", json_escape(name), value));
        }
        self.out.push_str("}}");
        self.out
    }
}

/// Render a Chrome-trace (`chrome://tracing` / Perfetto JSON) dump for an
/// event stream. Paired events (barrier enter/exit, task schedule/complete,
/// parallel begin/end) become duration slices; chunk executions become
/// slices reconstructed from their recorded durations; everything else
/// becomes instant markers. `pid` encodes the region id, `tid` the
/// profiler-assigned thread id.
pub fn render_chrome_trace(events: &[Event], counters: &BTreeMap<&'static str, u64>) -> String {
    let mut w = TraceWriter::new();
    let mut pairs = PairState::default();
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts_ns);
    for e in sorted {
        pairs.emit(e, &mut w);
    }
    w.finish(counters)
}

/// Event-pairing state per (region, thread), shared by the one-shot exporter
/// and the streaming sink. Kept *outside* [`TraceWriter`] so rotation can
/// start a fresh part file while pairs that straddle the boundary (an open
/// barrier, a running task) still close correctly — the duration slice is
/// emitted into whichever part sees the closing event.
#[derive(Default)]
struct PairState {
    barrier_open: BTreeMap<(u64, u32), (u64, bool)>,
    task_open: BTreeMap<(u64, u32), Vec<u64>>,
    parallel_open: BTreeMap<(u64, u32), u64>,
}

impl PairState {
    /// Translate one event into trace output (possibly none, for openers).
    fn emit(&mut self, e: &Event, w: &mut TraceWriter) {
        let barrier_open = &mut self.barrier_open;
        let task_open = &mut self.task_open;
        let parallel_open = &mut self.parallel_open;
        let key = (e.region, e.thread);
        match e.kind {
            EventKind::ParallelBegin { team_size } => {
                let _ = team_size;
                parallel_open.insert(key, e.ts_ns);
            }
            EventKind::ParallelEnd => {
                if let Some(start) = parallel_open.remove(&key) {
                    w.complete(
                        &format!("parallel (region {})", e.region),
                        e.region,
                        e.thread,
                        start,
                        e.ts_ns.saturating_sub(start),
                        "",
                    );
                }
            }
            EventKind::BarrierEnter { explicit } => {
                barrier_open.insert(key, (e.ts_ns, explicit));
            }
            EventKind::BarrierExit { wait_ns } => {
                if let Some((start, explicit)) = barrier_open.remove(&key) {
                    let name = if explicit {
                        "barrier"
                    } else {
                        "barrier (implicit)"
                    };
                    let args = format!(",\"args\":{{\"wait_ns\":{wait_ns}}}");
                    w.complete(
                        name,
                        e.region,
                        e.thread,
                        start,
                        e.ts_ns.saturating_sub(start),
                        &args,
                    );
                }
            }
            EventKind::TaskCreate { deferred } => {
                let args = format!(",\"args\":{{\"deferred\":{deferred}}}");
                w.instant("task-create", e.region, e.thread, e.ts_ns, &args);
            }
            EventKind::TaskSchedule => {
                task_open.entry(key).or_default().push(e.ts_ns);
            }
            EventKind::TaskSteal => {
                w.instant("task-steal", e.region, e.thread, e.ts_ns, "");
            }
            EventKind::TaskComplete => {
                if let Some(start) = task_open.get_mut(&key).and_then(Vec::pop) {
                    w.complete(
                        "task",
                        e.region,
                        e.thread,
                        start,
                        e.ts_ns.saturating_sub(start),
                        "",
                    );
                }
            }
            EventKind::ChunkClaim { lo, hi } => {
                let args = format!(",\"args\":{{\"lo\":{lo},\"hi\":{hi}}}");
                w.instant("chunk-claim", e.region, e.thread, e.ts_ns, &args);
            }
            EventKind::ChunkDone { iters, ns } => {
                let args = format!(",\"args\":{{\"iters\":{iters}}}");
                w.complete(
                    "chunk",
                    e.region,
                    e.thread,
                    e.ts_ns.saturating_sub(ns),
                    ns,
                    &args,
                );
            }
            EventKind::LockAcquire { contended } => {
                if contended {
                    w.instant("lock-contended", e.region, e.thread, e.ts_ns, "");
                }
            }
            EventKind::SyncWait { ns } => {
                w.complete(
                    "sync-wait",
                    e.region,
                    e.thread,
                    e.ts_ns.saturating_sub(ns),
                    ns,
                    "",
                );
            }
            EventKind::CancelObserved => {
                w.instant("cancel", e.region, e.thread, e.ts_ns, "");
            }
            EventKind::WatchdogStall { worker, busy_ns } => {
                let args = format!(",\"args\":{{\"worker\":{worker},\"busy_ns\":{busy_ns}}}");
                w.instant("watchdog-stall", e.region, e.thread, e.ts_ns, &args);
            }
            EventKind::DeadlineTrip { wait_ns } => {
                let args = format!(",\"args\":{{\"wait_ns\":{wait_ns}}}");
                w.instant("deadline-trip", e.region, e.thread, e.ts_ns, &args);
            }
        }
    }
}

/// Render the Chrome trace for everything recorded so far.
pub fn chrome_trace() -> String {
    render_chrome_trace(&events(), &counters())
}

// ---------------------------------------------------------------------------
// Streaming sink (rotating part files)
// ---------------------------------------------------------------------------

/// The rotation-mode sink: drained batches are serialized incrementally into
/// a [`TraceWriter`], which is finished and written out as a standalone,
/// independently valid Chrome-trace part file (`trace.0.json`,
/// `trace.1.json`, …) every time it reaches the configured size. Old parts
/// beyond `keep` are deleted, so disk use is bounded just like ring memory.
struct StreamSink {
    base: String,
    rotate_bytes: usize,
    keep: usize,
    part: u64,
    parts: VecDeque<String>,
    writer: TraceWriter,
    pairs: PairState,
    /// First write error, surfaced by [`StreamSink::close`] ([`sink_batch`]
    /// runs on the flusher where there is nowhere to propagate).
    error: Option<std::io::Error>,
}

static STREAM: Mutex<Option<StreamSink>> = Mutex::new(None);

impl StreamSink {
    fn new(base: String, rotate_kib: u64, keep: usize) -> StreamSink {
        StreamSink {
            base,
            rotate_bytes: (rotate_kib.max(1) as usize).saturating_mul(1024),
            keep: keep.max(1),
            part: 0,
            parts: VecDeque::new(),
            writer: TraceWriter::new(),
            pairs: PairState::default(),
            error: None,
        }
    }

    /// `trace.json` → `trace.0.json`; anything else gets `.<part>` appended.
    fn part_path(&self) -> String {
        match self.base.strip_suffix(".json") {
            Some(stem) => format!("{stem}.{}.json", self.part),
            None => format!("{}.{}", self.base, self.part),
        }
    }

    fn append(&mut self, batch: &[Event]) {
        for e in batch {
            self.pairs.emit(e, &mut self.writer);
        }
        if self.writer.out.len() >= self.rotate_bytes {
            self.rotate();
        }
    }

    fn rotate(&mut self) {
        let writer = std::mem::replace(&mut self.writer, TraceWriter::new());
        let text = writer.finish(&counters());
        let path = self.part_path();
        if let Err(e) = std::fs::write(&path, text) {
            self.error.get_or_insert(e);
        }
        self.parts.push_back(path);
        self.part += 1;
        while self.parts.len() > self.keep {
            if let Some(old) = self.parts.pop_front() {
                let _ = std::fs::remove_file(&old);
            }
        }
    }

    /// Write the final part (the drop counter lands in its footer) and
    /// return its path, or the first write error encountered.
    fn close(mut self) -> std::io::Result<String> {
        self.rotate();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        Ok(self
            .parts
            .back()
            .cloned()
            .unwrap_or_else(|| self.base.clone()))
    }
}

/// Emit the outputs configured by the active [`ToolConfig`] (write the trace
/// file, print the summary to stderr). Returns the trace path written — in
/// rotation mode, the path of the final part file. A no-op returning
/// `Ok(None)` when no configuration is active.
///
/// Shutdown ordering: the flusher is stopped and joined, every ring drained,
/// and only *then* is anything rendered — the summary can never race a live
/// drain and no events are lost on a normal exit.
///
/// # Errors
///
/// Propagates the I/O error if the trace file cannot be written.
pub fn finalize() -> std::io::Result<Option<String>> {
    let config = ACTIVE.lock().clone();
    let Some(config) = config else {
        return Ok(None);
    };
    stop_flusher();
    quiesce_epilogues();
    drain_all();
    if config.summary {
        eprintln!("{}", summary());
    }
    let sink = STREAM.lock().take();
    if let Some(sink) = sink {
        return sink.close().map(Some);
    }
    if let Some(path) = &config.trace_path {
        std::fs::write(path, chrome_trace())?;
        return Ok(Some(path.clone()));
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// Sessions (programmatic / test use)
// ---------------------------------------------------------------------------

/// Serializes sessions the way [`crate::faults`] serializes fault plans:
/// concurrently running tests never observe each other's events.
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// An active profiling session. Collection is enabled while it lives;
/// dropping it disables collection (recorded events are retained until the
/// next [`session`] or [`reset`]).
pub struct Session {
    _lock: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish()
    }
}

impl Session {
    /// The per-region summary of events recorded so far in this session.
    pub fn summary(&self) -> String {
        summary()
    }

    /// The Chrome trace of events recorded so far in this session.
    pub fn chrome_trace(&self) -> String {
        chrome_trace()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        disable();
    }
}

/// Start a profiling session: take the global session lock, clear previously
/// recorded events and counters, and enable collection until the returned
/// [`Session`] drops.
pub fn session(config: ToolConfig) -> Session {
    let lock = SESSION_LOCK.lock();
    reset();
    enable(config);
    Session { _lock: lock }
}

/// Take the session lock *without* enabling collection — used by tests that
/// must assert the disabled profiler records nothing, without racing against
/// enabled sessions in sibling tests.
pub fn disabled_session() -> Session {
    let lock = SESSION_LOCK.lock();
    reset();
    disable();
    Session { _lock: lock }
}

// ---------------------------------------------------------------------------
// Chrome-trace validation (a deliberately small JSON parser)
// ---------------------------------------------------------------------------

/// Shape facts extracted by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of entries in `traceEvents`.
    pub events: usize,
    /// Number of entries in `otherData` (the exported counters).
    pub counters: usize,
}

/// Parse a Chrome-trace dump with a minimal JSON parser and check its shape:
/// a top-level object with a `traceEvents` array whose entries each carry
/// `name` (string), `ph` (string), `ts` (number), `pid`/`tid` (numbers), and
/// `dur` (number) for `"X"` events.
///
/// # Errors
///
/// A description of the first malformed construct found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let fields = ev
            .as_object()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let name = get("name").ok_or_else(|| format!("traceEvents[{i}] missing name"))?;
        if name.as_str().is_none() {
            return Err(format!("traceEvents[{i}].name is not a string"));
        }
        let ph = get("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing ph"))?;
        for key in ["ts", "pid", "tid"] {
            if get(key).and_then(json::Value::as_number).is_none() {
                return Err(format!("traceEvents[{i}] missing numeric {key}"));
            }
        }
        if ph == "X" && get("dur").and_then(json::Value::as_number).is_none() {
            return Err(format!("traceEvents[{i}] is ph=X without numeric dur"));
        }
    }
    let counters = obj
        .iter()
        .find(|(k, _)| k == "otherData")
        .and_then(|(_, v)| v.as_object())
        .map_or(0, Vec::len);
    Ok(TraceStats {
        events: events.len(),
        counters,
    })
}

/// The minimal JSON parser backing [`validate_chrome_trace`]. Supports the
/// full JSON grammar minus `\u` surrogate pairs, which the exporter never
/// emits.
mod json {
    pub(super) enum Value {
        Null,
        // The validator never inspects booleans, but a JSON parser that
        // dropped them would be a trap for the next caller.
        Bool(#[allow(dead_code)] bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }
        pub(super) fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
        pub(super) fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
        pub(super) fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    pub(super) fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        debug_assert_eq!(b[*pos], b'"');
        *pos += 1;
        let mut out = Vec::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".into());
                }
                b'\\' => {
                    *pos += 1;
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            let c = char::from_u32(code).ok_or("surrogate \\u escape")?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                c => {
                    out.push(c);
                    *pos += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {pos}"));
            }
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}"));
            }
            *pos += 1;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_omp_tool_forms() {
        assert_eq!(ToolConfig::parse(""), None);
        assert_eq!(ToolConfig::parse("disabled"), None);
        assert_eq!(ToolConfig::parse("off"), None);
        assert_eq!(ToolConfig::parse("enabled"), Some(ToolConfig::default()));
        assert_eq!(
            ToolConfig::parse("summary"),
            Some(ToolConfig {
                trace_path: None,
                summary: true,
                ..ToolConfig::default()
            })
        );
        assert_eq!(
            ToolConfig::parse("trace:/tmp/a.json , summary"),
            Some(ToolConfig {
                trace_path: Some("/tmp/a.json".into()),
                summary: true,
                ..ToolConfig::default()
            })
        );
        assert_eq!(ToolConfig::parse("trace:"), None);
        assert_eq!(ToolConfig::parse("bogus"), None);
    }

    #[test]
    fn parse_trace_policy_forms() {
        assert_eq!(
            TracePolicy::parse("drop-oldest"),
            Some(TracePolicy::DropOldest)
        );
        assert_eq!(TracePolicy::parse("OLDEST"), Some(TracePolicy::DropOldest));
        assert_eq!(
            TracePolicy::parse("drop-newest"),
            Some(TracePolicy::DropNewest)
        );
        assert_eq!(TracePolicy::parse(" block "), Some(TracePolicy::Block));
        assert_eq!(TracePolicy::parse("bogus"), None);
        for policy in [
            TracePolicy::DropOldest,
            TracePolicy::DropNewest,
            TracePolicy::Block,
        ] {
            assert_eq!(TracePolicy::parse(policy.name()), Some(policy));
            assert_eq!(TracePolicy::from_code(policy.code()), policy);
        }
    }

    #[test]
    fn region_ids_are_unique() {
        let a = new_region_id();
        let b = new_region_id();
        assert!(b > a);
    }

    fn ev(region: u64, thread: u32, ts_ns: u64, kind: EventKind) -> Event {
        Event {
            region,
            thread,
            ts_ns,
            kind,
        }
    }

    #[test]
    fn aggregate_synthetic_stream() {
        let events = vec![
            ev(1, 0, 0, EventKind::ParallelBegin { team_size: 2 }),
            ev(1, 1, 5, EventKind::ParallelBegin { team_size: 2 }),
            ev(1, 0, 10, EventKind::ChunkClaim { lo: 0, hi: 8 }),
            ev(1, 0, 110, EventKind::ChunkDone { iters: 8, ns: 100 }),
            ev(1, 1, 10, EventKind::ChunkClaim { lo: 8, hi: 16 }),
            ev(1, 1, 310, EventKind::ChunkDone { iters: 8, ns: 300 }),
            ev(1, 0, 320, EventKind::BarrierEnter { explicit: false }),
            ev(1, 0, 400, EventKind::BarrierExit { wait_ns: 80 }),
            ev(1, 1, 330, EventKind::BarrierEnter { explicit: false }),
            ev(1, 1, 400, EventKind::BarrierExit { wait_ns: 70 }),
            ev(1, 0, 410, EventKind::TaskCreate { deferred: true }),
            ev(1, 0, 415, EventKind::TaskCreate { deferred: true }),
            ev(1, 1, 420, EventKind::TaskSchedule),
            ev(1, 1, 430, EventKind::TaskComplete),
            ev(1, 1, 431, EventKind::TaskSchedule),
            ev(1, 1, 440, EventKind::TaskComplete),
            ev(1, 0, 450, EventKind::LockAcquire { contended: true }),
            ev(1, 0, 460, EventKind::ParallelEnd),
            ev(1, 1, 470, EventKind::ParallelEnd),
        ];
        let metrics = aggregate(&events);
        assert_eq!(metrics.len(), 1);
        let m = &metrics[0];
        assert_eq!(m.region, 1);
        assert_eq!(m.threads, 2);
        assert_eq!(m.span_ns, 470);
        assert_eq!(m.barriers, 2);
        assert_eq!(m.barrier_wait_ns, 150);
        assert_eq!(m.barrier_wait_max_ns, 80);
        assert_eq!(m.chunks, 2);
        assert_eq!(m.chunk_ns_total, 400);
        assert_eq!(m.chunk_ns_max, 300);
        assert_eq!(m.chunk_ns_mean(), 200);
        // thread 0 spent 100ns, thread 1 spent 300ns: max/mean = 300/200.
        assert!((m.imbalance - 1.5).abs() < 1e-9);
        assert_eq!(m.tasks_created, 2);
        assert_eq!(m.tasks_completed, 2);
        assert_eq!(m.task_depth_hwm, 2);
        assert_eq!(m.lock_acquires, 1);
        assert_eq!(m.lock_contended, 1);
    }

    #[test]
    fn barrier_drain_is_split_from_wait() {
        let events = vec![
            ev(2, 0, 0, EventKind::BarrierEnter { explicit: false }),
            ev(2, 0, 10, EventKind::TaskSchedule),
            ev(2, 0, 60, EventKind::TaskComplete),
            ev(2, 0, 100, EventKind::BarrierExit { wait_ns: 100 }),
            // The same task shape outside a barrier window adds no drain.
            ev(2, 0, 110, EventKind::TaskSchedule),
            ev(2, 0, 150, EventKind::TaskComplete),
        ];
        let metrics = aggregate(&events);
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].barrier_wait_ns, 100);
        assert_eq!(metrics[0].barrier_drain_ns, 50);
        let text = render_summary(&events, &BTreeMap::new());
        assert!(text.contains("wait "), "{text}");
        assert!(text.contains("task-drain "), "{text}");
    }

    #[test]
    fn summary_flags_dropped_events() {
        let mut counters = BTreeMap::new();
        counters.insert("omp4rs.trace.dropped", 7u64);
        let text = render_summary(&[], &counters);
        assert!(
            text.contains("trace ring overflow: 7 events dropped"),
            "{text}"
        );
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        let events = vec![
            ev(3, 0, 100, EventKind::ParallelBegin { team_size: 1 }),
            ev(3, 0, 150, EventKind::ChunkClaim { lo: 0, hi: 4 }),
            ev(3, 0, 250, EventKind::ChunkDone { iters: 4, ns: 100 }),
            ev(3, 0, 260, EventKind::BarrierEnter { explicit: true }),
            ev(3, 0, 300, EventKind::BarrierExit { wait_ns: 40 }),
            ev(3, 0, 310, EventKind::TaskCreate { deferred: false }),
            ev(3, 0, 311, EventKind::TaskSchedule),
            ev(3, 0, 330, EventKind::TaskComplete),
            ev(3, 0, 340, EventKind::LockAcquire { contended: true }),
            ev(3, 0, 350, EventKind::SyncWait { ns: 5 }),
            ev(3, 0, 360, EventKind::CancelObserved),
            ev(3, 0, 400, EventKind::ParallelEnd),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("minipy.obj_lock.acquisitions", 42u64);
        let trace = render_chrome_trace(&events, &counters);
        let stats = validate_chrome_trace(&trace).expect("trace must be valid JSON");
        // parallel, chunk, barrier, task-create, task, lock-contended,
        // chunk-claim instant, sync-wait, cancel = 9 entries.
        assert_eq!(stats.events, 9);
        assert_eq!(stats.counters, 1);
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _session = disabled_session();
        record(1, EventKind::ParallelEnd);
        record_here(EventKind::TaskSchedule);
        assert!(events().is_empty());
    }

    #[test]
    fn session_records_and_disables_on_drop() {
        {
            let session = session(ToolConfig::default());
            assert!(enabled());
            record(7, EventKind::TaskCreate { deferred: true });
            record(7, EventKind::TaskComplete);
            let evs = events();
            assert_eq!(evs.len(), 2);
            assert!(evs.iter().all(|e| e.region == 7));
            // Events appear in per-thread program order.
            assert!(matches!(evs[0].kind, EventKind::TaskCreate { .. }));
            let text = session.summary();
            assert!(text.contains("region 7"), "{text}");
        }
        assert!(!enabled());
    }

    #[test]
    fn counters_appear_in_summary_and_trace() {
        let _session = session(ToolConfig::default());
        set_counter("test.counter", 9);
        let text = summary();
        assert!(text.contains("test.counter = 9"), "{text}");
        let stats = validate_chrome_trace(&chrome_trace()).unwrap();
        assert_eq!(stats.counters, 1);
    }
}
