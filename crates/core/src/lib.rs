//! # omp4rs — an OpenMP 3.0 runtime and directive language in Rust
//!
//! `omp4rs` is the core of a from-scratch reproduction of the OMP4Py paper
//! (*Unlocking Python Multithreading Capabilities using OpenMP-Based
//! Programming with OMP4Py*, CGO 2026). It implements:
//!
//! * the full **OpenMP 3.0 directive language** ([`directive`]) — including
//!   the paper's extensions (`declare reduction`, `default(private |
//!   firstprivate)`, optional `nowait` argument, OpenMP 6.0 surface syntax);
//! * a **dual-backend runtime** ([`sync`]): mutex-coordinated internals
//!   (the paper's pure-Python `runtime`) vs atomics (`fetch_add` schedule
//!   counters, lock-free task queues — the paper's Cython `cruntime`);
//! * **teams** with task-draining barriers ([`team`]), **work-sharing**
//!   ([`schedule`], [`worksharing`]) with static/dynamic/guided/auto/runtime
//!   policies, `collapse`, `ordered`, and `lastprivate` support;
//! * **tasking** ([`tasks`]) with deferred/undeferred tasks, `taskwait`
//!   child-tracking, `taskyield`, `priority`, and — via the dependence
//!   graph in [`depgraph`] — `depend(in/out/inout)` and `taskgroup`;
//! * the **OpenMP runtime API** ([`api`]) with ICVs and `OMP_*` environment
//!   variables ([`icv`]), locks and criticals ([`locks`]), and reductions
//!   ([`reduction`]);
//! * a **compiled-mode execution API** ([`exec`]) used by the paper's
//!   Compiled/CompiledDT analogues (native closures driven by directive
//!   clause strings);
//! * an **OMPT-inspired trace pipeline** ([`ompt`]): bounded per-thread
//!   event rings drained by a dedicated flusher into per-region summaries
//!   and (rotating) Chrome-trace files, with explicit overflow policies —
//!   see `docs/OBSERVABILITY.md` for the full event/counter model.
//!
//! The interpreted **Pure**/**Hybrid** modes live in the companion
//! `omp4rs-pyfront` crate, which rewrites `@omp`-decorated minipy functions
//! into calls targeting this runtime — the paper's parser.
//!
//! # Examples
//!
//! Numerical π integration, the paper's Fig. 1, in compiled mode:
//!
//! ```
//! use omp4rs::exec::{parallel, ForSpec};
//!
//! let n = 10_000i64;
//! let w = 1.0 / n as f64;
//! let result = std::sync::Mutex::new(0.0f64);
//! parallel("num_threads(4)", |ctx| {
//!     let local = ctx.for_reduce(
//!         ForSpec::new(),
//!         0..n,
//!         0.0f64,
//!         |i, acc| {
//!             let x = (i as f64 + 0.5) * w;
//!             *acc += 4.0 / (1.0 + x * x);
//!         },
//!         |a, b| a + b,
//!     );
//!     ctx.master(|| *result.lock().unwrap() = local * w);
//! });
//! let pi = result.into_inner().unwrap();
//! assert!((pi - std::f64::consts::PI).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod api;
pub mod context;
pub mod depgraph;
pub mod directive;
pub mod error;
pub mod exec;
pub mod faults;
pub mod icv;
pub mod locks;
pub mod ompt;
pub mod pool;
pub mod reduction;
pub mod schedule;
pub mod sync;
pub mod tasks;
pub mod team;
pub mod worksharing;

pub use api::*;
pub use depgraph::{Dep, DepKind};
pub use directive::{CancelConstruct, Clause, Directive, DirectiveKind, ReductionOp, ScheduleKind};
pub use error::OmpError;
pub use exec::{
    parallel, parallel_region, parallel_region_result, DepSpec, ForSpec, ParallelConfig, TaskCtx,
    WorkerCtx,
};
pub use faults::{FaultPlan, FaultSite, InjectedFault};
pub use icv::{Icvs, MinipyQuicken, MinipyVm};
pub use sync::{Backend, WaitPolicy};
pub use team::Team;
