//! Deterministic fault injection for runtime robustness tests.
//!
//! The runtime calls [`on_event`] at five well-defined sites: every barrier
//! arrival, every task-body execution, every loop-chunk claim, every
//! pooled-worker region dispatch, and every dependence-graph release. A test
//! arms a seeded [`FaultPlan`] describing *which* occurrence of *which* site
//! should panic (or stall); the hook then fires deterministically — the same
//! plan always kills the same event, independent of thread interleaving,
//! because occurrences are counted with a global per-site counter.
//!
//! The module is always compiled in but **inert unless armed**: the
//! disarmed-path cost is a single relaxed atomic load per event. Plans are
//! armed through [`arm`], which also serializes tests (the returned guard
//! holds a global lock and disarms on drop, so concurrently running tests
//! cannot see each other's faults).
//!
//! Injected panics carry an [`InjectedFault`] payload so tests can assert
//! that the panic that surfaced is the one they planted.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};

/// A runtime site where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A thread arriving at any team barrier (implicit or explicit).
    BarrierArrival,
    /// A task body about to execute (deferred or undeferred).
    TaskExecute,
    /// A thread claiming the next chunk of a work-shared loop.
    ChunkClaim,
    /// A pooled worker beginning a dispatched region job (fires on the
    /// worker thread, before it binds to the region's team — exercising the
    /// pool's recycle-after-panic path).
    WorkerDispatch,
    /// A dependence-held task being released to the ready deques after its
    /// last predecessor retired ([`crate::depgraph`]). A panic here is
    /// absorbed by the releaser: the successor is discarded (not stranded)
    /// and its own successors cascade through the same release path.
    DepRelease,
}

impl FaultSite {
    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            FaultSite::BarrierArrival => 0,
            FaultSite::TaskExecute => 1,
            FaultSite::ChunkClaim => 2,
            FaultSite::WorkerDispatch => 3,
            FaultSite::DepRelease => 4,
        }
    }

    /// Human-readable site name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BarrierArrival => "barrier-arrival",
            FaultSite::TaskExecute => "task-execute",
            FaultSite::ChunkClaim => "chunk-claim",
            FaultSite::WorkerDispatch => "worker-dispatch",
            FaultSite::DepRelease => "dep-release",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The panic payload of an injected fault.
///
/// Distinct from any user panic so tests can downcast and verify provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: FaultSite,
    /// Which occurrence of the site fired (1-based).
    pub occurrence: u64,
    /// The seed of the plan that planted it.
    pub seed: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected fault: panic at {} occurrence #{} (plan seed {})",
            self.site, self.occurrence, self.seed
        )
    }
}

/// A seeded schedule of faults to inject.
///
/// Occurrences are 1-based and counted globally per site (not per thread),
/// which is what makes the injection deterministic: "the 3rd barrier
/// arrival" is a well-defined event no matter which thread performs it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    panics: Vec<(FaultSite, u64)>,
    delays: Vec<(FaultSite, u64, Duration)>,
}

impl FaultPlan {
    /// Create an empty plan with a seed (recorded in injected payloads and
    /// used to derive per-event jitter for [`FaultPlan::delay_at`]).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panics: Vec::new(),
            delays: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Panic at the `occurrence`-th (1-based) event of `site`.
    pub fn panic_at(mut self, site: FaultSite, occurrence: u64) -> FaultPlan {
        self.panics.push((site, occurrence.max(1)));
        self
    }

    /// Stall the `occurrence`-th (1-based) event of `site` for roughly
    /// `base` (the exact duration is jittered from the seed, up to 2× base).
    pub fn delay_at(mut self, site: FaultSite, occurrence: u64, base: Duration) -> FaultPlan {
        self.delays.push((site, occurrence.max(1), base));
        self
    }

    /// Parse the `OMP4RS_FAULTS` grammar: a comma-separated list of
    /// `seed:<n>`, `panic:<site>@<occurrence>`, and
    /// `delay:<site>@<occurrence>:<millis>` items, where `<site>` is
    /// `barrier-arrival`, `task-execute`, `chunk-claim`, `worker-dispatch`,
    /// or `dep-release` (short forms `barrier`, `task`, `chunk`, `dispatch`,
    /// `dep` also accepted).
    ///
    /// Returns `None` for malformed text or a plan that injects nothing —
    /// matching the env-var convention of [`crate::ompt::ToolConfig::parse`].
    ///
    /// # Examples
    ///
    /// ```
    /// use omp4rs::faults::FaultPlan;
    /// let plan = FaultPlan::parse("seed:7,panic:barrier@3,delay:chunk@2:50").unwrap();
    /// assert_eq!(plan.seed(), 7);
    /// assert!(FaultPlan::parse("panic:bogus@1").is_none());
    /// ```
    pub fn parse(text: &str) -> Option<FaultPlan> {
        fn site(name: &str) -> Option<FaultSite> {
            match name {
                "barrier-arrival" | "barrier" => Some(FaultSite::BarrierArrival),
                "task-execute" | "task" => Some(FaultSite::TaskExecute),
                "chunk-claim" | "chunk" => Some(FaultSite::ChunkClaim),
                "worker-dispatch" | "dispatch" => Some(FaultSite::WorkerDispatch),
                "dep-release" | "dep" => Some(FaultSite::DepRelease),
                _ => None,
            }
        }
        fn site_at(spec: &str) -> Option<(FaultSite, u64)> {
            let (name, occ) = spec.split_once('@')?;
            Some((site(name.trim())?, occ.trim().parse().ok()?))
        }
        let mut plan = FaultPlan::new(0);
        for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(rest) = item.strip_prefix("seed:") {
                plan.seed = rest.trim().parse().ok()?;
            } else if let Some(rest) = item.strip_prefix("panic:") {
                let (s, occ) = site_at(rest)?;
                plan = plan.panic_at(s, occ);
            } else if let Some(rest) = item.strip_prefix("delay:") {
                let (spec, ms) = rest.rsplit_once(':')?;
                let (s, occ) = site_at(spec)?;
                plan = plan.delay_at(s, occ, Duration::from_millis(ms.trim().parse().ok()?));
            } else {
                return None;
            }
        }
        if plan.panics.is_empty() && plan.delays.is_empty() {
            None
        } else {
            Some(plan)
        }
    }
}

/// Arm the plan described by the `OMP4RS_FAULTS` environment variable, if
/// set and well-formed. The caller must hold the returned guard for the
/// faults to stay armed (binaries keep it alive in `main`); see
/// docs/ENVIRONMENT.md for the grammar.
pub fn arm_from_env() -> Option<PlanGuard> {
    let text = std::env::var("OMP4RS_FAULTS").ok()?;
    FaultPlan::parse(&text).map(arm)
}

/// Fast inert check: a single relaxed load on the disarmed path.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Global per-site occurrence counters (reset on every arm).
static COUNTERS: [AtomicU64; FaultSite::COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// The armed plan.
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Serializes tests that arm plans (held by [`PlanGuard`]).
static TEST_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    /// Whether the calling thread already holds a [`PlanGuard`]. A second
    /// same-thread `arm` would self-deadlock on the (non-reentrant)
    /// `TEST_LOCK`; this flag converts that silent hang into a clear panic.
    static ARMED_HERE: Cell<bool> = const { Cell::new(false) };

    /// Per-thread interrupt predicate polled by injected delays: when it
    /// returns `true` (e.g. the worker's region was cancelled or poisoned),
    /// the remainder of the delay is abandoned so a "stalled" worker can
    /// observe a deadline trip and exit instead of pinning the region open.
    static DELAY_INTERRUPT: RefCell<Option<Box<dyn Fn() -> bool>>> = const { RefCell::new(None) };
}

/// Injected delays sleep in slices of at most this, polling the interrupt
/// predicate between slices.
const DELAY_SLICE: Duration = Duration::from_millis(5);

/// RAII installer for the per-thread delay interrupt; restores the previous
/// predicate (usually `None`) on drop.
pub(crate) struct InterruptGuard {
    prev: Option<Box<dyn Fn() -> bool>>,
}

impl Drop for InterruptGuard {
    fn drop(&mut self) {
        DELAY_INTERRUPT.with(|cell| *cell.borrow_mut() = self.prev.take());
    }
}

/// Install a delay-interrupt predicate for the calling thread (see
/// [`DELAY_INTERRUPT`]). Used by the pooled-region worker loop so injected
/// stalls become recoverable once the region is poisoned.
pub(crate) fn set_delay_interrupt(pred: Box<dyn Fn() -> bool>) -> InterruptGuard {
    let prev = DELAY_INTERRUPT.with(|cell| cell.borrow_mut().replace(pred));
    InterruptGuard { prev }
}

/// Whether the calling thread's installed interrupt predicate (if any) says
/// to abandon an in-progress injected delay.
fn delay_interrupted() -> bool {
    DELAY_INTERRUPT.with(|cell| cell.borrow().as_ref().is_some_and(|pred| pred()))
}

/// Guard returned by [`arm`]: disarms the plan when dropped and holds the
/// global test lock so fault tests never observe each other's plans.
pub struct PlanGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *PLAN.lock() = None;
        ARMED_HERE.with(|here| here.set(false));
    }
}

impl fmt::Debug for PlanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanGuard").finish()
    }
}

/// Arm a fault plan. Resets all occurrence counters. The plan stays armed
/// until the returned guard is dropped.
///
/// # Panics
///
/// Panics if the calling thread already holds a live [`PlanGuard`]: the
/// guard's global lock is not reentrant, so a second same-thread `arm` would
/// otherwise deadlock silently. Arms from *different* threads serialize on
/// the lock as before.
pub fn arm(plan: FaultPlan) -> PlanGuard {
    ARMED_HERE.with(|here| {
        assert!(
            !here.get(),
            "faults::arm: this thread already holds a PlanGuard — drop it before \
             arming another plan (a second arm would deadlock on the test lock)"
        );
        here.set(true);
    });
    let lock = TEST_LOCK.lock();
    for c in &COUNTERS {
        c.store(0, Ordering::SeqCst);
    }
    *PLAN.lock() = Some(plan);
    ARMED.store(true, Ordering::SeqCst);
    PlanGuard { _lock: lock }
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// splitmix64, used to jitter injected delays deterministically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runtime hook: report that an event of `site` is occurring.
///
/// Called by `Team::barrier`, task execution, and `ForBounds::next`. When a
/// plan is armed and this is a scheduled occurrence, either sleeps (delay
/// faults) or panics with an [`InjectedFault`] payload (panic faults).
#[inline]
pub fn on_event(site: FaultSite) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    on_event_armed(site);
}

#[cold]
fn on_event_armed(site: FaultSite) {
    let n = COUNTERS[site.index()].fetch_add(1, Ordering::SeqCst) + 1;
    let (panic_hit, delay_hit, seed) = {
        let plan = PLAN.lock();
        match plan.as_ref() {
            Some(p) => (
                p.panics.iter().any(|&(s, occ)| s == site && occ == n),
                p.delays
                    .iter()
                    .find(|&&(s, occ, _)| s == site && occ == n)
                    .map(|&(_, _, d)| d),
                p.seed,
            ),
            None => return,
        }
    };
    if let Some(base) = delay_hit {
        // Jitter in [1.0, 2.0)× base, derived from (seed, site, occurrence).
        let r = splitmix64(seed ^ (site.index() as u64) << 32 ^ n);
        let factor = 1.0 + (r >> 11) as f64 / (1u64 << 53) as f64;
        // Sleep in short slices, polling the thread's interrupt predicate:
        // a delay meant to simulate a stall must still yield once the
        // region it is stalling has been poisoned/cancelled, or the stall
        // would pin the region open past every deadline.
        let until = std::time::Instant::now() + base.mul_f64(factor);
        loop {
            let now = std::time::Instant::now();
            if now >= until || delay_interrupted() {
                break;
            }
            std::thread::sleep(DELAY_SLICE.min(until - now));
        }
    }
    if panic_hit {
        std::panic::panic_any(InjectedFault {
            site,
            occurrence: n,
            seed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hook_is_inert() {
        assert!(!is_armed());
        for _ in 0..1000 {
            on_event(FaultSite::BarrierArrival);
        }
    }

    #[test]
    fn armed_plan_panics_at_exact_occurrence() {
        let _guard = arm(FaultPlan::new(7).panic_at(FaultSite::TaskExecute, 3));
        on_event(FaultSite::TaskExecute);
        on_event(FaultSite::TaskExecute);
        on_event(FaultSite::BarrierArrival); // other sites don't advance it
        let err = std::panic::catch_unwind(|| on_event(FaultSite::TaskExecute))
            .expect_err("third task-execute event must panic");
        let fault = err
            .downcast_ref::<InjectedFault>()
            .expect("InjectedFault payload");
        assert_eq!(fault.site, FaultSite::TaskExecute);
        assert_eq!(fault.occurrence, 3);
        assert_eq!(fault.seed, 7);
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _guard = arm(FaultPlan::new(1).panic_at(FaultSite::ChunkClaim, 1));
            assert!(is_armed());
        }
        assert!(!is_armed());
        on_event(FaultSite::ChunkClaim); // must not panic
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan = FaultPlan::parse("seed:42, panic:task-execute@2, delay:barrier@1:10").unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.panics, vec![(FaultSite::TaskExecute, 2)]);
        assert_eq!(
            plan.delays,
            vec![(FaultSite::BarrierArrival, 1, Duration::from_millis(10))]
        );
        // Malformed or inert specs are rejected.
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("seed:42").is_none());
        assert!(FaultPlan::parse("panic:nope@1").is_none());
        assert!(FaultPlan::parse("delay:barrier@1").is_none());
    }

    #[test]
    fn same_thread_double_arm_panics_clearly() {
        let _guard = arm(FaultPlan::new(1).panic_at(FaultSite::ChunkClaim, 99));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _second = arm(FaultPlan::new(2).panic_at(FaultSite::ChunkClaim, 99));
        }))
        .expect_err("second same-thread arm must panic, not deadlock");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("PlanGuard"), "unhelpful message: {msg}");
        // The failed arm must not have disturbed the live plan.
        assert!(is_armed());
    }

    #[test]
    fn rearm_after_drop_is_fine() {
        {
            let _guard = arm(FaultPlan::new(1).panic_at(FaultSite::ChunkClaim, 99));
        }
        let _guard = arm(FaultPlan::new(2).panic_at(FaultSite::ChunkClaim, 99));
        assert!(is_armed());
    }

    #[test]
    fn delay_abandons_when_interrupted() {
        let _guard =
            arm(FaultPlan::new(9).delay_at(FaultSite::BarrierArrival, 1, Duration::from_secs(120)));
        // Predicate fires immediately: the two-minute stall collapses to at
        // most a couple of slices.
        let _interrupt = set_delay_interrupt(Box::new(|| true));
        let start = std::time::Instant::now();
        on_event(FaultSite::BarrierArrival);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "interrupted delay still slept {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn delay_fault_stalls_the_event() {
        let _guard = arm(FaultPlan::new(42).delay_at(
            FaultSite::BarrierArrival,
            1,
            Duration::from_millis(10),
        ));
        let start = std::time::Instant::now();
        on_event(FaultSite::BarrierArrival);
        assert!(start.elapsed() >= Duration::from_millis(10));
        let start = std::time::Instant::now();
        on_event(FaultSite::BarrierArrival); // occurrence 2: no delay
        assert!(start.elapsed() < Duration::from_millis(10));
    }
}
