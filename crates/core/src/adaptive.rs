//! Feedback-driven resolution of `schedule(auto)`.
//!
//! The paper attributes most of the Python-side scaling loss to per-chunk
//! runtime overhead and end-of-loop imbalance — both functions of *chunk
//! sizing*, which OpenMP leaves to the implementation for `schedule(auto)`.
//! This module stops aliasing `auto` to `static` and instead picks a policy
//! from measured history:
//!
//! * Every adaptive loop is keyed by a stable **loop identity** (a call-site
//!   hash in compiled mode, a transform-assigned site id in interpreted
//!   mode). A global registry keeps one `LoopHistory` record per key —
//!   nothing else: all per-instance state lives on the instance itself.
//! * Each dynamic occurrence of a loop carries an [`AdaptiveSlot`] on its
//!   work-share instance ([`crate::worksharing::WsInstance`]), which exactly
//!   the threads of one team share. The first thread to resolve installs an
//!   [`InstanceTracker`] holding the decision; every teammate reads the same
//!   immutable answer. Concurrent teams at the same loop key — nested
//!   parallelism, parallel regions launched from different host threads —
//!   each get their own tracker, so they can never consume each other's
//!   decisions or see a mid-instance policy change.
//! * While an adaptive loop runs, its [`crate::schedule::ForBounds`] driver
//!   times every chunk (independently of the profiler) and reports a
//!   per-thread `(time, chunks, iterations)` triple when the thread's share
//!   is exhausted. The reports collect on the tracker; once every team
//!   thread has reported, the window is folded into the global history. A
//!   team that dies mid-instance (cancellation, panic) simply drops its
//!   tracker — a partial window can never leak into another team's fold.
//! * On later instances the policy **re-chunks**: measured imbalance above
//!   [`IMBALANCE_THRESHOLD`] escalates `static → guided → dynamic`, and a
//!   mean chunk duration below [`CHUNK_OVERHEAD_FLOOR_NS`] doubles the chunk
//!   so claim overhead amortizes.
//!
//! How much of the schedule space adaptation may take over is the
//! [`AdaptiveMode`] ICV (`OMP4RS_ADAPTIVE`; see `docs/ENVIRONMENT.md`):
//! explicit non-`auto` schedule clauses are *never* touched, and clause-less
//! loops keep the spec's deterministic static default except for interpreted
//! loops under the (default) [`AdaptiveMode::Full`].

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::directive::ScheduleKind;
use crate::icv::Icvs;
use crate::ompt;
use crate::schedule::ResolvedSchedule;

/// How much scheduling the adaptive resolver may take over
/// (the `OMP4RS_ADAPTIVE` ICV).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdaptiveMode {
    /// No adaptation: `auto` keeps its legacy alias, `static`.
    Off,
    /// Only loops that explicitly ask for `auto` — a `schedule(auto)` clause
    /// or `OMP_SCHEDULE=auto` through a `runtime` clause — adapt. Loops with
    /// no schedule clause keep the spec's deterministic `def-sched-var`
    /// default (static blocks), including in interpreted mode.
    AutoOnly,
    /// Explicit `auto` adapts, and clause-less **interpreted** (Pure/Hybrid)
    /// loops are additionally treated as `auto`. This is the default; it
    /// trades the deterministic static iteration→thread mapping of the
    /// spec default for throughput. See `docs/ENVIRONMENT.md`.
    #[default]
    Full,
}

impl AdaptiveMode {
    /// Parse the `OMP4RS_ADAPTIVE` spellings: the usual booleans plus
    /// `auto` / `auto-only` for [`AdaptiveMode::AutoOnly`]. `None` for
    /// unrecognized text (the caller keeps the default).
    pub fn parse(text: &str) -> Option<AdaptiveMode> {
        match text.trim().to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" | "on" | "full" => Some(AdaptiveMode::Full),
            "false" | "0" | "no" | "off" => Some(AdaptiveMode::Off),
            "auto" | "auto-only" | "explicit" => Some(AdaptiveMode::AutoOnly),
            _ => None,
        }
    }
}

/// Per-thread measurements of one adaptive loop instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadReport {
    /// Total nanoseconds this thread spent executing chunk bodies.
    pub ns: u64,
    /// Number of chunks the thread claimed.
    pub chunks: u64,
    /// Number of iterations the thread executed.
    pub iters: u64,
}

/// Escalate the schedule when measured imbalance (max over mean per-thread
/// chunk time) exceeds this.
pub const IMBALANCE_THRESHOLD: f64 = 1.5;

/// Grow the chunk when the mean chunk duration is below this (claim overhead
/// is no longer amortized).
pub const CHUNK_OVERHEAD_FLOOR_NS: u64 = 50_000;

/// What one loop learned so far (cross-instance state only; the in-flight
/// decision and measurement window of each team live on its
/// [`InstanceTracker`]).
#[derive(Debug, Clone, Default)]
struct LoopHistory {
    /// Instances decided so far (across all teams).
    instances: u64,
    /// Whether this loop crosses the interpreter boundary per chunk claim
    /// (Pure/Hybrid). Interpreted loops re-chunk by measured per-iteration
    /// duration instead of blind doubling.
    interpreted: bool,
    /// Policy the next instance will use.
    kind: ScheduleKind,
    /// Chunk parameter for the next instance (minimum chunk for guided).
    chunk: u64,
    /// Imbalance of the last folded window.
    last_imbalance: f64,
    /// Mean chunk duration of the last folded window, ns.
    last_mean_chunk_ns: u64,
    /// Mean per-iteration duration of the last folded window, ns.
    last_per_iter_ns: u64,
    /// Times the policy was changed by feedback.
    rechunks: u64,
}

/// Cap on how much one fold may grow the chunk when duration feedback asks
/// for a jump (a single noisy window must not overshoot to a near-serial
/// chunk that the next window cannot correct quickly).
const MAX_CHUNK_GROWTH_PER_FOLD: u64 = 8;

impl LoopHistory {
    fn fold_window(&mut self, reports: &[ThreadReport]) {
        let active: Vec<ThreadReport> = reports.iter().filter(|r| r.chunks > 0).copied().collect();
        if active.is_empty() {
            return;
        }
        let max_ns = active.iter().map(|r| r.ns).max().unwrap_or(0);
        let sum_ns: u64 = active.iter().map(|r| r.ns).sum();
        let mean_ns = sum_ns as f64 / active.len() as f64;
        self.last_imbalance = if mean_ns > 0.0 {
            max_ns as f64 / mean_ns
        } else {
            0.0
        };
        let chunks: u64 = active.iter().map(|r| r.chunks).sum();
        let iters: u64 = active.iter().map(|r| r.iters).sum();
        self.last_mean_chunk_ns = sum_ns.checked_div(chunks).unwrap_or(0);
        self.last_per_iter_ns = sum_ns.checked_div(iters).unwrap_or(0);
        let mean_iters_per_chunk = iters.checked_div(chunks).unwrap_or(1).max(1);

        // Re-chunk: imbalance first (policy escalation), then per-chunk
        // overhead (chunk growth).
        if self.last_imbalance > IMBALANCE_THRESHOLD {
            let escalated = match self.kind {
                ScheduleKind::Static => Some(ScheduleKind::Guided),
                ScheduleKind::Guided => Some(ScheduleKind::Dynamic),
                _ => None,
            };
            if let Some(kind) = escalated {
                self.kind = kind;
                if kind == ScheduleKind::Dynamic {
                    // Dynamic claims every chunk from the shared counter:
                    // start from the measured mean chunk so claim traffic
                    // does not explode.
                    self.chunk = self.chunk.max(mean_iters_per_chunk / 2).max(1);
                }
                self.rechunks += 1;
                return;
            }
        }
        if self.last_mean_chunk_ns < CHUNK_OVERHEAD_FLOOR_NS && chunks > active.len() as u64 {
            // Chunks finish faster than the claim overhead amortizes.
            let cur = self.chunk.max(1);
            let grown = if self.interpreted && self.last_per_iter_ns > 0 {
                // Interpreted claims are the expensive ones (a runtime
                // round-trip through the interpreter per chunk): jump
                // straight to the chunk the measured per-iteration duration
                // says amortizes the floor, instead of doubling toward it
                // over several windows. One fold may overshoot on a noisy
                // window, so growth is capped per fold.
                let target = (CHUNK_OVERHEAD_FLOOR_NS / self.last_per_iter_ns).max(1);
                // At least double (monotone escape from sub-floor chunks
                // even when the target estimate is off), at most 8x.
                target.clamp(
                    cur.saturating_mul(2),
                    cur.saturating_mul(MAX_CHUNK_GROWTH_PER_FOLD),
                )
            } else {
                cur.saturating_mul(2)
            };
            self.chunk = grown;
            self.rechunks += 1;
        }
    }
}

/// One team's tracker for one adaptive loop instance.
///
/// Installed on the instance's [`AdaptiveSlot`] by the first team thread to
/// resolve; the decision is immutable for the instance's whole lifetime,
/// and the measurement window collects here — never in the global registry —
/// so concurrent teams at the same loop key cannot mix windows or observe
/// each other's mid-instance re-chunks.
#[derive(Debug)]
pub struct InstanceTracker {
    key: u64,
    decision: ResolvedSchedule,
    /// Reports expected before the window folds (the team size at decision
    /// time; every thread of the instance shares it by construction).
    expected: usize,
    window: Mutex<Vec<ThreadReport>>,
}

impl InstanceTracker {
    /// The schedule every thread of this instance drives.
    pub fn decision(&self) -> ResolvedSchedule {
        self.decision
    }

    /// File one thread's measurements. Folds the window into the loop's
    /// global history — possibly re-chunking the policy for *future*
    /// instances — once every team thread has reported.
    pub fn report(&self, report: ThreadReport) {
        let reports = {
            let mut window = self.window.lock();
            window.push(report);
            if window.len() < self.expected.max(1) {
                return;
            }
            std::mem::take(&mut *window)
        };
        let mut reg = registry().lock();
        if let Some(hist) = reg.get_mut(&self.key) {
            hist.fold_window(&reports);
            if ompt::enabled() {
                publish_counters(&reg);
            }
        }
    }
}

/// What the first-arriving thread of an instance decided.
#[derive(Debug)]
enum SlotState {
    /// Adaptive: schedule from history, measurements tracked.
    Tracked(Arc<InstanceTracker>),
    /// Non-adaptive spec resolution (explicit schedule, adaptation off, or
    /// a clause shape the mode does not cover).
    Fixed(ResolvedSchedule),
}

/// Per-instance schedule-decision slot.
///
/// Lives on [`crate::worksharing::WsInstance`] — created fresh for each
/// dynamic occurrence of a work-sharing region and shared by exactly the
/// threads of one team. Whatever the first thread resolves is what every
/// teammate gets, so one instance can never mix schedules (e.g. some
/// threads static-block while others claim from the dynamic counter), no
/// matter what other teams fold into the same loop's history meanwhile.
#[derive(Debug, Default)]
pub struct AdaptiveSlot(OnceLock<SlotState>);

impl AdaptiveSlot {
    /// An empty slot (decision not yet made).
    pub fn new() -> AdaptiveSlot {
        AdaptiveSlot(OnceLock::new())
    }
}

fn registry() -> &'static Mutex<HashMap<u64, LoopHistory>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, LoopHistory>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether adaptive resolution is enabled at all (`OMP4RS_ADAPTIVE` not off).
pub fn enabled() -> bool {
    Icvs::current().adaptive != AdaptiveMode::Off
}

/// Default minimum chunk for an interpreted loop: large enough that the
/// per-chunk interpreter round-trip amortizes, small enough that the team
/// still load-balances (about `8 × nthreads` chunks over the whole space).
pub fn interpreted_min_chunk(total: u64, nthreads: usize) -> u64 {
    (total / (8 * nthreads.max(1) as u64)).max(1)
}

/// Resolve a schedule for one loop instance, adaptively when the mode and
/// clause allow it.
///
/// `clause` follows [`ResolvedSchedule::resolve`]; `key` is the stable loop
/// identity; `total`/`nthreads` describe this instance; `interpreted` marks
/// Pure/Hybrid loops (whose chunk claims cross the interpreter boundary);
/// `slot` is the instance's decision slot — all threads of one team instance
/// must pass the same slot (its work-share instance provides one).
///
/// The first thread through the slot decides; everyone else — including
/// threads arriving after another team folded new feedback into the same
/// loop's history — reads the identical cached answer. Returns the schedule
/// plus `Some(tracker)` when the instance is adaptively *tracked* (its
/// driver must file one [`InstanceTracker::report`] per thread). Loops with
/// an explicit non-`auto` schedule — and everything when `OMP4RS_ADAPTIVE`
/// is off — resolve per the spec, untracked.
pub fn resolve(
    clause: Option<(ScheduleKind, Option<u64>)>,
    key: u64,
    total: u64,
    nthreads: usize,
    interpreted: bool,
    slot: &AdaptiveSlot,
) -> (ResolvedSchedule, Option<Arc<InstanceTracker>>) {
    let state = slot
        .0
        .get_or_init(|| decide(clause, key, total, nthreads, interpreted));
    match state {
        SlotState::Tracked(tracker) => (tracker.decision, Some(Arc::clone(tracker))),
        SlotState::Fixed(sched) => (*sched, None),
    }
}

/// The first-arriving thread's decision for one instance.
fn decide(
    clause: Option<(ScheduleKind, Option<u64>)>,
    key: u64,
    total: u64,
    nthreads: usize,
    interpreted: bool,
) -> SlotState {
    let icvs = Icvs::current();
    if icvs.adaptive == AdaptiveMode::Off {
        return SlotState::Fixed(ResolvedSchedule::resolve(clause));
    }
    // Resolve `runtime` indirection first so `OMP_SCHEDULE=auto` is adaptive.
    let effective = match clause {
        Some((ScheduleKind::Runtime, _)) => Some(icvs.run_schedule),
        other => other,
    };
    let adaptive = match effective {
        Some((ScheduleKind::Auto, _)) => true,
        // No clause: `def-sched-var`. Under `Full`, interpreted loops treat
        // the default static-no-chunk as `auto` — the static tail of tiny
        // interpreted chunks is exactly what this module exists to remove.
        // This deliberately gives up the spec's deterministic static
        // iteration→thread mapping for clause-less interpreted loops;
        // `OMP4RS_ADAPTIVE=auto` restores it (see docs/ENVIRONMENT.md).
        None => {
            icvs.adaptive == AdaptiveMode::Full
                && interpreted
                && icvs.def_schedule == (ScheduleKind::Static, None)
        }
        _ => false,
    };
    if !adaptive {
        return SlotState::Fixed(ResolvedSchedule::resolve(clause));
    }

    let mut reg = registry().lock();
    let hist = reg.entry(key).or_insert_with(|| {
        let (kind, chunk) = if interpreted {
            (ScheduleKind::Guided, interpreted_min_chunk(total, nthreads))
        } else {
            (ScheduleKind::Static, 1)
        };
        LoopHistory {
            interpreted,
            kind,
            chunk,
            ..LoopHistory::default()
        }
    });
    hist.instances += 1;
    let decision = ResolvedSchedule {
        kind: hist.kind,
        chunk: hist.chunk.max(1),
        // Static stays block-scheduled (one contiguous chunk per thread)
        // until feedback escalates it; guided/dynamic use `chunk` as their
        // (minimum) chunk parameter.
        explicit_chunk: hist.kind != ScheduleKind::Static,
    };
    SlotState::Tracked(Arc::new(InstanceTracker {
        key,
        decision,
        expected: nthreads.max(1),
        window: Mutex::new(Vec::with_capacity(nthreads.max(1))),
    }))
}

/// Feedback snapshot for one adaptive loop (introspection and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSnapshot {
    /// Instances resolved so far.
    pub instances: u64,
    /// Schedule kind the next instance will use.
    pub kind: ScheduleKind,
    /// Chunk parameter the next instance will use.
    pub chunk: u64,
    /// Imbalance of the last folded measurement window.
    pub last_imbalance: f64,
    /// Mean chunk duration of the last folded window, ns.
    pub last_mean_chunk_ns: u64,
    /// Mean per-iteration duration of the last folded window, ns (0 until a
    /// window folds). Drives interpreted min-chunk targeting.
    pub last_per_iter_ns: u64,
    /// Times feedback changed the policy.
    pub rechunks: u64,
}

/// Introspect one loop's history, if it exists.
pub fn snapshot(key: u64) -> Option<LoopSnapshot> {
    registry().lock().get(&key).map(|h| LoopSnapshot {
        instances: h.instances,
        kind: h.kind,
        chunk: h.chunk,
        last_imbalance: h.last_imbalance,
        last_mean_chunk_ns: h.last_mean_chunk_ns,
        last_per_iter_ns: h.last_per_iter_ns,
        rechunks: h.rechunks,
    })
}

/// Drop one loop's history (tests; a fresh key is usually simpler).
pub fn forget(key: u64) {
    registry().lock().remove(&key);
}

/// Publish aggregate adaptive counters to the profiler's counter registry
/// (`omp4rs.adaptive.loops` / `.rechunks`), so `--profile` output shows the
/// feedback loop working.
fn publish_counters(reg: &HashMap<u64, LoopHistory>) {
    let loops = reg.len() as u64;
    let rechunks: u64 = reg.values().map(|h| h.rechunks).sum();
    ompt::set_counter("omp4rs.adaptive.loops", loops);
    ompt::set_counter("omp4rs.adaptive.rechunks", rechunks);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique keys per test so histories never collide across tests.
    fn key() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0xada0_0001);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    /// One fresh instance (its own slot): the schedule plus its tracker.
    fn instance(
        clause: Option<(ScheduleKind, Option<u64>)>,
        k: u64,
        total: u64,
        nthreads: usize,
        interpreted: bool,
    ) -> (ResolvedSchedule, Option<Arc<InstanceTracker>>) {
        resolve(
            clause,
            k,
            total,
            nthreads,
            interpreted,
            &AdaptiveSlot::new(),
        )
    }

    const AUTO: Option<(ScheduleKind, Option<u64>)> = Some((ScheduleKind::Auto, None));

    #[test]
    fn adaptive_mode_spellings() {
        assert_eq!(AdaptiveMode::parse("on"), Some(AdaptiveMode::Full));
        assert_eq!(AdaptiveMode::parse(" FULL "), Some(AdaptiveMode::Full));
        assert_eq!(AdaptiveMode::parse("0"), Some(AdaptiveMode::Off));
        assert_eq!(AdaptiveMode::parse("auto"), Some(AdaptiveMode::AutoOnly));
        assert_eq!(
            AdaptiveMode::parse("auto-only"),
            Some(AdaptiveMode::AutoOnly)
        );
        assert_eq!(AdaptiveMode::parse("whatever"), None);
        assert_eq!(AdaptiveMode::default(), AdaptiveMode::Full);
    }

    #[test]
    fn first_instance_defaults_by_mode() {
        // Interpreted: guided with an overhead-derived minimum chunk.
        let k = key();
        let (sched, tracked) = instance(AUTO, k, 8_000, 4, true);
        assert_eq!(sched.kind, ScheduleKind::Guided);
        assert_eq!(sched.chunk, interpreted_min_chunk(8_000, 4));
        assert!(tracked.is_some());
        // Compiled: static blocks.
        let k2 = key();
        let (sched, tracked) = instance(AUTO, k2, 8_000, 4, false);
        assert_eq!(sched.kind, ScheduleKind::Static);
        assert!(!sched.explicit_chunk);
        assert_eq!(tracked.unwrap().decision(), sched);
    }

    #[test]
    fn explicit_schedules_bypass_adaptation() {
        let k = key();
        let (sched, tracked) = instance(Some((ScheduleKind::Dynamic, Some(8))), k, 1_000, 4, true);
        assert_eq!(sched.kind, ScheduleKind::Dynamic);
        assert_eq!(sched.chunk, 8);
        assert!(tracked.is_none());
        assert!(snapshot(k).is_none(), "no history for explicit schedules");
    }

    #[test]
    fn no_clause_adapts_only_in_full_mode() {
        let _guard = crate::icv::test_guard();
        let before = Icvs::current();
        Icvs::update(|i| i.adaptive = AdaptiveMode::AutoOnly);
        // Clause-less interpreted loop: keeps the deterministic spec default.
        let k = key();
        let (sched, tracked) = instance(None, k, 1_000, 4, true);
        assert_eq!(sched.kind, ScheduleKind::Static);
        assert!(tracked.is_none());
        assert!(snapshot(k).is_none(), "no history without explicit auto");
        // Explicit auto still adapts in auto-only mode.
        let k2 = key();
        let (sched, tracked) = instance(AUTO, k2, 1_000, 4, true);
        assert_eq!(sched.kind, ScheduleKind::Guided);
        assert!(tracked.is_some());
        Icvs::reset(before);
        forget(k2);
    }

    /// Drive one full instance of `nthreads`, all filing the given report.
    fn run_instance(k: u64, nthreads: usize, reports: &[ThreadReport]) -> ResolvedSchedule {
        let slot = AdaptiveSlot::new();
        let (sched, tracker) = resolve(AUTO, k, 1_000, nthreads, false, &slot);
        let tracker = tracker.expect("auto is tracked");
        for r in reports {
            tracker.report(*r);
        }
        sched
    }

    #[test]
    fn imbalance_escalates_static_to_guided_to_dynamic() {
        let k = key();
        // One thread took 4x the mean: imbalance ~2.3 > threshold.
        let lopsided = [
            ThreadReport {
                ns: 40_000_000,
                chunks: 1,
                iters: 250,
            },
            ThreadReport {
                ns: 10_000_000,
                chunks: 1,
                iters: 250,
            },
            ThreadReport {
                ns: 10_000_000,
                chunks: 1,
                iters: 250,
            },
            ThreadReport {
                ns: 10_000_000,
                chunks: 1,
                iters: 250,
            },
        ];
        let s0 = run_instance(k, 4, &lopsided);
        assert_eq!(s0.kind, ScheduleKind::Static);
        let s1 = run_instance(k, 4, &lopsided);
        assert_eq!(s1.kind, ScheduleKind::Guided, "static escalates to guided");
        let s2 = run_instance(k, 4, &lopsided);
        assert_eq!(
            s2.kind,
            ScheduleKind::Dynamic,
            "guided escalates to dynamic"
        );
        assert!(s2.chunk >= 1);
        let snap = snapshot(k).unwrap();
        assert_eq!(snap.rechunks, 2);
        assert!(snap.last_imbalance > IMBALANCE_THRESHOLD);
        forget(k);
    }

    #[test]
    fn tiny_chunks_grow_the_chunk_parameter() {
        let k = key();
        let slot = AdaptiveSlot::new();
        let (s0, tracker) = resolve(AUTO, k, 100_000, 1, true, &slot);
        let initial_chunk = s0.chunk;
        // One thread, many sub-overhead chunks.
        tracker.unwrap().report(ThreadReport {
            ns: 80_000,
            chunks: 40,
            iters: 100_000,
        });
        let (s1, _) = instance(AUTO, k, 100_000, 1, true);
        assert_eq!(s1.chunk, initial_chunk * 2, "chunk doubles under overhead");
        assert_eq!(s1.kind, ScheduleKind::Guided);
        forget(k);
    }

    #[test]
    fn interpreted_chunks_jump_to_the_duration_derived_target() {
        // Initial chunk 20 (160 iterations / (8 * 1 thread)); measured
        // 500 ns/iter says 100 iterations amortize the 50 us floor — one
        // fold lands exactly there instead of doubling toward it.
        let k = key();
        let slot = AdaptiveSlot::new();
        let (s0, tracker) = resolve(AUTO, k, 160, 1, true, &slot);
        assert_eq!(s0.chunk, 20);
        tracker.unwrap().report(ThreadReport {
            ns: 80_000,
            chunks: 8,
            iters: 160,
        });
        let snap = snapshot(k).unwrap();
        assert_eq!(snap.last_per_iter_ns, 500);
        assert_eq!(
            snap.chunk,
            CHUNK_OVERHEAD_FLOOR_NS / 500,
            "chunk targets the measured per-iteration duration"
        );
        forget(k);
    }

    #[test]
    fn duration_jump_is_capped_per_fold() {
        // Chunk 1, 500 ns/iter: the duration target (100) exceeds the 8x
        // per-fold cap, so one noisy window cannot overshoot past 8.
        let k = key();
        let slot = AdaptiveSlot::new();
        let (s0, tracker) = resolve(AUTO, k, 8, 1, true, &slot);
        assert_eq!(s0.chunk, 1);
        tracker.unwrap().report(ThreadReport {
            ns: 4_000,
            chunks: 8,
            iters: 8,
        });
        assert_eq!(snapshot(k).unwrap().chunk, MAX_CHUNK_GROWTH_PER_FOLD);
        forget(k);
    }

    #[test]
    fn histories_are_keyed_per_loop() {
        let ka = key();
        let kb = key();
        run_instance(
            ka,
            1,
            &[ThreadReport {
                ns: 1_000,
                chunks: 10,
                iters: 1_000,
            }],
        );
        let _ = instance(AUTO, kb, 1_000, 1, false);
        let a = snapshot(ka).unwrap();
        let b = snapshot(kb).unwrap();
        assert_eq!(a.rechunks, 1, "loop A re-chunked from its own history");
        assert_eq!(b.rechunks, 0, "loop B's history is untouched by loop A");
        forget(ka);
        forget(kb);
    }

    #[test]
    fn same_instance_threads_share_one_decision() {
        let k = key();
        let slot = AdaptiveSlot::new();
        let (first, _) = resolve(AUTO, k, 500, 3, true, &slot);
        let (second, _) = resolve(AUTO, k, 500, 3, true, &slot);
        let (third, t3) = resolve(AUTO, k, 500, 3, true, &slot);
        assert_eq!(first, second);
        assert_eq!(second, third);
        assert_eq!(snapshot(k).unwrap().instances, 1, "one instance, not three");
        // Every thread reads the same tracker, not a fresh one.
        assert_eq!(t3.unwrap().decision(), first);
        forget(k);
    }

    #[test]
    fn concurrent_teams_never_mix_decisions_or_windows() {
        // The reviewed failure mode: teams A and B (nested parallelism, or
        // parallel regions on different host threads) hit the same loop key
        // concurrently. Each team's instance must keep one immutable
        // schedule even when the other team folds feedback mid-flight.
        let k = key();
        let slot_a = AdaptiveSlot::new();
        let slot_b = AdaptiveSlot::new();
        let (a0, tracker_a) = resolve(AUTO, k, 1_000, 2, false, &slot_a);
        let (b0, tracker_b) = resolve(AUTO, k, 1_000, 2, false, &slot_b);
        assert_eq!(a0.kind, ScheduleKind::Static);
        assert_eq!(b0.kind, ScheduleKind::Static);
        // Team A completes with heavy imbalance: history escalates to guided.
        let tracker_a = tracker_a.unwrap();
        tracker_a.report(ThreadReport {
            ns: 40_000_000,
            chunks: 1,
            iters: 500,
        });
        tracker_a.report(ThreadReport {
            ns: 1_000_000,
            chunks: 1,
            iters: 500,
        });
        assert_eq!(snapshot(k).unwrap().kind, ScheduleKind::Guided);
        // Team B's second thread resolves *after* the fold: it must still
        // get team B's original static decision, not the new policy.
        let (b1, _) = resolve(AUTO, k, 1_000, 2, false, &slot_b);
        assert_eq!(b1, b0, "mid-instance fold must not change B's schedule");
        // Team B's window folds independently of A's (its two reports).
        let tracker_b = tracker_b.unwrap();
        tracker_b.report(ThreadReport {
            ns: 1_000,
            chunks: 1,
            iters: 500,
        });
        tracker_b.report(ThreadReport {
            ns: 1_000,
            chunks: 1,
            iters: 500,
        });
        // A fresh instance sees history advanced by both teams' folds.
        let snap = snapshot(k).unwrap();
        assert_eq!(snap.instances, 2);
        forget(k);
    }

    #[test]
    fn abandoned_instance_cannot_poison_other_teams() {
        // A team that dies mid-instance (cancellation/panic) drops its
        // tracker with a partial window; the history and later instances
        // are unaffected.
        let k = key();
        {
            let slot = AdaptiveSlot::new();
            let (_, tracker) = resolve(AUTO, k, 1_000, 4, false, &slot);
            // Only one of four threads ever reports.
            tracker.unwrap().report(ThreadReport {
                ns: 99,
                chunks: 1,
                iters: 1,
            });
        }
        let (sched, tracker) = instance(AUTO, k, 1_000, 4, false);
        assert_eq!(sched.kind, ScheduleKind::Static, "no premature fold");
        let snap = snapshot(k).unwrap();
        assert_eq!(snap.instances, 2);
        assert_eq!(snap.rechunks, 0);
        // The fresh instance's window needs exactly its own team's reports.
        let tracker = tracker.unwrap();
        for _ in 0..4 {
            tracker.report(ThreadReport {
                ns: 1_000,
                chunks: 2,
                iters: 250,
            });
        }
        assert!(snapshot(k).unwrap().last_mean_chunk_ns > 0, "window folded");
        forget(k);
    }
}
