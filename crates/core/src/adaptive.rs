//! Feedback-driven resolution of `schedule(auto)`.
//!
//! The paper attributes most of the Python-side scaling loss to per-chunk
//! runtime overhead and end-of-loop imbalance — both functions of *chunk
//! sizing*, which OpenMP leaves to the implementation for `schedule(auto)`.
//! This module stops aliasing `auto` to `static` and instead picks a policy
//! from measured history:
//!
//! * Every adaptive loop is keyed by a stable **loop identity** (a call-site
//!   hash in compiled mode, a transform-assigned site id in interpreted
//!   mode). A global registry keeps one history record per key.
//! * The first instance of a loop gets a cheap default: `static` blocks in
//!   compiled mode, `guided` with an overhead-derived minimum chunk in
//!   interpreted (Pure/Hybrid) mode — where per-chunk claims cross the
//!   interpreter boundary and a static tail of tiny chunks dominates.
//! * While an adaptive loop runs, its [`crate::schedule::ForBounds`] driver
//!   times every chunk (independently of the profiler) and reports a
//!   per-thread `(time, chunks, iterations)` triple when the thread's share
//!   is exhausted. Once every team thread has reported, the window is folded
//!   into the history.
//! * On later instances the policy **re-chunks**: measured imbalance above
//!   [`IMBALANCE_THRESHOLD`] escalates `static → guided → dynamic`, and a
//!   mean chunk duration below [`CHUNK_OVERHEAD_FLOOR_NS`] doubles the chunk
//!   so claim overhead amortizes.
//!
//! The whole mechanism is gated on the `OMP4RS_ADAPTIVE` environment
//! variable (default on; see `docs/ENVIRONMENT.md`) and never touches loops
//! with an explicit non-`auto` schedule clause.

use std::collections::HashMap;
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::directive::ScheduleKind;
use crate::icv::Icvs;
use crate::ompt;
use crate::schedule::ResolvedSchedule;

/// Per-thread measurements of one adaptive loop instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadReport {
    /// Total nanoseconds this thread spent executing chunk bodies.
    pub ns: u64,
    /// Number of chunks the thread claimed.
    pub chunks: u64,
    /// Number of iterations the thread executed.
    pub iters: u64,
}

/// Escalate the schedule when measured imbalance (max over mean per-thread
/// chunk time) exceeds this.
pub const IMBALANCE_THRESHOLD: f64 = 1.5;

/// Grow the chunk when the mean chunk duration is below this (claim overhead
/// is no longer amortized).
pub const CHUNK_OVERHEAD_FLOOR_NS: u64 = 50_000;

/// What one loop learned so far.
#[derive(Debug, Clone, Default)]
struct LoopHistory {
    /// Completed `decide` rounds (loop instances seen).
    instances: u64,
    /// Policy the next instance will use.
    kind: ScheduleKind,
    /// Chunk parameter for the next instance (minimum chunk for guided).
    chunk: u64,
    /// Decision handed to the threads of the current instance.
    decision: Option<ResolvedSchedule>,
    /// How many more team threads will ask for the current decision.
    decide_remaining: usize,
    /// Reports expected before the open window folds.
    window_expected: usize,
    /// Per-thread reports of the current window.
    window: Vec<ThreadReport>,
    /// Imbalance of the last folded window.
    last_imbalance: f64,
    /// Mean chunk duration of the last folded window, ns.
    last_mean_chunk_ns: u64,
    /// Times the policy was changed by feedback.
    rechunks: u64,
}

impl LoopHistory {
    fn fold_window(&mut self) {
        let active: Vec<ThreadReport> = self
            .window
            .iter()
            .filter(|r| r.chunks > 0)
            .copied()
            .collect();
        if active.is_empty() {
            self.window.clear();
            return;
        }
        let max_ns = active.iter().map(|r| r.ns).max().unwrap_or(0);
        let sum_ns: u64 = active.iter().map(|r| r.ns).sum();
        let mean_ns = sum_ns as f64 / active.len() as f64;
        self.last_imbalance = if mean_ns > 0.0 {
            max_ns as f64 / mean_ns
        } else {
            0.0
        };
        let chunks: u64 = active.iter().map(|r| r.chunks).sum();
        let iters: u64 = active.iter().map(|r| r.iters).sum();
        self.last_mean_chunk_ns = sum_ns.checked_div(chunks).unwrap_or(0);
        let mean_iters_per_chunk = iters.checked_div(chunks).unwrap_or(1).max(1);
        self.window.clear();

        // Re-chunk: imbalance first (policy escalation), then per-chunk
        // overhead (chunk growth).
        if self.last_imbalance > IMBALANCE_THRESHOLD {
            let escalated = match self.kind {
                ScheduleKind::Static => Some(ScheduleKind::Guided),
                ScheduleKind::Guided => Some(ScheduleKind::Dynamic),
                _ => None,
            };
            if let Some(kind) = escalated {
                self.kind = kind;
                if kind == ScheduleKind::Dynamic {
                    // Dynamic claims every chunk from the shared counter:
                    // start from the measured mean chunk so claim traffic
                    // does not explode.
                    self.chunk = self.chunk.max(mean_iters_per_chunk / 2).max(1);
                }
                self.rechunks += 1;
                return;
            }
        }
        if self.last_mean_chunk_ns < CHUNK_OVERHEAD_FLOOR_NS && chunks > active.len() as u64 {
            // Chunks finish faster than the claim overhead amortizes: double
            // the (minimum) chunk.
            self.chunk = (self.chunk.max(1)).saturating_mul(2);
            self.rechunks += 1;
        }
    }
}

fn registry() -> &'static Mutex<HashMap<u64, LoopHistory>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, LoopHistory>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether adaptive resolution is enabled (the `OMP4RS_ADAPTIVE` knob).
pub fn enabled() -> bool {
    Icvs::current().adaptive
}

/// Default minimum chunk for an interpreted loop: large enough that the
/// per-chunk interpreter round-trip amortizes, small enough that the team
/// still load-balances (about `8 × nthreads` chunks over the whole space).
pub fn interpreted_min_chunk(total: u64, nthreads: usize) -> u64 {
    (total / (8 * nthreads.max(1) as u64)).max(1)
}

/// Resolve a schedule adaptively for one loop instance.
///
/// `clause` follows [`ResolvedSchedule::resolve`]; `key` is the stable loop
/// identity; `total`/`nthreads` describe this instance; `interpreted` marks
/// Pure/Hybrid loops (whose chunk claims cross the interpreter boundary).
///
/// Returns the schedule plus `Some(key)` when the instance should be
/// *tracked* (its driver must call [`report`] once per thread). Loops with
/// an explicit non-`auto` schedule — and everything when the `OMP4RS_ADAPTIVE`
/// knob is off — fall through to the spec resolution untracked.
pub fn resolve(
    clause: Option<(ScheduleKind, Option<u64>)>,
    key: u64,
    total: u64,
    nthreads: usize,
    interpreted: bool,
) -> (ResolvedSchedule, Option<u64>) {
    let icvs = Icvs::current();
    if !icvs.adaptive {
        return (ResolvedSchedule::resolve(clause), None);
    }
    // Resolve `runtime` indirection first so `OMP_SCHEDULE=auto` is adaptive.
    let effective = match clause {
        Some((ScheduleKind::Runtime, _)) => Some(icvs.run_schedule),
        other => other,
    };
    let adaptive = match effective {
        Some((ScheduleKind::Auto, _)) => true,
        // No clause: `def-sched-var`. Interpreted loops treat the default
        // static-no-chunk as `auto` — the static tail of tiny interpreted
        // chunks is exactly what this module exists to remove.
        None => interpreted && icvs.def_schedule == (ScheduleKind::Static, None),
        _ => false,
    };
    if !adaptive {
        return (ResolvedSchedule::resolve(clause), None);
    }

    let mut reg = registry().lock();
    let hist = reg.entry(key).or_insert_with(|| {
        let (kind, chunk) = if interpreted {
            (ScheduleKind::Guided, interpreted_min_chunk(total, nthreads))
        } else {
            (ScheduleKind::Static, 1)
        };
        LoopHistory {
            kind,
            chunk,
            ..LoopHistory::default()
        }
    });
    if hist.decide_remaining > 0 {
        // Another thread of the same instance: reuse its decision.
        hist.decide_remaining -= 1;
        let decision = hist.decision.unwrap_or_else(|| ResolvedSchedule {
            kind: hist.kind,
            chunk: hist.chunk.max(1),
            explicit_chunk: hist.kind != ScheduleKind::Static,
        });
        return (decision, Some(key));
    }
    // First thread of a new instance: drop any stale partial window (a
    // cancelled or panicked instance may never complete its reports).
    if !hist.window.is_empty() && hist.window.len() < hist.window_expected {
        hist.window.clear();
    }
    let decision = ResolvedSchedule {
        kind: hist.kind,
        chunk: hist.chunk.max(1),
        // Static stays block-scheduled (one contiguous chunk per thread)
        // until feedback escalates it; guided/dynamic use `chunk` as their
        // (minimum) chunk parameter.
        explicit_chunk: hist.kind != ScheduleKind::Static,
    };
    hist.decision = Some(decision);
    hist.decide_remaining = nthreads.max(1) - 1;
    hist.window_expected = nthreads.max(1);
    hist.instances += 1;
    (decision, Some(key))
}

/// Report one thread's measurements for a tracked loop instance. Folds the
/// window (and possibly re-chunks the policy) once every team thread of the
/// instance has reported.
pub fn report(key: u64, report: ThreadReport) {
    let mut reg = registry().lock();
    let Some(hist) = reg.get_mut(&key) else {
        return;
    };
    hist.window.push(report);
    if hist.window.len() >= hist.window_expected.max(1) {
        hist.fold_window();
        if ompt::enabled() {
            publish_counters(&reg);
        }
    }
}

/// Feedback snapshot for one adaptive loop (introspection and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSnapshot {
    /// Instances resolved so far.
    pub instances: u64,
    /// Schedule kind the next instance will use.
    pub kind: ScheduleKind,
    /// Chunk parameter the next instance will use.
    pub chunk: u64,
    /// Imbalance of the last folded measurement window.
    pub last_imbalance: f64,
    /// Mean chunk duration of the last folded window, ns.
    pub last_mean_chunk_ns: u64,
    /// Times feedback changed the policy.
    pub rechunks: u64,
}

/// Introspect one loop's history, if it exists.
pub fn snapshot(key: u64) -> Option<LoopSnapshot> {
    registry().lock().get(&key).map(|h| LoopSnapshot {
        instances: h.instances,
        kind: h.kind,
        chunk: h.chunk,
        last_imbalance: h.last_imbalance,
        last_mean_chunk_ns: h.last_mean_chunk_ns,
        rechunks: h.rechunks,
    })
}

/// Drop one loop's history (tests; a fresh key is usually simpler).
pub fn forget(key: u64) {
    registry().lock().remove(&key);
}

/// Publish aggregate adaptive counters to the profiler's counter registry
/// (`omp4rs.adaptive.loops` / `.rechunks`), so `--profile` output shows the
/// feedback loop working.
fn publish_counters(reg: &HashMap<u64, LoopHistory>) {
    let loops = reg.len() as u64;
    let rechunks: u64 = reg.values().map(|h| h.rechunks).sum();
    ompt::set_counter("omp4rs.adaptive.loops", loops);
    ompt::set_counter("omp4rs.adaptive.rechunks", rechunks);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique keys per test so histories never collide across tests.
    fn key() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0xada0_0001);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    #[test]
    fn first_instance_defaults_by_mode() {
        // Interpreted: guided with an overhead-derived minimum chunk.
        let k = key();
        let (sched, tracked) = resolve(Some((ScheduleKind::Auto, None)), k, 8_000, 4, true);
        assert_eq!(sched.kind, ScheduleKind::Guided);
        assert_eq!(sched.chunk, interpreted_min_chunk(8_000, 4));
        assert_eq!(tracked, Some(k));
        // Compiled: static blocks.
        let k2 = key();
        let (sched, tracked) = resolve(Some((ScheduleKind::Auto, None)), k2, 8_000, 4, false);
        assert_eq!(sched.kind, ScheduleKind::Static);
        assert!(!sched.explicit_chunk);
        assert_eq!(tracked, Some(k2));
    }

    #[test]
    fn explicit_schedules_bypass_adaptation() {
        let k = key();
        let (sched, tracked) = resolve(Some((ScheduleKind::Dynamic, Some(8))), k, 1_000, 4, true);
        assert_eq!(sched.kind, ScheduleKind::Dynamic);
        assert_eq!(sched.chunk, 8);
        assert_eq!(tracked, None);
        assert!(snapshot(k).is_none(), "no history for explicit schedules");
    }

    #[test]
    fn imbalance_escalates_static_to_guided_to_dynamic() {
        let k = key();
        let nthreads = 4;
        let (s0, _) = resolve(Some((ScheduleKind::Auto, None)), k, 1_000, nthreads, false);
        assert_eq!(s0.kind, ScheduleKind::Static);
        // One thread took 4x the mean: imbalance ~2.3 > threshold.
        let lopsided = |k: u64| {
            report(
                k,
                ThreadReport {
                    ns: 40_000_000,
                    chunks: 1,
                    iters: 250,
                },
            );
            for _ in 0..3 {
                report(
                    k,
                    ThreadReport {
                        ns: 10_000_000,
                        chunks: 1,
                        iters: 250,
                    },
                );
            }
        };
        // Consume the remaining deciders of instance 1, then report.
        for _ in 0..nthreads - 1 {
            let _ = resolve(Some((ScheduleKind::Auto, None)), k, 1_000, nthreads, false);
        }
        lopsided(k);
        let (s1, _) = resolve(Some((ScheduleKind::Auto, None)), k, 1_000, nthreads, false);
        assert_eq!(s1.kind, ScheduleKind::Guided, "static escalates to guided");
        for _ in 0..nthreads - 1 {
            let _ = resolve(Some((ScheduleKind::Auto, None)), k, 1_000, nthreads, false);
        }
        lopsided(k);
        let (s2, _) = resolve(Some((ScheduleKind::Auto, None)), k, 1_000, nthreads, false);
        assert_eq!(
            s2.kind,
            ScheduleKind::Dynamic,
            "guided escalates to dynamic"
        );
        assert!(s2.chunk >= 1);
        let snap = snapshot(k).unwrap();
        assert_eq!(snap.rechunks, 2);
        assert!(snap.last_imbalance > IMBALANCE_THRESHOLD);
        forget(k);
    }

    #[test]
    fn tiny_chunks_grow_the_chunk_parameter() {
        let k = key();
        let (s0, _) = resolve(Some((ScheduleKind::Auto, None)), k, 100_000, 1, true);
        let initial_chunk = s0.chunk;
        // One thread, many sub-overhead chunks.
        report(
            k,
            ThreadReport {
                ns: 80_000,
                chunks: 40,
                iters: 100_000,
            },
        );
        let (s1, _) = resolve(Some((ScheduleKind::Auto, None)), k, 100_000, 1, true);
        assert_eq!(s1.chunk, initial_chunk * 2, "chunk doubles under overhead");
        assert_eq!(s1.kind, ScheduleKind::Guided);
        forget(k);
    }

    #[test]
    fn histories_are_keyed_per_loop() {
        let ka = key();
        let kb = key();
        let _ = resolve(Some((ScheduleKind::Auto, None)), ka, 1_000, 1, false);
        report(
            ka,
            ThreadReport {
                ns: 1_000,
                chunks: 10,
                iters: 1_000,
            },
        );
        let _ = resolve(Some((ScheduleKind::Auto, None)), kb, 1_000, 1, false);
        let a = snapshot(ka).unwrap();
        let b = snapshot(kb).unwrap();
        assert_eq!(a.rechunks, 1, "loop A re-chunked from its own history");
        assert_eq!(b.rechunks, 0, "loop B's history is untouched by loop A");
        forget(ka);
        forget(kb);
    }

    #[test]
    fn same_instance_threads_share_one_decision() {
        let k = key();
        let (first, _) = resolve(Some((ScheduleKind::Auto, None)), k, 500, 3, true);
        let (second, _) = resolve(Some((ScheduleKind::Auto, None)), k, 500, 3, true);
        let (third, _) = resolve(Some((ScheduleKind::Auto, None)), k, 500, 3, true);
        assert_eq!(first, second);
        assert_eq!(second, third);
        assert_eq!(snapshot(k).unwrap().instances, 1, "one instance, not three");
        forget(k);
    }
}
