//! Reduction identities/combiners and the `declare reduction` registry.

use std::collections::HashMap;
use std::sync::OnceLock;

use parking_lot::RwLock;

use crate::directive::ReductionOp;
use crate::error::OmpError;

/// Identity element for a built-in reduction over `f64`.
///
/// Returns `None` for [`ReductionOp::Custom`] (identities for declared
/// reductions come from their `initializer`).
pub fn identity_f64(op: &ReductionOp) -> Option<f64> {
    Some(match op {
        ReductionOp::Add | ReductionOp::Sub => 0.0,
        ReductionOp::Mul => 1.0,
        ReductionOp::Min => f64::INFINITY,
        ReductionOp::Max => f64::NEG_INFINITY,
        ReductionOp::LogicalAnd => 1.0,
        ReductionOp::LogicalOr => 0.0,
        ReductionOp::BitAnd | ReductionOp::BitOr | ReductionOp::BitXor => return None,
        ReductionOp::Custom(_) => return None,
    })
}

/// Combine two `f64` partial results.
///
/// # Errors
///
/// [`OmpError::UnknownReduction`] for custom ops and bitwise ops (which are
/// integer-only).
pub fn combine_f64(op: &ReductionOp, a: f64, b: f64) -> Result<f64, OmpError> {
    Ok(match op {
        ReductionOp::Add | ReductionOp::Sub => a + b,
        ReductionOp::Mul => a * b,
        ReductionOp::Min => a.min(b),
        ReductionOp::Max => a.max(b),
        ReductionOp::LogicalAnd => f64::from(a != 0.0 && b != 0.0),
        ReductionOp::LogicalOr => f64::from(a != 0.0 || b != 0.0),
        other => return Err(OmpError::UnknownReduction(other.symbol().to_owned())),
    })
}

/// Identity element for a built-in reduction over `i64`.
pub fn identity_i64(op: &ReductionOp) -> Option<i64> {
    Some(match op {
        ReductionOp::Add | ReductionOp::Sub => 0,
        ReductionOp::Mul => 1,
        ReductionOp::Min => i64::MAX,
        ReductionOp::Max => i64::MIN,
        ReductionOp::BitAnd => -1,
        ReductionOp::BitOr | ReductionOp::BitXor => 0,
        ReductionOp::LogicalAnd => 1,
        ReductionOp::LogicalOr => 0,
        ReductionOp::Custom(_) => return None,
    })
}

/// Combine two `i64` partial results.
///
/// # Errors
///
/// [`OmpError::UnknownReduction`] for custom ops.
pub fn combine_i64(op: &ReductionOp, a: i64, b: i64) -> Result<i64, OmpError> {
    Ok(match op {
        ReductionOp::Add | ReductionOp::Sub => a.wrapping_add(b),
        ReductionOp::Mul => a.wrapping_mul(b),
        ReductionOp::Min => a.min(b),
        ReductionOp::Max => a.max(b),
        ReductionOp::BitAnd => a & b,
        ReductionOp::BitOr => a | b,
        ReductionOp::BitXor => a ^ b,
        ReductionOp::LogicalAnd => i64::from(a != 0 && b != 0),
        ReductionOp::LogicalOr => i64::from(a != 0 || b != 0),
        ReductionOp::Custom(name) => return Err(OmpError::UnknownReduction(name.clone())),
    })
}

/// A reduction declared with `declare reduction(name : combiner)`.
///
/// The combiner is expression text over the conventional names `a`
/// (accumulated) and `b` (incoming); the host front-end evaluates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclaredReduction {
    /// Combiner expression text (over `a` and `b`).
    pub combiner: String,
    /// Initializer expression text, if declared.
    pub initializer: Option<String>,
}

fn registry() -> &'static RwLock<HashMap<String, DeclaredReduction>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, DeclaredReduction>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Register a `declare reduction` (idempotent per name: later wins).
pub fn declare_reduction(name: &str, decl: DeclaredReduction) {
    registry().write().insert(name.to_owned(), decl);
}

/// Look up a declared reduction by name.
pub fn declared_reduction(name: &str) -> Option<DeclaredReduction> {
    registry().read().get(name).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_neutral_f64() {
        for op in [
            ReductionOp::Add,
            ReductionOp::Mul,
            ReductionOp::Min,
            ReductionOp::Max,
        ] {
            let id = identity_f64(&op).unwrap();
            for v in [-3.5, 0.0, 7.25] {
                assert_eq!(combine_f64(&op, id, v).unwrap(), v, "{op:?} identity");
            }
        }
    }

    #[test]
    fn identities_are_neutral_i64() {
        for op in [
            ReductionOp::Add,
            ReductionOp::Mul,
            ReductionOp::Min,
            ReductionOp::Max,
            ReductionOp::BitAnd,
            ReductionOp::BitOr,
            ReductionOp::BitXor,
        ] {
            let id = identity_i64(&op).unwrap();
            for v in [-3i64, 0, 7] {
                assert_eq!(combine_i64(&op, id, v).unwrap(), v, "{op:?} identity");
            }
        }
    }

    #[test]
    fn logical_ops() {
        assert_eq!(combine_i64(&ReductionOp::LogicalAnd, 1, 0).unwrap(), 0);
        assert_eq!(combine_i64(&ReductionOp::LogicalAnd, 2, 3).unwrap(), 1);
        assert_eq!(combine_i64(&ReductionOp::LogicalOr, 0, 0).unwrap(), 0);
        assert_eq!(combine_i64(&ReductionOp::LogicalOr, 0, 5).unwrap(), 1);
    }

    #[test]
    fn custom_op_is_error_for_builtin_combine() {
        let op = ReductionOp::Custom("merge".into());
        assert!(combine_f64(&op, 1.0, 2.0).is_err());
        assert!(combine_i64(&op, 1, 2).is_err());
        assert!(identity_f64(&op).is_none());
    }

    #[test]
    fn declare_reduction_registry() {
        declare_reduction(
            "sumsq_test",
            DeclaredReduction {
                combiner: "a + b * b".into(),
                initializer: Some("0".into()),
            },
        );
        let d = declared_reduction("sumsq_test").unwrap();
        assert_eq!(d.combiner, "a + b * b");
        assert!(declared_reduction("nope_test").is_none());
    }
}
