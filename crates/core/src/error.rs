//! Error type for the omp4rs runtime API.

use std::fmt;

use crate::directive::DirectiveError;

/// Errors reported by the omp4rs runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmpError {
    /// A directive string failed to parse or validate.
    Directive(DirectiveError),
    /// A clause argument that must be a compile-time constant in this mode
    /// (e.g. a chunk size in compiled mode) was not.
    NonConstantClause {
        /// The clause keyword.
        clause: &'static str,
        /// The offending expression text.
        expr: String,
    },
    /// A malformed loop description (zero step, no dimensions).
    InvalidLoop(String),
    /// A directive was used outside its required context (e.g. `section`
    /// outside `sections`, `ordered` in a loop without the `ordered` clause).
    InvalidContext(String),
    /// A `reduction(op: …)` named an undeclared custom reduction.
    UnknownReduction(String),
    /// The enclosing region was cancelled (`cancel` directive observed at a
    /// cancellation point).
    Cancelled(String),
    /// A team thread panicked and the region was poisoned: every barrier,
    /// `single`, `ordered`, and `taskwait` in the region was released so the
    /// surviving threads could exit cleanly instead of hanging.
    RegionPoisoned(String),
    /// A region deadline (`OMP4RS_REGION_DEADLINE` /
    /// `omp_set_region_deadline`) or the stall watchdog tripped: a blocking
    /// wait in the region exceeded its budget, the region was poisoned
    /// exactly like a panic (all waiters released, queued tasks discarded),
    /// and this error surfaces on the joining thread.
    RegionTimeout {
        /// The construct whose wait expired (`barrier`, `taskwait`,
        /// `critical`, `lock`, `watchdog`, …).
        construct: &'static str,
        /// How long the region had been running when the deadline tripped.
        waited: std::time::Duration,
    },
}

impl fmt::Display for OmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpError::Directive(e) => write!(f, "{e}"),
            OmpError::NonConstantClause { clause, expr } => {
                write!(
                    f,
                    "clause '{clause}' requires a constant here, got '{expr}'"
                )
            }
            OmpError::InvalidLoop(msg) => write!(f, "invalid parallel loop: {msg}"),
            OmpError::InvalidContext(msg) => write!(f, "invalid directive nesting: {msg}"),
            OmpError::UnknownReduction(name) => {
                write!(
                    f,
                    "unknown reduction identifier '{name}' (missing declare reduction?)"
                )
            }
            OmpError::Cancelled(what) => write!(f, "region cancelled: {what}"),
            OmpError::RegionPoisoned(why) => {
                write!(
                    f,
                    "parallel region poisoned by a panicking team thread: {why}"
                )
            }
            OmpError::RegionTimeout { construct, waited } => {
                write!(
                    f,
                    "region deadline exceeded after {waited:?} (blocked in {construct}); \
                     region poisoned"
                )
            }
        }
    }
}

impl std::error::Error for OmpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OmpError::Directive(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DirectiveError> for OmpError {
    fn from(e: DirectiveError) -> OmpError {
        OmpError::Directive(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OmpError::from(crate::directive::Directive::parse("bogus").unwrap_err());
        assert!(e.to_string().contains("bogus"));
        let e = OmpError::NonConstantClause {
            clause: "schedule",
            expr: "n + 1".into(),
        };
        assert!(e.to_string().contains("schedule"));
        assert!(e.to_string().contains("n + 1"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = OmpError::from(crate::directive::Directive::parse("bogus").unwrap_err());
        assert!(e.source().is_some());
        assert!(OmpError::InvalidLoop("x".into()).source().is_none());
    }
}
