//! Thread teams and the task-draining implicit barrier.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Instant;

use parking_lot::Mutex;

use std::cell::Cell;

use crate::context;
use crate::depgraph::{self, Dep, TaskGroup};
use crate::error::OmpError;
use crate::faults::{self, FaultSite};
use crate::ompt;
use crate::sync::{self, Backend, CancelFlag, Notifier};
use crate::tasks::{TaskNode, TaskQueue};
use crate::worksharing::WorkshareRegistry;

/// A team of threads created by a `parallel` directive.
///
/// Owns the barrier state, the shared task queue, and the work-sharing
/// registry. Created by [`crate::exec::parallel_region`] (compiled mode) or
/// the interpreter bridge's `parallel_run` intrinsic.
pub struct Team {
    size: usize,
    backend: Backend,
    /// Unique id tagging this region's profiler events ([`crate::ompt`]).
    region: u64,
    wake: Arc<Notifier>,
    arrived: AtomicUsize,
    generation: AtomicU64,
    release: Mutex<()>,
    tasks: TaskQueue,
    ws: WorkshareRegistry,
    /// Region-wide cancellation (set by `cancel parallel` or poisoning).
    /// Shared with the work-sharing registry so every instance's wait loops
    /// can observe it.
    cancelled: Arc<CancelFlag>,
    /// Set when a team thread panicked and the region was force-released.
    poisoned: CancelFlag,
    /// Threads that have reached the region's *final* (implicit region-end)
    /// barrier. When the releaser of a barrier generation sees this equal
    /// to the team size, that barrier is the region's last rendezvous and
    /// it may complete [`Team::final_latch`] on behalf of the whole gang.
    finalists: AtomicUsize,
    /// The pooled region's completion latch (`None` for scoped/serialized
    /// teams). Taken exactly once, by the final barrier's releaser.
    final_latch: Mutex<Option<Arc<crate::pool::RegionLatch>>>,
    /// When the region started, for [`OmpError::RegionTimeout::waited`].
    started: Instant,
    /// Absolute deadline bounding every blocking wait in the region
    /// (barriers, `taskwait`, `critical`, locks), from the
    /// `region_deadline` ICV at team creation. `None` = unbounded.
    deadline: Option<Instant>,
    /// First-wins typed failure (deadline trip or watchdog cancellation)
    /// re-raised by the joining thread after all team threads exit.
    failure: Mutex<Option<OmpError>>,
    /// Whether this team was entered into the watchdog's region registry.
    registered: bool,
}

/// Region-id → team map so the stall watchdog ([`crate::pool`]) can reach a
/// team from a worker-slot heartbeat and cancel it. Teams register only when
/// the watchdog ICV is enabled at creation time, and deregister on drop.
fn registry() -> &'static Mutex<HashMap<u64, Weak<Team>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, Weak<Team>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Look up a live team by its region id (watchdog use).
pub(crate) fn find_by_region(region: u64) -> Option<Arc<Team>> {
    registry().lock().get(&region).and_then(Weak::upgrade)
}

impl Drop for Team {
    fn drop(&mut self) {
        if self.registered {
            registry().lock().remove(&self.region);
        }
    }
}

/// The calling thread's enclosing team and its region deadline, when both
/// exist. Used by deadline-aware primitives that live outside the team —
/// [`crate::locks::OmpLock`], [`crate::locks::critical`], and the trace
/// pipeline's `block` overflow policy (`construct = "trace"`) — to bound
/// their blocking waits.
pub(crate) fn current_deadline() -> Option<(Arc<Team>, Instant)> {
    let frame = context::current_frame()?;
    let deadline = frame.team.deadline()?;
    Some((Arc::clone(&frame.team), deadline))
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("size", &self.size)
            .field("backend", &self.backend)
            .field("outstanding_tasks", &self.tasks.outstanding())
            .finish()
    }
}

thread_local! {
    /// Nested task-execution depth for the current thread.
    static EXEC_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Beyond this inline depth, threads stop stealing unrelated queued tasks.
const STEAL_DEPTH_LIMIT: usize = 24;

impl Team {
    /// Create a team of `size` threads using the given backend.
    ///
    /// The region deadline and watchdog ICVs are sampled here, so a deadline
    /// covers the whole region lifetime starting from team creation.
    pub fn new(size: usize, backend: Backend) -> Arc<Team> {
        let wake = Arc::new(Notifier::new());
        let cancelled = Arc::new(CancelFlag::new(backend));
        let icvs = crate::icv::Icvs::current();
        let started = Instant::now();
        let registered = icvs.watchdog.is_some();
        let team = Arc::new(Team {
            size: size.max(1),
            backend,
            region: ompt::new_region_id(),
            wake: Arc::clone(&wake),
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            release: Mutex::new(()),
            tasks: TaskQueue::with_threads(backend, Arc::clone(&wake), size.max(1)),
            ws: WorkshareRegistry::with_cancel(backend, size.max(1), wake, Arc::clone(&cancelled)),
            cancelled,
            poisoned: CancelFlag::new(backend),
            finalists: AtomicUsize::new(0),
            final_latch: Mutex::new(None),
            started,
            deadline: icvs.region_deadline.map(|d| started + d),
            failure: Mutex::new(None),
            registered,
        });
        if registered {
            registry().lock().insert(team.region, Arc::downgrade(&team));
        }
        team
    }

    /// Attach the pooled region's completion latch (set by the master
    /// before any worker is dispatched). The final barrier's releaser
    /// zeroes it for the whole gang — see [`Team::final_barrier`].
    pub(crate) fn set_final_latch(&self, latch: Arc<crate::pool::RegionLatch>) {
        *self.final_latch.lock() = Some(latch);
    }

    /// The region's final (region-end implicit) barrier, with an
    /// *early-leave* fast path when no stall detector is armed.
    ///
    /// A full barrier makes every thread wait for the generation flip, which
    /// on the final rendezvous buys the workers nothing: nothing after it
    /// depends on cross-thread phase agreement — a worker's next steps are
    /// its own trace flush and its dock. What the flip *does* protect is the
    /// master (the region must not end before every body has returned and
    /// every task has drained), and the pooled-latch / scoped-join
    /// protocols already guarantee exactly that: each worker's latch
    /// decrement (or thread exit) happens only after it has passed this
    /// rendezvous, and the last arriver still drains tasks and completes
    /// the latch for the gang. So a non-leader that (a) is provably not the
    /// last arriver and (b) sees no outstanding tasks simply leaves —
    /// saving a park/wake pair per worker per region, the dominant cost of
    /// fine-grained regions under a passive wait policy. A thread that *is*
    /// last, or that sees undrained tasks, falls into the ordinary
    /// candidate-releaser wait loop and behaves exactly as before.
    ///
    /// The leader (region master) may early-leave too — its own rendezvous
    /// is the pooled latch (`latch.wait()`) or the scoped join that follows
    /// the region, and neither can complete before the last arriver has
    /// drained the tasks and released.
    ///
    /// Two exceptions, one per stall detector — in both, the threads parked
    /// at this barrier *are* the detector's sensor, so nobody early-leaves:
    ///
    /// * Under a region *deadline*, every arriver's park here is
    ///   deadline-bounded (`park_until` → `trip_deadline`); the latch wait
    ///   and the scoped join are not. A region whose slowest thread stalls
    ///   *before* arriving is rescued by a teammate's bounded park tripping
    ///   the deadline (typed as a `"barrier"` timeout) — if the teammates
    ///   early-left instead, the trip would fall to the master's coarser
    ///   region-level probe, or (for an early-leaving leader) to nothing at
    ///   all, turning the deadline into a hang.
    /// * With the stall *watchdog* armed, the sensor is a busy pool worker
    ///   whose heartbeat went stale while parked here waiting out a stalled
    ///   teammate. The master runs on the caller's thread and has no
    ///   heartbeat, so if its teammates early-left and re-docked (idle,
    ///   fresh heartbeats) a master stalled in its body would be invisible —
    ///   the watchdog would watch an apparently idle pool while the region
    ///   hangs. The full barrier preserves the PR 6 semantics: no
    ///   synchronization progress anywhere in the team for the threshold ⇒
    ///   some parked worker is flagged ⇒ the team is cancelled.
    ///
    /// (A non-conforming program whose threads execute *different* numbers
    /// of explicit barriers could fire this at a mismatched rendezvous —
    /// such programs already have no defined behavior under OpenMP.)
    pub(crate) fn final_barrier(&self) {
        self.finalists.fetch_add(1, Ordering::AcqRel);
        if self.size == 1 || self.deadline.is_some() || self.registered {
            return self.barrier();
        }
        if !ompt::enabled() {
            return self.final_barrier_body();
        }
        ompt::record(
            self.region,
            ompt::EventKind::BarrierEnter { explicit: false },
        );
        let start = Instant::now();
        self.final_barrier_body();
        ompt::record(
            self.region,
            ompt::EventKind::BarrierExit {
                wait_ns: start.elapsed().as_nanos() as u64,
            },
        );
    }

    /// Worker-side final-barrier arrival (see [`Team::final_barrier`]).
    fn final_barrier_body(&self) {
        crate::pool::heartbeat();
        faults::on_event(FaultSite::BarrierArrival);
        if self.cancelled.is_set() {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        let prior = self.arrived.fetch_add(1, Ordering::AcqRel);
        // Early leave: `prior + 1 < size` proves (exactly, via the fetch_add
        // serialization) that another thread's arrival is still to come —
        // that thread, or a waiter it wakes, will run the release and
        // complete the pooled latch. With no tasks outstanding there is
        // nothing to help drain, so this thread's only remaining obligation
        // is its own latch decrement, which happens after return. (Tasks
        // submitted later by a not-yet-arrived thread are drained by the
        // threads still at the rendezvous — the last arriver is always
        // one, and it cannot release, so its job cannot return and the
        // region cannot end, before the queue is dry.)
        if prior + 1 < self.size && self.tasks.outstanding() == 0 {
            return;
        }
        self.barrier_wait(gen);
    }

    /// Number of threads in the team.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The team's synchronization backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The unique region id tagging this team's profiler events.
    pub fn region(&self) -> u64 {
        self.region
    }

    /// The team's work-sharing registry.
    pub fn worksharing(&self) -> &WorkshareRegistry {
        &self.ws
    }

    /// The team's task queue.
    pub fn tasks(&self) -> &TaskQueue {
        &self.tasks
    }

    /// The team's wakeup hub.
    pub fn wake(&self) -> &Arc<Notifier> {
        &self.wake
    }

    /// Whether the region has been cancelled (by `cancel parallel` or by
    /// poisoning).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.is_set()
    }

    /// Whether a team thread panicked and poisoned the region.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_set()
    }

    /// `cancel parallel`: latch region-wide cancellation.
    ///
    /// Every barrier in the region (current and future generations) releases
    /// immediately, queued-but-unstarted tasks are discarded, and loop
    /// drivers stop claiming chunks at their next cancellation point. Safe
    /// because teams are created fresh per parallel region: the residual
    /// `arrived` count of a cancelled barrier can never corrupt another
    /// region.
    pub fn cancel_region(&self) {
        if self.cancelled.set() {
            ompt::record(self.region, ompt::EventKind::CancelObserved);
        }
        self.tasks.cancel();
        self.wake.notify_all();
    }

    /// Poison the team after a worker panic: cancel the region *and* record
    /// that the release was abnormal. Every waiter — barrier, `single`
    /// copyprivate, `ordered`, `taskwait` — is woken so the surviving
    /// threads exit the region cleanly instead of hanging; the captured
    /// panic is re-raised once all threads have joined.
    pub fn poison(&self) {
        self.poisoned.set();
        self.cancel_region();
    }

    /// The absolute deadline bounding blocking waits in this region, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Trip the region deadline from a wait in `construct`: store a typed
    /// [`OmpError::RegionTimeout`] (first trip wins) and poison the region so
    /// every waiter — this thread included — exits through the cancellation
    /// path. The joining thread re-raises the stored failure after all team
    /// threads have left the region. Returns the error for callers with no
    /// cancellation return path (locks, `critical`) to unwind with.
    ///
    /// The `DeadlineTrip` event recorded here may itself re-enter the trace
    /// pipeline from inside a `block`-policy push (`construct = "trace"`);
    /// [`crate::ompt`]'s reentrancy guard downgrades that nested record to
    /// drop-oldest so tripping a deadline can never block on the full ring
    /// that caused it.
    pub(crate) fn trip_deadline(&self, construct: &'static str) -> OmpError {
        let waited = self.started.elapsed();
        let err = OmpError::RegionTimeout { construct, waited };
        {
            let mut slot = self.failure.lock();
            if slot.is_none() {
                *slot = Some(err.clone());
                ompt::record(
                    self.region,
                    ompt::EventKind::DeadlineTrip {
                        wait_ns: waited.as_nanos() as u64,
                    },
                );
            }
        }
        self.poison();
        err
    }

    /// Probe the region deadline from a non-parked stall point (the injected
    /// delay interrupt hook): if the deadline has passed, trip it and return
    /// `true`. This is the only rescue path for a *serial* region (admission
    /// shed, team of one) — there are no sibling waiters parked with the
    /// deadline and no pool slot for the watchdog to monitor.
    pub(crate) fn deadline_probe(&self) -> bool {
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.trip_deadline("region");
                true
            }
            _ => false,
        }
    }

    /// Take the stored typed failure (deadline trip or watchdog), if any.
    /// Called once by the joining thread after the region completes.
    pub(crate) fn take_failure(&self) -> Option<OmpError> {
        self.failure.lock().take()
    }

    /// Park on the team eventcount, bounded by the region deadline. On
    /// expiry the deadline is tripped (poisoning the region), so the
    /// caller's cancellation check releases it — and every other waiter —
    /// on the next loop iteration.
    fn park_region(&self, epoch: u64, construct: &'static str) {
        match self.deadline {
            Some(deadline) => {
                if self.wake.park_until(epoch, deadline) {
                    self.trip_deadline(construct);
                }
            }
            None => self.wake.park(epoch),
        }
    }

    /// Task-draining barrier (§III-E): all threads must arrive *and* all
    /// outstanding tasks must complete before any thread proceeds. Threads
    /// waiting at the barrier execute queued tasks instead of idling, and
    /// are re-awakened when new tasks are submitted.
    ///
    /// This entry point is used for the *implicit* barriers ending
    /// worksharing constructs and regions; a `barrier` directive goes
    /// through [`Team::barrier_explicit`] (identical semantics, different
    /// profiler tag).
    pub fn barrier(&self) {
        self.barrier_impl(false);
    }

    /// An explicit `barrier` directive (see [`Team::barrier`]).
    pub fn barrier_explicit(&self) {
        self.barrier_impl(true);
    }

    fn barrier_impl(&self, explicit: bool) {
        if !ompt::enabled() {
            return self.barrier_body();
        }
        ompt::record(self.region, ompt::EventKind::BarrierEnter { explicit });
        let start = std::time::Instant::now();
        self.barrier_body();
        ompt::record(
            self.region,
            ompt::EventKind::BarrierExit {
                wait_ns: start.elapsed().as_nanos() as u64,
            },
        );
    }

    fn barrier_body(&self) {
        // A barrier arrival is synchronization progress: refresh this
        // worker's watchdog heartbeat so only threads that stop *arriving*
        // (not merely long regions) count as stalled.
        crate::pool::heartbeat();
        faults::on_event(FaultSite::BarrierArrival);
        // A cancelled/poisoned region's barriers are no-ops: the region is
        // exiting and no further cross-thread phase agreement exists.
        if self.cancelled.is_set() {
            return;
        }
        if self.size == 1 {
            // Single-thread team: the barrier reduces to draining tasks.
            loop {
                if self.cancelled.is_set() || self.tasks.outstanding() == 0 {
                    return;
                }
                if self.run_one_task() {
                    continue;
                }
                // A task is in flight elsewhere (or this thread hit the
                // steal-depth limit): eventcount-park until its completion
                // signals. Epoch first, then re-check, then park — any
                // completion in between falls through.
                let epoch = self.wake.epoch();
                if self.cancelled.is_set() || self.tasks.outstanding() == 0 {
                    return;
                }
                self.park_region(epoch, "barrier");
            }
        }
        // Sense-reversing wait: `generation` is the sense — a thread is
        // released the moment the generation it arrived under flips, and the
        // residual `arrived` count of the old generation can never confuse
        // it.
        let gen = self.generation.load(Ordering::Acquire);
        self.arrived.fetch_add(1, Ordering::AcqRel);
        self.barrier_wait(gen);
    }

    /// The barrier wait loop, entered after the caller's arrival has been
    /// counted under generation `gen`. The wait burns the ICV-derived spin
    /// budget first, then parks on the team eventcount; every transition
    /// that can release it (last arrival, task completion, new task
    /// submission, cancellation) bumps `wake`'s epoch.
    fn barrier_wait(&self, gen: u64) {
        let mut spins = sync::spin_iters();
        loop {
            let epoch = self.wake.epoch();
            if self.cancelled.is_set() || self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            if self.arrived.load(Ordering::Acquire) == self.size && self.tasks.outstanding() == 0 {
                // Candidate releaser: commit under the release lock so a
                // stale thread can never reset `arrived` after the flip.
                let _g = self.release.lock();
                if self.generation.load(Ordering::Acquire) == gen {
                    if self.arrived.load(Ordering::Acquire) == self.size
                        && self.tasks.outstanding() == 0
                    {
                        self.arrived.store(0, Ordering::Release);
                        self.generation.store(gen + 1, Ordering::Release);
                        self.wake.notify_all();
                        // If every thread had reached the region's final
                        // barrier, this release ends the region: complete
                        // the pooled latch for the whole gang so the master
                        // needn't wait for the workers' post-barrier
                        // bookkeeping to be scheduled. (All bodies have
                        // returned, panics are recorded, and tasks have
                        // drained — nothing after this touches the
                        // master's stack.)
                        if self.finalists.load(Ordering::Acquire) == self.size {
                            if let Some(latch) = self.final_latch.lock().take() {
                                latch.complete_all();
                            }
                        }
                        return;
                    }
                } else {
                    return;
                }
                continue;
            }
            // Not releasable yet: make progress on tasks; with none to run,
            // spin down the budget, then park until the next signal.
            if self.run_one_task() {
                spins = sync::spin_iters();
                continue;
            }
            if spins > 0 {
                spins -= 1;
                sync::spin_hint(spins);
                continue;
            }
            self.park_region(epoch, "barrier");
        }
    }

    /// Execute one queued task on the calling thread, maintaining the task
    /// frame so nested submissions become children of that task.
    ///
    /// Refuses when the thread's inline-execution depth exceeds the steal
    /// limit: running arbitrary queued tasks from deep inside other task
    /// bodies would grow the stack with the task *count*; beyond the limit
    /// threads instead park and let shallower threads drain the queue
    /// (`taskwait` still executes its *own* children inline, which is
    /// bounded by the task-tree depth).
    pub fn run_one_task(&self) -> bool {
        if EXEC_DEPTH.with(|d| d.get()) >= STEAL_DEPTH_LIMIT {
            return false;
        }
        EXEC_DEPTH.with(|d| d.set(d.get() + 1));
        let ran = self.tasks.run_one_from(self.my_thread_num());
        EXEC_DEPTH.with(|d| d.set(d.get() - 1));
        ran
    }

    /// The calling thread's number within *this* team, when it is a member
    /// (drives deque affinity for submissions and the own-deque-first /
    /// steal-last search order). `None` for outsiders — e.g. a thread of a
    /// different nesting level touching this team's queue.
    fn my_thread_num(&self) -> Option<usize> {
        let frame = context::current_frame()?;
        std::ptr::eq(Arc::as_ptr(&frame.team), self as *const Team).then_some(frame.thread_num)
    }

    /// Submit a task (§III-E). `deferred == false` corresponds to an
    /// `if(false)` clause: the task executes immediately on this thread.
    ///
    /// The body is wrapped so that, on whichever thread runs it, a task
    /// frame is pushed (nested `task` directives then register as children
    /// of this task) and popped even if the body panics.
    pub fn submit_task(&self, body: Box<dyn FnOnce() + Send>, deferred: bool) -> Arc<TaskNode> {
        self.submit_task_ex(body, deferred, 0, Vec::new())
    }

    /// [`Team::submit_task`] with the full clause set: a `priority(n)` hint
    /// and `depend` items. A task with dependences enters the graph in
    /// [`crate::depgraph`] and runs only after its predecessors retire; an
    /// *undeferred* task with dependences is submitted deferred and then
    /// waited for (it cannot legally run inline ahead of its predecessors).
    ///
    /// The body is additionally tied to the submitting thread's current
    /// `taskgroup`, and installs that group while running so tasks it
    /// spawns — on whatever thread ends up executing it — join too.
    pub fn submit_task_ex(
        &self,
        body: Box<dyn FnOnce() + Send>,
        deferred: bool,
        priority: i64,
        deps: Vec<Dep>,
    ) -> Arc<TaskNode> {
        let membership = depgraph::Membership::enter_current();
        let wrapped = Box::new(move || {
            let frame = context::current_frame();
            if let Some(f) = &frame {
                f.push_task_frame();
            }
            // Pop the frame even on unwind.
            struct PopGuard(Option<std::rc::Rc<context::Frame>>);
            impl Drop for PopGuard {
                fn drop(&mut self) {
                    if let Some(f) = &self.0 {
                        f.pop_task_frame();
                    }
                }
            }
            let _guard = PopGuard(frame);
            let _group = membership.install();
            body();
        });
        let node = if !deps.is_empty() {
            let node = self
                .tasks
                .submit_depend(wrapped, self.my_thread_num(), priority, &deps);
            if !deferred {
                self.wait_node(&node);
            }
            node
        } else if deferred {
            self.tasks
                .submit_with(wrapped, self.my_thread_num(), priority)
        } else {
            self.tasks.run_undeferred(wrapped)
        };
        if let Some(frame) = context::current_frame() {
            frame.register_child(Arc::clone(&node));
        }
        node
    }

    /// Wait for one specific task to complete, executing queued tasks while
    /// waiting. Used for undeferred `depend` tasks: the node may be held on
    /// predecessors, so the wait loop keeps offering to claim it (the claim
    /// succeeds only once the dependence hold clears) and otherwise makes
    /// progress on the queue, with the usual deadline-bounded park.
    pub fn wait_node(&self, node: &TaskNode) {
        let mut spins = sync::spin_iters();
        loop {
            let epoch = self.wake.epoch();
            if node.is_done() || self.cancelled.is_set() {
                return;
            }
            if let Some(body) = node.try_claim() {
                EXEC_DEPTH.with(|d| d.set(d.get() + 1));
                self.tasks.execute_claimed(node, body);
                EXEC_DEPTH.with(|d| d.set(d.get() - 1));
                continue;
            }
            if self.run_one_task() {
                spins = sync::spin_iters();
                continue;
            }
            if spins > 0 {
                spins -= 1;
                sync::spin_hint(spins);
                continue;
            }
            self.park_region(epoch, "taskwait");
        }
    }

    /// Enter a `taskgroup`: every task submitted by this thread — or by a
    /// descendant task, on whatever thread runs it — until the matching
    /// [`Team::taskgroup_end`] belongs to the group.
    pub fn taskgroup_begin(&self) {
        depgraph::push_group(TaskGroup::new(Arc::clone(&self.wake)));
    }

    /// Leave a `taskgroup`: wait until every member task has completed (or
    /// been discarded by `cancel taskgroup` / region cancellation),
    /// executing queued tasks while waiting. The park is region-deadline
    /// bounded like every other construct, so a stuck group trips a typed
    /// `RegionTimeout` instead of hanging.
    pub fn taskgroup_end(&self) {
        let Some(group) = depgraph::pop_group() else {
            return;
        };
        let mut spins = sync::spin_iters();
        loop {
            let epoch = self.wake.epoch();
            if group.live() == 0 || self.cancelled.is_set() {
                return;
            }
            if self.run_one_task() {
                spins = sync::spin_iters();
                continue;
            }
            if spins > 0 {
                spins -= 1;
                sync::spin_hint(spins);
                continue;
            }
            self.park_region(epoch, "taskgroup");
        }
    }

    /// `taskwait`: block until all direct children of the current task are
    /// complete, executing queued tasks while waiting.
    ///
    /// Unclaimed children are preferentially executed *inline* (stack growth
    /// bounded by the task-tree depth); only then are unrelated queued tasks
    /// stolen, up to the per-thread depth limit.
    pub fn taskwait(&self) {
        let frame = match context::current_frame() {
            Some(f) => f,
            None => return,
        };
        let mut spins = sync::spin_iters();
        loop {
            let epoch = self.wake.epoch();
            // Cancellation point: a cancelled/poisoned region's `taskwait`
            // releases immediately (queued children were discarded by the
            // cancel; an in-progress child may still be finishing on another
            // thread, which never touches this thread's stack).
            if self.cancelled.is_set() {
                return;
            }
            frame.prune_done_children();
            let children = frame.current_children();
            if children.iter().all(|c| c.is_done()) {
                return;
            }
            // Run one of our own pending children inline, if claimable.
            let mut ran_child = false;
            for child in &children {
                if let Some(body) = child.try_claim() {
                    EXEC_DEPTH.with(|d| d.set(d.get() + 1));
                    self.tasks.execute_claimed(child, body);
                    EXEC_DEPTH.with(|d| d.set(d.get() - 1));
                    ran_child = true;
                    break;
                }
            }
            if ran_child || self.run_one_task() {
                spins = sync::spin_iters();
                continue;
            }
            // Nothing runnable: a child is in progress on another thread.
            // Spin out the budget, then park until its completion signals
            // (the epoch snapshot above predates the `is_done` checks, so a
            // completion racing with them falls through the park).
            if spins > 0 {
                spins -= 1;
                sync::spin_hint(spins);
                continue;
            }
            self.park_region(epoch, "taskwait");
        }
    }

    /// `taskyield`: offer to run one queued task.
    pub fn taskyield(&self) {
        self.run_one_task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [Backend; 2] {
        [Backend::Mutex, Backend::Atomic]
    }

    #[test]
    fn barrier_synchronizes_phases() {
        for backend in both() {
            let team = Team::new(4, backend);
            let phase_counter = Arc::new(AtomicUsize::new(0));
            let violations = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let team = Arc::clone(&team);
                let phase_counter = Arc::clone(&phase_counter);
                let violations = Arc::clone(&violations);
                handles.push(std::thread::spawn(move || {
                    for phase in 0..10usize {
                        phase_counter.fetch_add(1, Ordering::SeqCst);
                        team.barrier();
                        // After barrier `phase + 1` full rounds completed.
                        let count = phase_counter.load(Ordering::SeqCst);
                        if count < (phase + 1) * 4 {
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                        team.barrier();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(violations.load(Ordering::SeqCst), 0, "{backend:?}");
        }
    }

    #[test]
    fn barrier_drains_tasks() {
        for backend in both() {
            let team = Team::new(2, backend);
            let hits = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for t in 0..2 {
                let team = Arc::clone(&team);
                let hits = Arc::clone(&hits);
                handles.push(std::thread::spawn(move || {
                    if t == 0 {
                        for _ in 0..50 {
                            let hits = Arc::clone(&hits);
                            team.submit_task(
                                Box::new(move || {
                                    hits.fetch_add(1, Ordering::SeqCst);
                                }),
                                true,
                            );
                        }
                    }
                    team.barrier();
                    // All tasks must be complete once the barrier releases.
                    assert_eq!(hits.load(Ordering::SeqCst), 50);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn single_thread_team_barrier_runs_tasks() {
        for backend in both() {
            let team = Team::new(1, backend);
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            team.submit_task(
                Box::new(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                }),
                true,
            );
            team.barrier();
            assert_eq!(hits.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn undeferred_task_runs_inline() {
        let team = Team::new(2, Backend::Atomic);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        team.submit_task(
            Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
            false,
        );
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(team.tasks().outstanding(), 0);
    }

    #[test]
    fn barrier_reusable_many_generations() {
        let team = Team::new(3, Backend::Atomic);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let team = Arc::clone(&team);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    team.barrier();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
