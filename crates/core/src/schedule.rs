//! Loop iteration-space math and scheduling policies.
//!
//! Implements the paper's `for_bounds` / `for_init` / `for_next` triple
//! (Fig. 3): the iteration space — possibly collapsed from nested loops — is
//! flattened to `0..total`, chunks of that flat space are claimed according
//! to the schedule, and the caller iterates each claimed chunk with an
//! ordinary `for`/`range` loop.

use std::sync::Arc;

use crate::adaptive;
use crate::directive::ScheduleKind;
use crate::error::OmpError;
use crate::faults::{self, FaultSite};
use crate::icv::Icvs;
use crate::ompt;
use crate::worksharing::WsInstance;

/// A (possibly collapsed) loop iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDims {
    dims: Vec<(i64, i64, i64)>,
    sizes: Vec<u64>,
    total: u64,
}

impl LoopDims {
    /// Build from `(start, stop, step)` triplets, outermost first — the
    /// paper's `for_bounds([start, end, step, …])`.
    ///
    /// # Errors
    ///
    /// Returns [`OmpError::InvalidLoop`] if any step is zero.
    pub fn new(triplets: &[(i64, i64, i64)]) -> Result<LoopDims, OmpError> {
        if triplets.is_empty() {
            return Err(OmpError::InvalidLoop(
                "loop requires at least one dimension".into(),
            ));
        }
        let mut sizes = Vec::with_capacity(triplets.len());
        let mut total: u64 = 1;
        for &(start, stop, step) in triplets {
            if step == 0 {
                return Err(OmpError::InvalidLoop("loop step must not be zero".into()));
            }
            let len = minipy_range_len(start, stop, step);
            sizes.push(len);
            total = total.saturating_mul(len);
        }
        Ok(LoopDims {
            dims: triplets.to_vec(),
            sizes,
            total,
        })
    }

    /// Convenience: a single `0..n` dimension.
    pub fn simple(n: i64) -> LoopDims {
        LoopDims::new(&[(0, n, 1)]).expect("step 1 is valid")
    }

    /// Total flattened iterations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of collapsed dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The triplet for dimension `d`.
    pub fn dim(&self, d: usize) -> (i64, i64, i64) {
        self.dims[d]
    }

    /// Map a flattened index to the loop-variable values, outermost first.
    pub fn vars_of(&self, mut flat: u64) -> Vec<i64> {
        let mut out = vec![0i64; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            let size = self.sizes[d].max(1);
            let idx = flat % size;
            flat /= size;
            let (start, _, step) = self.dims[d];
            out[d] = start + idx as i64 * step;
        }
        out
    }

    /// For rank-1 loops: the flattened index of loop-variable value `v`.
    pub fn flat_of_var(&self, v: i64) -> u64 {
        let (start, _, step) = self.dims[0];
        ((v - start) / step) as u64
    }

    /// For rank-1 loops: map a flat chunk `[lo, hi)` to loop-variable
    /// `(first, past_end, step)` usable with a `range`-style loop.
    pub fn var_chunk(&self, lo: u64, hi: u64) -> (i64, i64, i64) {
        let (start, _, step) = self.dims[0];
        (start + lo as i64 * step, start + hi as i64 * step, step)
    }
}

/// `range(start, stop, step)` length (shared semantics with minipy).
fn minipy_range_len(start: i64, stop: i64, step: i64) -> u64 {
    if step > 0 {
        if stop > start {
            ((stop - start + step - 1) / step) as u64
        } else {
            0
        }
    } else if start > stop {
        ((start - stop + (-step) - 1) / (-step)) as u64
    } else {
        0
    }
}

/// A schedule with its chunk parameter resolved against the ICVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedSchedule {
    /// Effective kind (`auto`/`runtime` already resolved away).
    pub kind: ScheduleKind,
    /// Effective chunk (minimum chunk for guided).
    pub chunk: u64,
    /// Whether a chunk was explicitly requested (static semantics differ).
    pub explicit_chunk: bool,
}

impl ResolvedSchedule {
    /// Resolve a `schedule(...)` clause (or its absence) per the spec:
    /// no clause → `def-sched-var`; `runtime` → `run-sched-var`; `auto` →
    /// implementation choice.
    ///
    /// This is the *non-adaptive* resolution, where the implementation choice
    /// for `auto` is its historical alias: `static`. Loop drivers that know
    /// their loop identity resolve through [`crate::adaptive::resolve`]
    /// instead, which picks (and re-picks) a policy from measured feedback;
    /// it falls back to this function when adaptation is disabled or does not
    /// apply.
    pub fn resolve(clause: Option<(ScheduleKind, Option<u64>)>) -> ResolvedSchedule {
        let icvs = Icvs::current();
        let (mut kind, mut chunk) = match clause {
            Some(spec) => spec,
            None => icvs.def_schedule,
        };
        if kind == ScheduleKind::Runtime {
            (kind, chunk) = icvs.run_schedule;
        }
        if kind == ScheduleKind::Auto || kind == ScheduleKind::Runtime {
            kind = ScheduleKind::Static;
        }
        ResolvedSchedule {
            kind,
            chunk: chunk.unwrap_or(1).max(1),
            explicit_chunk: chunk.is_some(),
        }
    }
}

/// Loop driver state: the paper's `__omp_bounds` object.
///
/// Built by `for_bounds`+`for_init`, advanced by [`ForBounds::next`] (the
/// paper's `for_next`), which fills [`ForBounds::lo`]/[`ForBounds::hi`] with
/// the current chunk in flattened-iteration space.
#[derive(Debug)]
pub struct ForBounds {
    /// The iteration space.
    pub dims: LoopDims,
    /// Resolved schedule.
    pub sched: ResolvedSchedule,
    /// Current chunk start (flat), valid after `next` returns `true`.
    pub lo: u64,
    /// Current chunk end (flat, exclusive).
    pub hi: u64,
    /// Whether the current chunk contains the sequentially-last iteration
    /// (drives `lastprivate`).
    pub is_last: bool,
    thread_num: usize,
    nthreads: usize,
    /// Static schedule: index of this thread's next chunk.
    next_chunk: u64,
    /// Static-no-chunk: whether the single block was already produced.
    block_done: bool,
    /// Shared instance for dynamic/guided/ordered coordination.
    instance: Option<Arc<WsInstance>>,
    /// Wall-clock start of the chunk currently being executed by the caller
    /// (set when the [`crate::ompt`] layer is enabled or the loop is
    /// adaptively tracked).
    prof_chunk_start: Option<std::time::Instant>,
    /// Iteration count of the chunk being timed.
    prof_chunk_iters: u64,
    /// Whether the current chunk's `ChunkClaim` event was recorded (so its
    /// `ChunkDone` keeps the stream balanced even if the profiler toggles).
    prof_chunk_recorded: bool,
    /// Adaptive feedback: the per-team-instance tracker this thread reports
    /// to (see [`crate::adaptive::InstanceTracker`]).
    adapt: Option<Arc<adaptive::InstanceTracker>>,
    /// Adaptive: nanoseconds this thread spent executing chunk bodies.
    adapt_ns: u64,
    /// Adaptive: chunks claimed by this thread.
    adapt_chunks: u64,
    /// Adaptive: iterations executed by this thread.
    adapt_iters: u64,
    /// Whether this thread's report was already filed.
    adapt_reported: bool,
}

impl ForBounds {
    /// Initialize loop state — the paper's `for_init`.
    ///
    /// `instance` must be the team's shared work-sharing instance when the
    /// schedule is dynamic/guided or the loop is `ordered`; a `None` instance
    /// restricts the loop to static scheduling.
    pub fn init(
        dims: LoopDims,
        sched: ResolvedSchedule,
        thread_num: usize,
        nthreads: usize,
        instance: Option<Arc<WsInstance>>,
    ) -> ForBounds {
        ForBounds {
            dims,
            sched,
            lo: 0,
            hi: 0,
            is_last: false,
            thread_num,
            nthreads: nthreads.max(1),
            next_chunk: thread_num as u64,
            block_done: false,
            instance,
            prof_chunk_start: None,
            prof_chunk_iters: 0,
            prof_chunk_recorded: false,
            adapt: None,
            adapt_ns: 0,
            adapt_chunks: 0,
            adapt_iters: 0,
            adapt_reported: false,
        }
    }

    /// The shared instance, when one is attached.
    pub fn instance(&self) -> Option<&Arc<WsInstance>> {
        self.instance.as_ref()
    }

    /// Attach adaptive-feedback tracking (see [`crate::adaptive`]): every
    /// chunk is timed and a per-thread [`adaptive::ThreadReport`] is filed
    /// with the instance's tracker when this thread's share is exhausted (or
    /// the driver is dropped — cancellation and panics still complete the
    /// measurement window).
    pub fn track_adaptive(&mut self, tracker: Arc<adaptive::InstanceTracker>) {
        self.adapt = Some(tracker);
    }

    /// Claim the next chunk — the paper's `for_next`. Returns `false` when
    /// the thread's share of the iteration space is exhausted, or when the
    /// loop (or its whole region) has been cancelled — every chunk claim is
    /// a cancellation point, so all four execution modes stop distributing
    /// iterations as soon as `cancel for` is observed.
    // Deliberately named after the paper's `for_next`, not an Iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> bool {
        // The previous chunk (if the profiler timed one) ends at the next
        // claim — or at the terminal call that returns `false`, which every
        // loop driver makes.
        self.finish_profiled_chunk();
        let total = self.dims.total();
        if total == 0 {
            self.file_adaptive_report();
            return false;
        }
        faults::on_event(FaultSite::ChunkClaim);
        if let Some(inst) = &self.instance {
            if inst.is_cancelled() {
                self.file_adaptive_report();
                return false;
            }
        }
        let claimed = match self.sched.kind {
            ScheduleKind::Static if !self.sched.explicit_chunk => self.next_static_block(total),
            ScheduleKind::Static => self.next_static_chunked(total),
            ScheduleKind::Dynamic => self.next_dynamic(total),
            ScheduleKind::Guided => self.next_guided(total),
            // Resolved away in `ResolvedSchedule::resolve`.
            ScheduleKind::Auto | ScheduleKind::Runtime => self.next_static_block(total),
        };
        if claimed {
            self.is_last = self.hi == total;
            self.prof_chunk_recorded = ompt::enabled();
            if self.prof_chunk_recorded {
                ompt::record_here(ompt::EventKind::ChunkClaim {
                    lo: self.lo,
                    hi: self.hi,
                });
            }
            if self.prof_chunk_recorded || self.adapt.is_some() {
                self.prof_chunk_start = Some(std::time::Instant::now());
                self.prof_chunk_iters = self.hi - self.lo;
            }
        } else {
            self.file_adaptive_report();
        }
        claimed
    }

    fn finish_profiled_chunk(&mut self) {
        if let Some(start) = self.prof_chunk_start.take() {
            let ns = start.elapsed().as_nanos() as u64;
            if self.prof_chunk_recorded {
                ompt::record_here(ompt::EventKind::ChunkDone {
                    iters: self.prof_chunk_iters,
                    ns,
                });
                self.prof_chunk_recorded = false;
            }
            if self.adapt.is_some() {
                self.adapt_ns += ns;
                self.adapt_chunks += 1;
                self.adapt_iters += self.prof_chunk_iters;
            }
        }
    }

    /// File this thread's measurements with the instance tracker, once.
    fn file_adaptive_report(&mut self) {
        if self.adapt_reported {
            return;
        }
        if let Some(tracker) = &self.adapt {
            self.adapt_reported = true;
            tracker.report(adaptive::ThreadReport {
                ns: self.adapt_ns,
                chunks: self.adapt_chunks,
                iters: self.adapt_iters,
            });
        }
    }

    /// Static without a chunk: one contiguous block per thread, sizes
    /// differing by at most one iteration.
    fn next_static_block(&mut self, total: u64) -> bool {
        if self.block_done {
            return false;
        }
        self.block_done = true;
        let t = self.thread_num as u64;
        let n = self.nthreads as u64;
        let base = total / n;
        let rem = total % n;
        let lo = t * base + t.min(rem);
        let len = base + u64::from(t < rem);
        if len == 0 {
            return false;
        }
        self.lo = lo;
        self.hi = lo + len;
        true
    }

    /// Static with chunk `c`: chunks assigned round-robin in advance.
    fn next_static_chunked(&mut self, total: u64) -> bool {
        let c = self.sched.chunk;
        let lo = self.next_chunk * c;
        if lo >= total {
            return false;
        }
        self.lo = lo;
        self.hi = (lo + c).min(total);
        self.next_chunk += self.nthreads as u64;
        true
    }

    /// Dynamic: claim `chunk` iterations from the shared counter.
    fn next_dynamic(&mut self, total: u64) -> bool {
        let inst = self
            .instance
            .as_ref()
            .expect("dynamic schedule requires a shared instance");
        let c = self.sched.chunk;
        let lo = inst.counter.fetch_add(c);
        if lo >= total {
            return false;
        }
        self.lo = lo;
        self.hi = (lo + c).min(total);
        true
    }

    /// Guided: claim decreasing chunk sizes, never below the minimum chunk.
    fn next_guided(&mut self, total: u64) -> bool {
        let inst = self
            .instance
            .as_ref()
            .expect("guided schedule requires a shared instance");
        let min_chunk = self.sched.chunk;
        let n = self.nthreads as u64;
        let result = inst.counter.fetch_update(|cur| {
            if cur >= total {
                return None;
            }
            let remaining = total - cur;
            let size = (remaining.div_ceil(2 * n)).max(min_chunk).min(remaining);
            Some(cur + size)
        });
        match result {
            Ok(prev) => {
                let remaining = total - prev;
                let size = (remaining.div_ceil(2 * n)).max(min_chunk).min(remaining);
                self.lo = prev;
                self.hi = prev + size;
                true
            }
            Err(_) => false,
        }
    }
}

impl Drop for ForBounds {
    /// A driver abandoned mid-loop (cancellation observed by the caller, or
    /// a panicking chunk body) still closes its timed chunk and files its
    /// adaptive report, so measurement windows always complete.
    fn drop(&mut self) {
        self.finish_profiled_chunk();
        self.file_adaptive_report();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{Backend, Notifier};
    use crate::worksharing::WorkshareRegistry;

    fn sched(kind: ScheduleKind, chunk: Option<u64>) -> ResolvedSchedule {
        ResolvedSchedule {
            kind,
            chunk: chunk.unwrap_or(1).max(1),
            explicit_chunk: chunk.is_some(),
        }
    }

    fn collect_iters(
        kind: ScheduleKind,
        chunk: Option<u64>,
        total: i64,
        nthreads: usize,
    ) -> Vec<Vec<u64>> {
        let reg = WorkshareRegistry::new(Backend::Atomic, nthreads, Arc::new(Notifier::new()));
        let inst = reg.enter(0);
        (0..nthreads)
            .map(|t| {
                let mut fb = ForBounds::init(
                    LoopDims::simple(total),
                    sched(kind, chunk),
                    t,
                    nthreads,
                    Some(Arc::clone(&inst)),
                );
                let mut got = Vec::new();
                while fb.next() {
                    got.extend(fb.lo..fb.hi);
                }
                got
            })
            .collect()
    }

    fn assert_complete_partition(per_thread: &[Vec<u64>], total: u64) {
        let mut all: Vec<u64> = per_thread.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..total).collect();
        assert_eq!(all, expect, "iterations must partition 0..{total}");
    }

    #[test]
    fn static_block_partition_exact() {
        for (total, threads) in [(10i64, 3usize), (7, 7), (5, 8), (100, 4), (1, 1)] {
            let per = collect_iters(ScheduleKind::Static, None, total, threads);
            assert_complete_partition(&per, total as u64);
            // Block sizes differ by at most one.
            let sizes: Vec<usize> = per.iter().map(Vec::len).collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            assert!(max - min <= 1, "uneven static blocks: {sizes:?}");
            // Blocks are contiguous and in thread order.
            let flattened: Vec<u64> = per.iter().flatten().copied().collect();
            assert!(flattened.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn static_chunked_round_robin() {
        let per = collect_iters(ScheduleKind::Static, Some(2), 10, 2);
        // thread 0: chunks 0,2,4 → iters 0,1,4,5,8,9 ; thread 1: 2,3,6,7
        assert_eq!(per[0], vec![0, 1, 4, 5, 8, 9]);
        assert_eq!(per[1], vec![2, 3, 6, 7]);
    }

    #[test]
    fn dynamic_partition_complete() {
        // Sequential claim order from one shared instance is a partition.
        let per = collect_iters(ScheduleKind::Dynamic, Some(3), 20, 4);
        assert_complete_partition(&per, 20);
    }

    #[test]
    fn guided_partition_complete_and_decreasing() {
        let per = collect_iters(ScheduleKind::Guided, Some(1), 100, 4);
        assert_complete_partition(&per, 100);
    }

    #[test]
    fn guided_respects_min_chunk() {
        let reg = WorkshareRegistry::new(Backend::Atomic, 2, Arc::new(Notifier::new()));
        let inst = reg.enter(0);
        let mut fb = ForBounds::init(
            LoopDims::simple(100),
            sched(ScheduleKind::Guided, Some(10)),
            0,
            2,
            Some(inst),
        );
        let mut sizes = Vec::new();
        while fb.next() {
            sizes.push(fb.hi - fb.lo);
        }
        assert!(
            sizes[..sizes.len() - 1].iter().all(|&s| s >= 10),
            "sizes: {sizes:?}"
        );
        // First chunk is the largest (guided decreases).
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "sizes: {sizes:?}");
    }

    #[test]
    fn is_last_set_on_final_chunk() {
        let per_thread = 2usize;
        let reg = WorkshareRegistry::new(Backend::Atomic, per_thread, Arc::new(Notifier::new()));
        let inst = reg.enter(0);
        let mut last_flags = Vec::new();
        for t in 0..per_thread {
            let mut fb = ForBounds::init(
                LoopDims::simple(10),
                sched(ScheduleKind::Static, None),
                t,
                per_thread,
                Some(Arc::clone(&inst)),
            );
            while fb.next() {
                last_flags.push((t, fb.is_last));
            }
        }
        let lasts: Vec<_> = last_flags.iter().filter(|(_, l)| *l).collect();
        assert_eq!(lasts.len(), 1);
        assert_eq!(lasts[0].0, per_thread - 1); // static: last thread owns the tail
    }

    #[test]
    fn empty_and_negative_ranges() {
        assert_eq!(LoopDims::new(&[(0, 0, 1)]).unwrap().total(), 0);
        assert_eq!(LoopDims::new(&[(5, 0, 1)]).unwrap().total(), 0);
        assert_eq!(LoopDims::new(&[(10, 0, -2)]).unwrap().total(), 5);
        assert!(LoopDims::new(&[(0, 5, 0)]).is_err());
        let mut fb = ForBounds::init(
            LoopDims::simple(0),
            sched(ScheduleKind::Static, None),
            0,
            4,
            None,
        );
        assert!(!fb.next());
    }

    #[test]
    fn collapse_flattening_maps_vars() {
        // for i in range(0, 3): for j in range(10, 30, 10)
        let dims = LoopDims::new(&[(0, 3, 1), (10, 30, 10)]).unwrap();
        assert_eq!(dims.total(), 6);
        assert_eq!(dims.vars_of(0), vec![0, 10]);
        assert_eq!(dims.vars_of(1), vec![0, 20]);
        assert_eq!(dims.vars_of(2), vec![1, 10]);
        assert_eq!(dims.vars_of(5), vec![2, 20]);
    }

    #[test]
    fn var_chunk_respects_step() {
        let dims = LoopDims::new(&[(10, 30, 5)]).unwrap(); // 10, 15, 20, 25
        assert_eq!(dims.total(), 4);
        assert_eq!(dims.var_chunk(1, 3), (15, 25, 5));
        assert_eq!(dims.flat_of_var(20), 2);
        let dims = LoopDims::new(&[(10, 0, -3)]).unwrap(); // 10, 7, 4, 1
        assert_eq!(dims.total(), 4);
        assert_eq!(dims.var_chunk(0, 2), (10, 4, -3));
    }

    #[test]
    fn more_threads_than_iterations() {
        let per = collect_iters(ScheduleKind::Static, None, 3, 8);
        assert_complete_partition(&per, 3);
        assert!(per[3..].iter().all(Vec::is_empty));
    }

    #[test]
    fn resolve_uses_icvs_for_runtime() {
        let _guard = crate::icv::test_guard();
        let before = Icvs::current();
        Icvs::update(|i| i.run_schedule = (ScheduleKind::Dynamic, Some(7)));
        let r = ResolvedSchedule::resolve(Some((ScheduleKind::Runtime, None)));
        assert_eq!(r.kind, ScheduleKind::Dynamic);
        assert_eq!(r.chunk, 7);
        Icvs::reset(before);
    }

    #[test]
    fn resolve_auto_aliases_static_on_the_non_adaptive_path() {
        // `ResolvedSchedule::resolve` is the fallback used when the adaptive
        // layer is off or no loop identity is available; there `auto` keeps
        // its historical alias. The feedback-driven resolution of `auto`
        // lives in (and is tested by) `crate::adaptive`.
        let r = ResolvedSchedule::resolve(Some((ScheduleKind::Auto, None)));
        assert_eq!(r.kind, ScheduleKind::Static);
        assert!(!r.explicit_chunk);
    }

    #[test]
    fn tracked_driver_files_one_report_per_thread() {
        let key = 0x5ced_0001u64;
        adaptive::forget(key);
        let nthreads = 2usize;
        let reg = WorkshareRegistry::new(Backend::Atomic, nthreads, Arc::new(Notifier::new()));
        let inst = reg.enter(0);
        // Both threads resolve through the instance's decision slot — the
        // same call shape the loop drivers use.
        let (resolved, tracker) = adaptive::resolve(
            Some((ScheduleKind::Auto, None)),
            key,
            40,
            nthreads,
            false,
            inst.adaptive_slot(),
        );
        let tracker = tracker.expect("auto is tracked");
        for t in 0..nthreads {
            let mut fb = ForBounds::init(
                LoopDims::simple(40),
                resolved,
                t,
                nthreads,
                Some(Arc::clone(&inst)),
            );
            fb.track_adaptive(Arc::clone(&tracker));
            while fb.next() {}
        }
        // Both threads reported, so the measurement window folded: the next
        // instance draws on a completed history.
        let snap = adaptive::snapshot(key).expect("history exists");
        assert_eq!(snap.instances, 1);
        assert!(snap.last_mean_chunk_ns > 0 || snap.rechunks <= 1);
        adaptive::forget(key);
    }
}
