//! Internal control variables (ICVs) and `OMP_*` environment handling.
//!
//! OpenMP 3.0 defines a set of ICVs initialized from environment variables
//! and mutable through the runtime API (`omp_set_num_threads`,
//! `omp_set_schedule`, …). This implementation keeps one global ICV set
//! (the spec's per-task ICV inheritance is simplified to global state, which
//! matches how the benchmarks — and most programs — use them).

use std::sync::OnceLock;

use parking_lot::RwLock;

use crate::adaptive::AdaptiveMode;
use crate::directive::ScheduleKind;

/// The mutable ICV set.
#[derive(Debug, Clone, PartialEq)]
pub struct Icvs {
    /// `nthreads-var`: default team size (`OMP_NUM_THREADS`).
    pub num_threads: usize,
    /// `dyn-var`: dynamic adjustment of team size (`OMP_DYNAMIC`).
    pub dynamic: bool,
    /// `nest-var`: nested parallelism enabled (`OMP_NESTED`).
    pub nested: bool,
    /// `max-active-levels-var` (`OMP_MAX_ACTIVE_LEVELS`).
    pub max_active_levels: usize,
    /// `thread-limit-var` (`OMP_THREAD_LIMIT`).
    pub thread_limit: usize,
    /// `run-sched-var`: the `schedule(runtime)` policy (`OMP_SCHEDULE`).
    pub run_schedule: (ScheduleKind, Option<u64>),
    /// `def-sched-var`: policy when no `schedule` clause is given.
    pub def_schedule: (ScheduleKind, Option<u64>),
    /// `cancel-var`: whether `cancel` directives are honoured
    /// (`OMP_CANCELLATION`). Poisoning after a panic ignores this — it is a
    /// runtime-integrity mechanism, not user-requested cancellation.
    pub cancellation: bool,
    /// `tool-var`: the [`crate::ompt`] observability configuration
    /// (`OMP_TOOL`). `None` — the default — means the profiler stays a
    /// no-op; see [`crate::ompt::ToolConfig::parse`] for the syntax.
    pub tool: Option<crate::ompt::ToolConfig>,
    /// How much scheduling the feedback-driven [`crate::adaptive`] layer may
    /// take over (`OMP4RS_ADAPTIVE`). `Off`: `auto` falls back to its
    /// pre-adaptive alias, `static`. `AutoOnly`: only explicit
    /// `schedule(auto)` adapts. `Full` (default): clause-less interpreted
    /// loops are also treated as `auto` — see `docs/ENVIRONMENT.md` for the
    /// determinism trade-off this implies.
    pub adaptive: AdaptiveMode,
    /// Override for the per-thread task steal-deque capacity
    /// (`OMP4RS_STEAL_CAP`). `None` sizes deques from recorded queue
    /// high-water marks; see [`crate::tasks`].
    pub steal_cap: Option<usize>,
    /// The minipy bytecode-tier setting (`OMP4RS_MINIPY_VM`). The core
    /// runtime has no interpreter dependency, so this is configuration only;
    /// the pyfront bridge mirrors it into `minipy::bytecode::set_mode` when
    /// an interpreter is installed. See `docs/ENVIRONMENT.md`.
    pub minipy_vm: MinipyVm,
    /// The minipy VM quickening-tier setting (`OMP4RS_MINIPY_QUICKEN`).
    /// Like [`Icvs::minipy_vm`], configuration only: the pyfront bridge
    /// mirrors it into `minipy::bytecode::set_quicken_mode` when an
    /// interpreter is installed. See `docs/ENVIRONMENT.md`.
    pub minipy_quicken: MinipyQuicken,
    /// `wait-policy-var`: what waiting threads do (`OMP_WAIT_POLICY`).
    /// `Active` spins a large bounded budget before parking; `Passive` (the
    /// default) parks almost immediately. Resolved to a spin-iteration
    /// budget cached in [`crate::sync`] on every store mutation.
    pub wait_policy: crate::sync::WaitPolicy,
    /// Spin-iteration override (`OMP4RS_SPIN`): exact iterations every wait
    /// burns before parking, trumping the policy's default budget. `0`
    /// means park immediately even under `Active`.
    pub spin: Option<u32>,
    /// Whether top-level regions use the persistent worker pool
    /// (`OMP4RS_POOL`, default `true`). `false` forces the per-region
    /// scoped-spawn path everywhere — the pre-hot-team behaviour — so the
    /// pool's benefit can be measured as an A/B under identical host
    /// conditions (see `syncbench`'s spawn-baseline rows).
    pub pool: bool,
    /// Worker-pool shard count (`OMP4RS_POOL_SHARDS`). Each shard owns its
    /// own idle stack and admission budget, so same-shard dispatch traffic
    /// never contends with other shards; masters are sticky to a home
    /// shard and a dry shard steals idle workers from siblings. `None`
    /// (the default) resolves to the host's available parallelism; `1`
    /// reproduces the pre-sharding single-pool behaviour exactly (for
    /// A/B). Sampled once, when the pool first dispatches — later changes
    /// have no effect. Clamped to `[1, 64]`.
    pub pool_shards: Option<usize>,
    /// Optional per-region deadline (`OMP4RS_REGION_DEADLINE`, milliseconds;
    /// `omp_set_region_deadline`). When set, every blocking runtime wait
    /// inside a parallel region — barriers, `taskwait`, task-group joins,
    /// `critical`, nest-lock acquisition — is bounded: a wait still pending
    /// when the region has run past the deadline poisons the region and
    /// surfaces [`crate::OmpError::RegionTimeout`] on the joining thread.
    /// `None` (the default) keeps every wait untimed and zero-overhead.
    pub region_deadline: Option<std::time::Duration>,
    /// Optional stall-watchdog threshold (`OMP4RS_WATCHDOG`, milliseconds).
    /// When set, the worker pool runs a monitor thread that flags any pooled
    /// worker busy inside a single region job for longer than this
    /// threshold: it records a diagnostic snapshot through [`crate::ompt`]
    /// (`watchdog-stall` events, `omp4rs.watchdog.*` counters) and poisons
    /// the afflicted team so its region fails with
    /// [`crate::OmpError::RegionTimeout`] instead of hanging. `None` (the
    /// default) never starts the monitor thread.
    pub watchdog: Option<std::time::Duration>,
}

/// Tri-state for the minipy bytecode VM (`OMP4RS_MINIPY_VM`); mirrors
/// `minipy::bytecode::VmMode` without pulling the interpreter into the core
/// runtime's dependency graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MinipyVm {
    /// Tree-walk everything (the pre-VM interpreter).
    Off,
    /// Compile VM-supported functions lazily on first call. The default.
    #[default]
    Auto,
    /// Like `Auto`, plus eager compilation at `@omp` decoration time.
    On,
}

impl MinipyVm {
    /// Parse the `OMP4RS_MINIPY_VM` spellings (same table as
    /// `minipy::bytecode::VmMode::parse`). `None` keeps the default.
    pub fn parse(text: &str) -> Option<MinipyVm> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "false" | "0" | "no" => Some(MinipyVm::Off),
            "auto" => Some(MinipyVm::Auto),
            "on" | "true" | "1" | "yes" => Some(MinipyVm::On),
            _ => None,
        }
    }
}

/// Tri-state for the minipy VM's quickening tier (`OMP4RS_MINIPY_QUICKEN`);
/// mirrors `minipy::bytecode::QuickenMode` without pulling the interpreter
/// into the core runtime's dependency graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MinipyQuicken {
    /// Generic tier-1 dispatch only (no quickening, no inline caches).
    Off,
    /// Quickened opcodes and inline caches, boxed registers. The default.
    #[default]
    Auto,
    /// Like `Auto`, plus the unboxed per-frame register tag plane.
    On,
}

impl MinipyQuicken {
    /// Parse the `OMP4RS_MINIPY_QUICKEN` spellings (same table as
    /// `minipy::bytecode::QuickenMode::parse`). `None` keeps the default.
    pub fn parse(text: &str) -> Option<MinipyQuicken> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "false" | "0" | "no" => Some(MinipyQuicken::Off),
            "auto" => Some(MinipyQuicken::Auto),
            "on" | "true" | "1" | "yes" => Some(MinipyQuicken::On),
            _ => None,
        }
    }
}

impl Default for Icvs {
    fn default() -> Icvs {
        Icvs {
            num_threads: available_parallelism(),
            dynamic: false,
            nested: false,
            max_active_levels: usize::MAX,
            thread_limit: usize::MAX,
            run_schedule: (ScheduleKind::Static, None),
            def_schedule: (ScheduleKind::Static, None),
            cancellation: false,
            tool: None,
            adaptive: AdaptiveMode::Full,
            steal_cap: None,
            minipy_vm: MinipyVm::Auto,
            minipy_quicken: MinipyQuicken::Auto,
            wait_policy: crate::sync::WaitPolicy::Passive,
            spin: None,
            pool: true,
            pool_shards: None,
            region_deadline: None,
            watchdog: None,
        }
    }
}

/// Host parallelism (used for `omp_get_num_procs` and the default team size).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn store() -> &'static RwLock<Icvs> {
    static STORE: OnceLock<RwLock<Icvs>> = OnceLock::new();
    STORE.get_or_init(|| {
        let icvs = Icvs::from_env();
        crate::sync::refresh_wait_config(icvs.wait_policy, icvs.spin);
        RwLock::new(icvs)
    })
}

impl Icvs {
    /// Build an ICV set from `OMP_*` environment variables.
    pub fn from_env() -> Icvs {
        let mut icvs = Icvs::default();
        if let Some(n) = env_usize("OMP_NUM_THREADS") {
            if n > 0 {
                icvs.num_threads = n;
            }
        }
        if let Some(b) = env_bool("OMP_DYNAMIC") {
            icvs.dynamic = b;
        }
        if let Some(b) = env_bool("OMP_NESTED") {
            icvs.nested = b;
        }
        if let Some(n) = env_usize("OMP_MAX_ACTIVE_LEVELS") {
            icvs.max_active_levels = n;
        }
        if let Some(n) = env_usize("OMP_THREAD_LIMIT") {
            if n > 0 {
                icvs.thread_limit = n;
            }
        }
        if let Ok(text) = std::env::var("OMP_SCHEDULE") {
            if let Some(sched) = parse_omp_schedule(&text) {
                icvs.run_schedule = sched;
            }
        }
        if let Some(b) = env_bool("OMP_CANCELLATION") {
            icvs.cancellation = b;
        }
        if let Ok(text) = std::env::var("OMP_TOOL") {
            icvs.tool = crate::ompt::ToolConfig::parse(&text);
        }
        // Trace-pipeline knobs layer onto the tool config (they are inert
        // when OMP_TOOL left the tool disabled).
        if let Some(tool) = icvs.tool.as_mut() {
            if let Some(n) = env_usize("OMP4RS_TRACE_RING") {
                if n > 0 {
                    tool.ring_capacity = n;
                }
            }
            if let Ok(text) = std::env::var("OMP4RS_TRACE_POLICY") {
                if let Some(policy) = crate::ompt::TracePolicy::parse(&text) {
                    tool.policy = policy;
                }
            }
            if let Some(kib) = env_usize("OMP4RS_TRACE_ROTATE") {
                if kib > 0 {
                    tool.rotate_kib = Some(kib as u64);
                }
            }
            if let Some(n) = env_usize("OMP4RS_TRACE_ROTATE_KEEP") {
                if n > 0 {
                    tool.rotate_keep = n;
                }
            }
        }
        if let Ok(text) = std::env::var("OMP4RS_ADAPTIVE") {
            if let Some(mode) = AdaptiveMode::parse(&text) {
                icvs.adaptive = mode;
            }
        }
        if let Some(n) = env_usize("OMP4RS_STEAL_CAP") {
            if n > 0 {
                icvs.steal_cap = Some(n);
            }
        }
        if let Ok(text) = std::env::var("OMP4RS_MINIPY_VM") {
            if let Some(vm) = MinipyVm::parse(&text) {
                icvs.minipy_vm = vm;
            }
        }
        if let Ok(text) = std::env::var("OMP4RS_MINIPY_QUICKEN") {
            if let Some(q) = MinipyQuicken::parse(&text) {
                icvs.minipy_quicken = q;
            }
        }
        if let Ok(text) = std::env::var("OMP_WAIT_POLICY") {
            if let Some(policy) = crate::sync::WaitPolicy::parse(&text) {
                icvs.wait_policy = policy;
            }
        }
        if let Ok(text) = std::env::var("OMP4RS_SPIN") {
            if let Ok(n) = text.trim().parse::<u32>() {
                icvs.spin = Some(n);
            }
        }
        if let Some(b) = env_bool("OMP4RS_POOL") {
            icvs.pool = b;
        }
        if let Some(n) = env_usize("OMP4RS_POOL_SHARDS") {
            if n > 0 {
                icvs.pool_shards = Some(n.min(64));
            }
        }
        if let Some(ms) = env_usize("OMP4RS_REGION_DEADLINE") {
            if ms > 0 {
                icvs.region_deadline = Some(std::time::Duration::from_millis(ms as u64));
            }
        }
        if let Some(ms) = env_usize("OMP4RS_WATCHDOG") {
            if ms > 0 {
                icvs.watchdog = Some(std::time::Duration::from_millis(ms as u64));
            }
        }
        icvs
    }

    /// Read a snapshot of the current global ICVs.
    pub fn current() -> Icvs {
        store().read().clone()
    }

    /// Mutate the global ICVs.
    pub fn update(f: impl FnOnce(&mut Icvs)) {
        let mut guard = store().write();
        f(&mut guard);
        crate::sync::refresh_wait_config(guard.wait_policy, guard.spin);
    }

    /// Reset the global ICVs (primarily for tests/benchmarks).
    pub fn reset(icvs: Icvs) {
        crate::sync::refresh_wait_config(icvs.wait_policy, icvs.spin);
        *store().write() = icvs;
    }
}

/// Serialize unit tests that mutate the process-global ICVs: `cargo test`
/// runs this binary's tests concurrently, so every test doing a
/// mutate → observe → [`Icvs::reset`] dance must hold this guard across the
/// whole span, or a concurrently constructed object (task queue, resolved
/// schedule, …) silently picks up its override.
#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    static GUARD: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    GUARD.lock()
}

/// Parse `OMP_SCHEDULE` syntax: `kind[,chunk]`.
pub fn parse_omp_schedule(text: &str) -> Option<(ScheduleKind, Option<u64>)> {
    let mut parts = text.splitn(2, ',');
    let kind = ScheduleKind::parse(parts.next()?.trim())?;
    let chunk = match parts.next() {
        Some(c) => Some(c.trim().parse().ok()?),
        None => None,
    };
    Some((kind, chunk))
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_bool(name: &str) -> Option<bool> {
    match std::env::var(name)
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "true" | "1" | "yes" | "on" => Some(true),
        "false" | "0" | "no" | "off" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let icvs = Icvs::default();
        assert!(icvs.num_threads >= 1);
        assert!(!icvs.dynamic);
        assert!(!icvs.nested);
        assert_eq!(icvs.def_schedule, (ScheduleKind::Static, None));
    }

    #[test]
    fn parse_schedule_env() {
        assert_eq!(
            parse_omp_schedule("dynamic,4"),
            Some((ScheduleKind::Dynamic, Some(4)))
        );
        assert_eq!(
            parse_omp_schedule("guided"),
            Some((ScheduleKind::Guided, None))
        );
        assert_eq!(
            parse_omp_schedule(" static , 16 "),
            Some((ScheduleKind::Static, Some(16)))
        );
        assert_eq!(parse_omp_schedule("bogus"), None);
        assert_eq!(parse_omp_schedule("static,abc"), None);
    }

    #[test]
    fn parse_minipy_vm() {
        assert_eq!(MinipyVm::parse("off"), Some(MinipyVm::Off));
        assert_eq!(MinipyVm::parse(" Auto "), Some(MinipyVm::Auto));
        assert_eq!(MinipyVm::parse("ON"), Some(MinipyVm::On));
        assert_eq!(MinipyVm::parse("maybe"), None);
        assert_eq!(Icvs::default().minipy_vm, MinipyVm::Auto);
    }

    #[test]
    fn parse_minipy_quicken() {
        assert_eq!(MinipyQuicken::parse("off"), Some(MinipyQuicken::Off));
        assert_eq!(MinipyQuicken::parse(" Auto "), Some(MinipyQuicken::Auto));
        assert_eq!(MinipyQuicken::parse("ON"), Some(MinipyQuicken::On));
        assert_eq!(MinipyQuicken::parse("maybe"), None);
        assert_eq!(Icvs::default().minipy_quicken, MinipyQuicken::Auto);
    }

    #[test]
    fn update_round_trips() {
        let _guard = test_guard();
        let before = Icvs::current();
        Icvs::update(|icvs| icvs.num_threads = 7);
        assert_eq!(Icvs::current().num_threads, 7);
        Icvs::reset(before);
    }

    #[test]
    fn wait_policy_env_parsing_and_precedence() {
        use crate::sync::{spin_iters, WaitPolicy};
        let _guard = test_guard();
        let before = Icvs::current();

        // Policy alone: budget comes from the policy default.
        std::env::set_var("OMP_WAIT_POLICY", "active");
        std::env::remove_var("OMP4RS_SPIN");
        let icvs = Icvs::from_env();
        assert_eq!(icvs.wait_policy, WaitPolicy::Active);
        assert_eq!(icvs.spin, None);
        Icvs::reset(icvs);
        assert_eq!(spin_iters(), WaitPolicy::Active.default_spin());

        // OMP4RS_SPIN takes precedence over the policy's default budget.
        std::env::set_var("OMP4RS_SPIN", "7");
        let icvs = Icvs::from_env();
        assert_eq!(icvs.wait_policy, WaitPolicy::Active);
        assert_eq!(icvs.spin, Some(7));
        Icvs::reset(icvs);
        assert_eq!(spin_iters(), 7);

        // Zero is a valid override: park immediately even under Active.
        std::env::set_var("OMP4RS_SPIN", "0");
        let icvs = Icvs::from_env();
        assert_eq!(icvs.spin, Some(0));
        Icvs::reset(icvs);
        assert_eq!(spin_iters(), 0);

        // Unparseable values are ignored, keeping the defaults.
        std::env::set_var("OMP_WAIT_POLICY", "frantic");
        std::env::set_var("OMP4RS_SPIN", "-3");
        let icvs = Icvs::from_env();
        assert_eq!(icvs.wait_policy, WaitPolicy::Passive);
        assert_eq!(icvs.spin, None);

        // Icvs::update republishes the cached budget too.
        std::env::remove_var("OMP_WAIT_POLICY");
        std::env::remove_var("OMP4RS_SPIN");
        Icvs::update(|icvs| icvs.spin = Some(3));
        assert_eq!(spin_iters(), 3);

        Icvs::reset(before);
    }

    #[test]
    fn resilience_env_parsing() {
        let _guard = test_guard();

        assert_eq!(Icvs::default().region_deadline, None);
        assert_eq!(Icvs::default().watchdog, None);

        std::env::set_var("OMP4RS_REGION_DEADLINE", "250");
        std::env::set_var("OMP4RS_WATCHDOG", "100");
        let icvs = Icvs::from_env();
        assert_eq!(
            icvs.region_deadline,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(icvs.watchdog, Some(std::time::Duration::from_millis(100)));

        // Zero and garbage both keep the (disabled) default.
        std::env::set_var("OMP4RS_REGION_DEADLINE", "0");
        std::env::set_var("OMP4RS_WATCHDOG", "soon");
        let icvs = Icvs::from_env();
        assert_eq!(icvs.region_deadline, None);
        assert_eq!(icvs.watchdog, None);

        std::env::remove_var("OMP4RS_REGION_DEADLINE");
        std::env::remove_var("OMP4RS_WATCHDOG");
    }

    #[test]
    fn trace_pipeline_env_parsing() {
        use crate::ompt::TracePolicy;
        let _guard = test_guard();

        // Inert without OMP_TOOL: the knobs only shape an enabled tool.
        std::env::set_var("OMP4RS_TRACE_RING", "128");
        std::env::remove_var("OMP_TOOL");
        assert_eq!(Icvs::from_env().tool, None);

        std::env::set_var("OMP_TOOL", "enabled");
        std::env::set_var("OMP4RS_TRACE_POLICY", "block");
        std::env::set_var("OMP4RS_TRACE_ROTATE", "256");
        std::env::set_var("OMP4RS_TRACE_ROTATE_KEEP", "2");
        let tool = Icvs::from_env().tool.expect("tool enabled");
        assert_eq!(tool.ring_capacity, 128);
        assert_eq!(tool.policy, TracePolicy::Block);
        assert_eq!(tool.rotate_kib, Some(256));
        assert_eq!(tool.rotate_keep, 2);

        // Zero and garbage keep the defaults.
        std::env::set_var("OMP4RS_TRACE_RING", "0");
        std::env::set_var("OMP4RS_TRACE_POLICY", "spill");
        std::env::set_var("OMP4RS_TRACE_ROTATE", "lots");
        std::env::set_var("OMP4RS_TRACE_ROTATE_KEEP", "0");
        let tool = Icvs::from_env().tool.expect("tool enabled");
        assert_eq!(tool.ring_capacity, crate::ompt::DEFAULT_RING_CAPACITY);
        assert_eq!(tool.policy, TracePolicy::DropOldest);
        assert_eq!(tool.rotate_kib, None);
        assert_eq!(tool.rotate_keep, 4);

        for var in [
            "OMP_TOOL",
            "OMP4RS_TRACE_RING",
            "OMP4RS_TRACE_POLICY",
            "OMP4RS_TRACE_ROTATE",
            "OMP4RS_TRACE_ROTATE_KEEP",
        ] {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn pool_env_parsing() {
        let _guard = test_guard();
        let before = Icvs::current();

        assert!(Icvs::default().pool, "the pool must be on by default");

        std::env::set_var("OMP4RS_POOL", "off");
        assert!(!Icvs::from_env().pool);
        std::env::set_var("OMP4RS_POOL", "1");
        assert!(Icvs::from_env().pool);
        // The usual rule: unparseable values keep the default.
        std::env::set_var("OMP4RS_POOL", "sometimes");
        assert!(Icvs::from_env().pool);
        std::env::remove_var("OMP4RS_POOL");
        assert!(Icvs::from_env().pool);

        Icvs::reset(before);
    }

    #[test]
    fn pool_shards_env_parsing() {
        let _guard = test_guard();
        let before = Icvs::current();

        assert_eq!(
            Icvs::default().pool_shards,
            None,
            "default must defer to host parallelism"
        );

        std::env::set_var("OMP4RS_POOL_SHARDS", "4");
        assert_eq!(Icvs::from_env().pool_shards, Some(4));
        // `1` is meaningful: exact legacy single-pool behaviour.
        std::env::set_var("OMP4RS_POOL_SHARDS", "1");
        assert_eq!(Icvs::from_env().pool_shards, Some(1));
        // Clamped to the shard ceiling.
        std::env::set_var("OMP4RS_POOL_SHARDS", "4096");
        assert_eq!(Icvs::from_env().pool_shards, Some(64));
        // Zero and garbage keep the default.
        std::env::set_var("OMP4RS_POOL_SHARDS", "0");
        assert_eq!(Icvs::from_env().pool_shards, None);
        std::env::set_var("OMP4RS_POOL_SHARDS", "many");
        assert_eq!(Icvs::from_env().pool_shards, None);
        std::env::remove_var("OMP4RS_POOL_SHARDS");
        assert_eq!(Icvs::from_env().pool_shards, None);

        Icvs::reset(before);
    }
}
